"""Comm health engine demo: inject faults, get attributed diagnoses.

Trains a small DDP model on 4 ranks over the retrying transport while a
seeded :class:`~repro.resilience.FaultPlan` abuses the wire:

* ``slow_rank(1, ...)`` — every send from rank 1 is delayed, the
  paper's persistent-straggler scenario;
* ``drop(rank=0, dst=2, ...)`` — a lossy edge 0→2 whose drops the
  reliable transport absorbs as retries and retransmissions.

The health engine watches the same run through its efficiency metrics
(per-source receive stalls, achieved bus bandwidth, chunk-pipeline
utilization) and cross-rank event log, then prints what a human would
have had to dig out of a Chrome trace:

* ``persistent_straggler`` naming rank 1, and
* ``retransmit_storm`` naming the lossy edge's receiving rank —

each with confidence and the evidence numbers behind the verdict.  The
offline path is exercised too: the sampler's JSONL dump feeds
``tools/healthctl.py``-style analysis and must reach the same verdicts.

Run:
    python examples/health_demo.py                  # faulty run
    python examples/health_demo.py --fault-free     # CI false-positive gate
    python examples/health_demo.py --dump health_metrics.jsonl
"""

import argparse
import json

import numpy as np

from repro import nn, optim, telemetry
from repro.autograd import Tensor
from repro.comm import Store, run_distributed
from repro.core import DistributedDataParallel
from repro.resilience import FaultPlan, ReliableTransportHub, RetryPolicy, drop
from repro.resilience.faults import slow_rank
from repro.telemetry.health import (
    PERSISTENT_STRAGGLER,
    RETRANSMIT_STORM,
    analyze_snapshots,
    analyze_ticks,
    health_report,
    merge_causal_timeline,
    render_diagnoses,
)
from repro.telemetry.observatory import MetricsSampler
from repro.utils import manual_seed

WORLD_SIZE = 4
ITERATIONS = 8
SLOW_RANK = 1
LOSSY_EDGE = (0, 2)  # a halving-doubling partner pair at distance 2


def train(rank: int):
    manual_seed(11)
    net = nn.Sequential(
        nn.Linear(32, 96), nn.ReLU(), nn.Linear(96, 96), nn.ReLU(),
        nn.Linear(96, 4),
    )
    ddp = DistributedDataParallel(net, bucket_cap_mb=0.05)
    opt = optim.SGD(ddp.parameters(), lr=0.01)
    loss_fn = nn.CrossEntropyLoss()
    rng = np.random.default_rng(rank)
    for _ in range(ITERATIONS):
        inp = Tensor(rng.standard_normal((16, 32)))
        exp = rng.integers(0, 4, 16)
        opt.zero_grad()
        loss_fn(ddp(inp), exp).backward()
        opt.step()
    return ddp.ddp_stats()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fault-free", action="store_true",
                        help="run without any injected fault (gate mode: "
                        "asserts zero diagnoses)")
    parser.add_argument("--dump", metavar="PATH", default=None,
                        help="write the sampler's metrics JSONL here "
                        "(feed it to tools/healthctl.py)")
    parser.add_argument("--seed", type=int, default=0,
                        help="chaos seed for the fault plan")
    args = parser.parse_args()

    telemetry.enable()
    # base_backoff sits above the straggler's injected delay so a slow
    # (but not lossy) sender doesn't trigger spurious retransmissions.
    hub = ReliableTransportHub(
        WORLD_SIZE, default_timeout=30.0,
        retry=RetryPolicy(base_backoff=0.02), seed=args.seed,
    )
    plan = None
    if not args.fault_free:
        plan = FaultPlan(
            [
                slow_rank(SLOW_RANK, seconds=0.008),
                drop(rank=LOSSY_EDGE[0], dst=LOSSY_EDGE[1], probability=0.4),
            ],
            seed=args.seed,
        )

    mode = "fault-free" if args.fault_free else (
        f"slow rank {SLOW_RANK} + lossy edge {LOSSY_EDGE[0]}→{LOSSY_EDGE[1]}"
    )
    print(f"== training: {WORLD_SIZE} ranks x {ITERATIONS} iterations "
          f"({mode}) ==")
    sampler = MetricsSampler(interval=0.05).start()
    stats = run_distributed(
        WORLD_SIZE, train, backend="gloo", timeout=60.0,
        store=Store(timeout=30.0), hub=hub, fault_plan=plan,
    )
    sampler.stop()

    # -- live health section (what ddp_stats()["health"] serves) --------
    health = stats[0]["health"]
    print("\n== ddp_stats()['health'] (rank 0) ==")
    busbw = health["achieved_busbw_gbps"]
    util = health["chunk_pipeline_utilization"]
    print(f"collectives accounted: {health['collectives_accounted']}, "
          f"overlap ratio {health['overlap_ratio']:.3f}")
    print(f"achieved bus bandwidth: mean {busbw['mean']:.3f} GB/s "
          f"(p50 {busbw['p50']:.3f})")
    print(f"chunk pipeline utilization: mean {util['mean']:.3f}")
    print(f"receive stall: {health['recv_stall_s']:.3f}s, "
          f"event log depth {health['event_log_depth']}")

    # -- causal timeline ------------------------------------------------
    timeline = [r for r in merge_causal_timeline() if r["seq"] is not None]
    worst = max(timeline, key=lambda r: r["start_skew_s"], default=None)
    if worst is not None:
        print(f"\ncausal timeline: {len(timeline)} collectives stitched; "
              f"worst start skew {worst['start_skew_s'] * 1e3:.1f} ms "
              f"(op {worst['op']} seq {worst['seq']})")

    # -- live diagnoses -------------------------------------------------
    diagnoses = analyze_snapshots()
    print("\n== live anomaly attribution ==")
    print(render_diagnoses(diagnoses), end="")

    kinds = {d.kind: d for d in diagnoses}
    if args.fault_free:
        assert not diagnoses, (
            f"false positive: fault-free run produced {kinds.keys()}"
        )
        print("fault-free run: zero diagnoses, as required")
    else:
        straggler = kinds.get(PERSISTENT_STRAGGLER)
        assert straggler is not None and straggler.culprit_rank == SLOW_RANK, (
            f"expected persistent_straggler on rank {SLOW_RANK}, got {kinds.keys()}"
        )
        storm = kinds.get(RETRANSMIT_STORM)
        assert storm is not None and storm.culprit_rank == LOSSY_EDGE[1], (
            f"expected retransmit_storm on rank {LOSSY_EDGE[1]}, got {kinds.keys()}"
        )
        print(f"attribution correct: straggler=rank {straggler.culprit_rank}, "
              f"storm=rank {storm.culprit_rank}"
              + (f" edge {storm.culprit_edge}" if storm.culprit_edge else ""))

    # -- offline path (healthctl over the JSONL dump) -------------------
    offline = analyze_ticks(sampler.ticks())
    offline_kinds = {d["kind"] for d in offline["diagnoses"]}
    print(f"\noffline replay over {offline['ticks']} sampler ticks: "
          f"{sorted(offline_kinds) or 'no anomalies'}")
    if args.fault_free:
        assert not offline_kinds, f"offline false positive: {offline_kinds}"
    else:
        assert PERSISTENT_STRAGGLER in offline_kinds, (
            "offline analysis missed the straggler"
        )
    if args.dump:
        sampler.dump_jsonl(args.dump)
        print(f"wrote {args.dump} — analyze with: "
              f"python tools/healthctl.py {args.dump}")

    # Sanity: health_report is cheap to call directly too.
    report = health_report(rank=0)
    assert report["collectives_accounted"] > 0
    json.dumps(report)  # must be JSON-serializable end to end

    print("\nhealth demo OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
