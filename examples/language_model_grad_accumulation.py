"""Transformer training with gradient accumulation (paper §3.2.4).

The paper's NLP workload is BERT; this example trains a miniature
transformer classifier with the ``no_sync`` context manager: each rank
splits its batch into micro-batches, accumulates gradients locally for
all but the last micro-batch, and synchronizes once per effective batch.
The script measures how many bytes each pattern communicates,
demonstrating why skipping synchronization "considerably reduces the
amortized communication overhead".

Run:
    python examples/language_model_grad_accumulation.py
"""

import numpy as np

from repro import nn
from repro.autograd import Tensor
from repro.comm import run_distributed
from repro.core import DistributedDataParallel
from repro.models import TinyTransformer
from repro.optim import Adam
from repro.utils import manual_seed

WORLD_SIZE = 2
MICRO_BATCHES = 4
MICRO_BATCH_SIZE = 8
STEPS = 12
VOCAB, SEQ_LEN, CLASSES = 48, 12, 3


def make_data(seed: int):
    """Sequences whose label is the modular class of their token sum."""
    rng = np.random.default_rng(seed)
    total = WORLD_SIZE * MICRO_BATCHES * MICRO_BATCH_SIZE * STEPS
    tokens = rng.integers(0, VOCAB, (total, SEQ_LEN))
    labels = tokens.sum(axis=1) % CLASSES
    return tokens, labels


TOKENS, LABELS = make_data(0)


def train(rank: int, sync_every_micro_batch: bool):
    manual_seed(1)
    model = TinyTransformer(
        vocab_size=VOCAB, max_seq_len=SEQ_LEN, hidden=24, num_heads=4,
        num_layers=2, ffn_dim=48, num_classes=CLASSES,
    )
    ddp = DistributedDataParallel(model, bucket_cap_mb=0.25)
    optimizer = Adam(ddp.parameters(), lr=2e-3)
    loss_fn = nn.CrossEntropyLoss()

    per_rank = len(TOKENS) // WORLD_SIZE
    my_tokens = TOKENS[rank * per_rank : (rank + 1) * per_rank]
    my_labels = LABELS[rank * per_rank : (rank + 1) * per_rank]

    cursor = 0
    last_loss = None
    for _ in range(STEPS):
        optimizer.zero_grad()
        micro = []
        for _ in range(MICRO_BATCHES):
            micro.append(
                (
                    my_tokens[cursor : cursor + MICRO_BATCH_SIZE],
                    my_labels[cursor : cursor + MICRO_BATCH_SIZE],
                )
            )
            cursor += MICRO_BATCH_SIZE

        if sync_every_micro_batch:
            # naive: AllReduce after every micro-batch
            for x, y in micro:
                (loss_fn(ddp(x), y) * (1.0 / MICRO_BATCHES)).backward()
        else:
            # paper §3.2.4: accumulate locally, synchronize once
            with ddp.no_sync():
                for x, y in micro[:-1]:
                    (loss_fn(ddp(x), y) * (1.0 / MICRO_BATCHES)).backward()
            x, y = micro[-1]
            loss = loss_fn(ddp(x), y) * (1.0 / MICRO_BATCHES)
            loss.backward()
            last_loss = loss.item() * MICRO_BATCHES
        optimizer.step()

    return ddp.process_group.bytes_communicated, last_loss


def main() -> None:
    print(f"TinyTransformer, {WORLD_SIZE} ranks, {MICRO_BATCHES} micro-batches/step\n")

    naive = run_distributed(
        WORLD_SIZE, lambda r: train(r, sync_every_micro_batch=True),
        backend="gloo", timeout=300,
    )
    accumulated = run_distributed(
        WORLD_SIZE, lambda r: train(r, sync_every_micro_batch=False),
        backend="gloo", timeout=300,
    )

    naive_bytes = naive[0][0]
    accum_bytes = accumulated[0][0]
    print(f"bytes communicated, sync every micro-batch: {naive_bytes/1e6:8.2f} MB")
    print(f"bytes communicated, no_sync accumulation:   {accum_bytes/1e6:8.2f} MB")
    print(f"communication reduced {naive_bytes / accum_bytes:.1f}x "
          f"(expected ~{MICRO_BATCHES}x: one sync per {MICRO_BATCHES} micro-batches)")
    print(f"final micro-batch loss with accumulation: {accumulated[0][1]:.3f}")


if __name__ == "__main__":
    main()
