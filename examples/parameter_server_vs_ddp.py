"""Parameter server vs DDP (the paper's §2.3 architectural contrast).

Trains the same classifier three ways on the same data shards —

1. DDP (synchronized AllReduce, overlapped),
2. a synchronous parameter server (rank 0 owns the parameters),
3. an asynchronous parameter server (stale gradients),

— then compares (a) equivalence to local full-batch training and
(b) the bytes each architecture moves per iteration. The sync PS is
mathematically equivalent too, but its server link carries every
worker's gradients and parameters; the async PS gives up equivalence
entirely.

Run:
    python examples/parameter_server_vs_ddp.py
"""

import numpy as np

from repro import nn
from repro.autograd import Tensor
from repro.baselines import run_parameter_server_training
from repro.comm import run_distributed
from repro.core import DistributedDataParallel
from repro.optim import SGD
from repro.utils import manual_seed

WORKERS = 2
ITERS = 8
LR = 0.05

rng = np.random.default_rng(2)
X = rng.standard_normal((WORKERS * 8, 10))
Y = rng.integers(0, 3, WORKERS * 8)


def make_model():
    manual_seed(12)
    return nn.Sequential(nn.Linear(10, 24), nn.ReLU(), nn.Linear(24, 3))


def local_reference():
    model = make_model()
    opt = SGD(model.parameters(), lr=LR)
    loss_fn = nn.CrossEntropyLoss()
    for _ in range(ITERS):
        opt.zero_grad()
        loss_fn(model(Tensor(X)), Y).backward()
        opt.step()
    return model.state_dict()


def train_ddp():
    def body(rank):
        model = make_model()
        ddp = DistributedDataParallel(model)
        opt = SGD(ddp.parameters(), lr=LR)
        loss_fn = nn.CrossEntropyLoss()
        shard = slice(rank * 8, (rank + 1) * 8)
        hub = ddp.process_group.hub
        baseline = hub.bytes_sent[rank]
        for _ in range(ITERS):
            opt.zero_grad()
            loss_fn(ddp(Tensor(X[shard])), Y[shard]).backward()
            opt.step()
        return ddp.state_dict(), hub.bytes_sent[rank] - baseline

    results = run_distributed(WORKERS, body, backend="gloo")
    return results[0][0], sum(b for _, b in results)


def train_ps(mode):
    def worker_fn(worker_index, iteration, model):
        loss_fn = nn.CrossEntropyLoss()
        shard = slice(worker_index * 8, (worker_index + 1) * 8)
        loss_fn(model(Tensor(X[shard])), Y[shard]).backward()

    server_state, _ = run_parameter_server_training(
        world_size=WORKERS + 1,
        make_model=make_model,
        make_optimizer=lambda m: SGD(m.parameters(), lr=LR),
        worker_fn=worker_fn,
        iterations=ITERS,
        mode=mode,
    )
    # wire volume: each iteration every worker pushes grads and pulls
    # params through the server link
    n = make_model().num_parameters()
    wire = ITERS * WORKERS * 2 * n * 8
    return server_state["state"], wire


def drift(state, reference):
    return max(np.abs(state[name] - reference[name]).max() for name in reference)


def main() -> None:
    reference = local_reference()

    ddp_state, ddp_bytes = train_ddp()
    sync_state, ps_bytes = train_ps("sync")
    async_state, _ = train_ps("async")

    print(f"{WORKERS} workers, {ITERS} iterations, plain SGD lr={LR}\n")
    print("drift from local full-batch training:")
    print(f"  DDP:                  {drift(ddp_state, reference):.2e}   (equivalent)")
    print(f"  sync param server:    {drift(sync_state, reference):.2e}   (equivalent)")
    print(f"  async param server:   {drift(async_state, reference):.2e}   (stale grads)")
    print("\ngradient-exchange volume over the run:")
    print(f"  DDP AllReduce:        {ddp_bytes / 1e6:6.2f} MB total across ranks")
    print(f"  param server link:    {ps_bytes / 1e6:6.2f} MB through ONE server NIC")
    print("\nthe sync PS matches DDP mathematically, but its single server link")
    print("carries every worker's traffic — the §2.3 scaling bottleneck;")
    print("the async PS removes the barrier at the cost of equivalence.")


if __name__ == "__main__":
    main()
