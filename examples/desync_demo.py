"""Debug-layer smoke: provoke both desync failure modes and verify the
diagnosis (paper §3.2.3 / Fig. 3(a)).

Scenario 1 — **hang**: rank 1 issues fewer collectives than rank 0 and
exits, so rank 0's last AllReduce can never complete.  The per-group
hang watchdog must detect the stall *before* the transport timeout,
gather every rank's flight-recorder snapshot through the store, and
fail the run with a desync report naming rank 1 as the culprit and the
exact stuck collective.

Scenario 2 — **mismatch**: both ranks call AllReduce at the same
sequence number but with different tensor shapes.  The consistency
check must raise a ``CollectiveMismatchError`` showing both ranks'
collective fingerprints and the field-level diff.

Exit code 0 means the debug layer diagnosed both correctly; used by the
``debug-smoke`` CI job.

Run:
    REPRO_DEBUG=DETAIL python examples/desync_demo.py
"""

import time

import numpy as np

from repro.comm import get_context, run_distributed
from repro.debug import clear_recorders, set_debug_level

TIMEOUT = 4.0


def hang_scenario() -> float:
    """Rank 1 stops issuing collectives; returns the wall time to fail."""

    def train(rank: int):
        group = get_context().default_group
        group.allreduce(np.ones(8))          # seq 0: both ranks join
        if rank == 0:
            group.allreduce(np.ones(8))      # seq 1: rank 1 never joins

    start = time.perf_counter()
    try:
        run_distributed(2, train, backend="gloo", timeout=TIMEOUT)
    except RuntimeError as exc:
        elapsed = time.perf_counter() - start
        message = str(exc)
        print(f"run failed after {elapsed:.2f}s (group timeout {TIMEOUT}s):\n")
        print(message)
        assert "cross-rank desync detected" in message, "no desync report"
        assert "allreduce#1" in message, "stuck collective not named"
        assert "culprit rank(s) [1]" in message, "culprit rank not named"
        assert "rank 1 (shutdown)" in message, "rank 1 parting state missing"
        assert elapsed < TIMEOUT, (
            f"diagnosis took {elapsed:.2f}s — slower than the {TIMEOUT}s "
            f"group timeout; the watchdog never fired"
        )
        return elapsed
    raise AssertionError("desynced run finished without an error")


def mismatch_scenario() -> None:
    """Ranks disagree on the shape of collective #1."""

    def train(rank: int):
        group = get_context().default_group
        group.allreduce(np.ones(4))                    # seq 0: consistent
        group.allreduce(np.ones(4 if rank == 0 else 3))  # seq 1: shapes differ

    try:
        run_distributed(2, train, backend="gloo", timeout=TIMEOUT)
    except RuntimeError as exc:
        message = str(exc)
        print(f"\nrun failed with the expected mismatch:\n\n{message}")
        assert "mismatch" in message
        assert "shape: (3,) != (4,)" in message, "field-level diff missing"
        assert "shape=(3,)" in message and "shape=(4,)" in message, (
            "both ranks' fingerprints should appear"
        )
        return
    raise AssertionError("mismatched run finished without an error")


def main() -> None:
    set_debug_level("DETAIL")

    print("=== scenario 1: rank stops issuing collectives (hang) ===\n")
    elapsed = hang_scenario()

    clear_recorders()
    print("\n=== scenario 2: ranks issue different collectives (mismatch) ===")
    mismatch_scenario()

    print(f"\ndebug smoke passed: hang diagnosed in {elapsed:.2f}s "
          f"(< {TIMEOUT}s group timeout), mismatch diff rendered.")


if __name__ == "__main__":
    main()
