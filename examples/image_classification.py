"""Distributed image classification (the paper's vision workload, scaled
down): a BatchNorm'd CNN on the synthetic-MNIST dataset, trained with
DDP across 4 ranks using a DistributedSampler.

Demonstrates:
* disjoint data shards per rank (``DistributedSampler``),
* model-buffer synchronization (BatchNorm running stats broadcast from
  rank 0 before every synchronized forward, paper §4.1),
* bucket-size knob usage (``bucket_cap_mb``),
* evaluation with replicas in eval mode.

Run:
    python examples/image_classification.py
"""

import numpy as np

from repro import nn
from repro.autograd import Tensor
from repro.comm import run_distributed
from repro.core import DistributedDataParallel
from repro.data import DataLoader, DistributedSampler, synthetic_mnist
from repro.models import ConvNet
from repro.optim import Adam
from repro.utils import manual_seed

WORLD_SIZE = 4
EPOCHS = 3
DATASET = synthetic_mnist(num_samples=512, noise=0.2, seed=7)


def evaluate(model: nn.Module) -> float:
    model.eval()
    correct = 0
    for start in range(0, len(DATASET), 64):
        xs = Tensor(np.stack([DATASET[i][0] for i in range(start, min(start + 64, len(DATASET)))]))
        ys = np.array([DATASET[i][1] for i in range(start, min(start + 64, len(DATASET)))])
        correct += int((model(xs).argmax(axis=1) == ys).sum())
    model.train()
    return correct / len(DATASET)


def train(rank: int):
    manual_seed(0)
    model = ConvNet(num_classes=10, channels=4)
    ddp = DistributedDataParallel(model, bucket_cap_mb=1.0)
    optimizer = Adam(ddp.parameters(), lr=3e-3)
    loss_fn = nn.CrossEntropyLoss()

    sampler = DistributedSampler(DATASET, WORLD_SIZE, rank, shuffle=True, seed=1)
    loader = DataLoader(DATASET, batch_size=32, sampler=sampler)

    for epoch in range(EPOCHS):
        sampler.set_epoch(epoch)
        epoch_loss, batches = 0.0, 0
        for images, labels in loader:
            optimizer.zero_grad()
            loss = loss_fn(ddp(images), labels)
            loss.backward()
            optimizer.step()
            epoch_loss += loss.item()
            batches += 1
        if rank == 0:
            accuracy = evaluate(model)
            print(
                f"epoch {epoch}: mean shard loss {epoch_loss / batches:.3f}, "
                f"train accuracy {accuracy:.1%}"
            )
    return evaluate(model)


def main() -> None:
    print(
        f"ConvNet ({ConvNet(channels=4).num_parameters()} params) on "
        f"synthetic MNIST, {WORLD_SIZE} ranks, {EPOCHS} epochs\n"
    )
    accuracies = run_distributed(WORLD_SIZE, train, backend="gloo", timeout=120)
    print(f"\nfinal accuracy per rank: {[f'{a:.1%}' for a in accuracies]}")
    assert min(accuracies) == max(accuracies), "replicas diverged!"


if __name__ == "__main__":
    main()
