"""Online autotuner demo: a seeded slow link, retuned live.

Trains a 2-rank DDP model over a wire where **every send pays a fixed
injected delay** (a seeded :class:`~repro.resilience.FaultPlan`
``delay`` rule — the slow-interconnect scenario).  Under that cost
model, the deliberately bad starting config — 1 MB buckets, so the
model shatters into many tiny AllReduces, each eating the per-send
tax — is the worst possible choice, and the autotuner's job is to
discover that *from measurements alone*: widen the buckets, fatten the
chunks, and converge, all while training runs.

What the demo asserts (the CI autotune-smoke gate):

* the tuner **moved off the bad starting config** (convergence away
  from the default is observable in ``ddp_stats()["autotune"]``);
* **every config it ever applied is inside the documented safe
  ranges** (``repro.autotune.knobs.KNOBS`` — the same table rendered
  in ``docs/autotuning.md``);
* every rank made the **identical decisions** (the 1-element
  MAX-AllReduce agreement protocol), and training still learned.

The final report is written as JSON for ``tools/autotunectl.py``:

    python examples/autotune_demo.py --report autotune_report.json
    python tools/autotunectl.py autotune_report.json --check-safe-ranges
"""

import argparse
import json

import numpy as np

from repro import nn, optim
from repro.autograd import Tensor
from repro.autotune import TunedConfig, validate_config
from repro.comm import run_distributed
from repro.core import DistributedDataParallel
from repro.resilience import FaultPlan
from repro.resilience.faults import delay
from repro.utils import manual_seed

WORLD_SIZE = 2
BAD_BUCKET_CAP_MB = 1.0  # smallest safe-range point: worst under a slow link
SEND_DELAY_S = 0.002


def train(iterations, autotune_seed):
    def body(rank):
        manual_seed(4)
        # ~3.6 MB of float64 parameters: at the bad 1 MB bucket cap the
        # model shatters into 4+ buckets, each AllReduce paying the
        # injected per-send tax — the signal the tuner must pick up.
        net = nn.Sequential(
            nn.Linear(32, 384), nn.ReLU(), nn.Linear(384, 384), nn.ReLU(),
            nn.Linear(384, 384), nn.ReLU(), nn.Linear(384, 384), nn.ReLU(),
            nn.Linear(384, 4),
        )
        ddp = DistributedDataParallel(
            net,
            bucket_cap_mb=BAD_BUCKET_CAP_MB,
            autotune=True,
            autotune_options={
                "window_iters": 2,
                "warmup_windows": 1,
                "sweep_keep": 4,
                "seed": autotune_seed,
            },
        )
        opt = optim.SGD(ddp.parameters(), lr=0.01)
        loss_fn = nn.CrossEntropyLoss()
        rng = np.random.default_rng(rank)
        # one fixed batch per rank: the loss then decreases monotonically
        # enough that "training still learned" is a stable gate
        inp = Tensor(rng.standard_normal((16, 32)))
        exp = rng.integers(0, 4, 16)
        losses = []
        for _ in range(iterations):
            opt.zero_grad()
            loss = loss_fn(ddp(inp), exp)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        report = ddp.ddp_stats()["autotune"]
        ddp.autotuner.close()
        return losses, report

    return body


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for both the fault plan and the tuner")
    parser.add_argument("--iters", type=int, default=48,
                        help="training iterations")
    parser.add_argument("--report", metavar="PATH", default=None,
                        help="write the rank-0 autotune report JSON here")
    args = parser.parse_args()

    # The slow link: a flat per-send tax on every wire message.  More
    # buckets / more chunks => more sends => more injected delay, so the
    # measurement signal genuinely favors the coarse layouts the
    # analytic prior also predicts.
    plan = FaultPlan([delay(SEND_DELAY_S)], seed=args.seed)

    print(f"== autotune demo: {WORLD_SIZE} ranks x {args.iters} iterations, "
          f"{SEND_DELAY_S * 1e3:.0f} ms/send slow link, "
          f"start bucket_cap={BAD_BUCKET_CAP_MB} MB ==")
    results = run_distributed(
        WORLD_SIZE, train(args.iters, args.seed), backend="gloo",
        timeout=120.0, fault_plan=plan,
    )

    losses0, report0 = results[0]
    reports = [r for _, r in results]

    print(f"\ntuner state: {report0['state']} after "
          f"{report0['windows_closed']} windows "
          f"({report0['applied_changes']} config changes applied, "
          f"{report0['rollbacks']} rollbacks)")
    for entry in report0["applied_log"]:
        cfg = entry["config"]
        print(f"  window {entry['window']:>3} [{entry['state']:>10}] "
              f"{'+'.join(entry['changes'])}: "
              f"bucket_cap={cfg['bucket_cap_mb']} MB "
              f"chunk={cfg['chunk_bytes'] // 1024} KiB "
              f"streams={cfg['num_streams']} alg={cfg['algorithm']}")
    print(f"active config: {report0['active_config']}")
    print(f"best window time: {report0['best_time_s'] * 1e3:.1f} ms")

    # -- gate 1: it moved off the deliberately bad start ----------------
    # The start config is whatever the first (warmup) window measured;
    # the tuner must both leave it and beat its measured window time.
    # (Which knob it moves is its call — on this scenario it may widen
    # the buckets *or* parallelize the per-send tax across streams.)
    assert report0["applied_changes"] >= 1, "tuner never applied a change"
    active = report0["active_config"]
    start_entry = report0["history"][0]
    assert active != start_entry["config"], (
        f"tuner converged back onto the bad starting config: {active}"
    )
    baseline_s = start_entry["measured_s"]
    assert report0["best_time_s"] < baseline_s, (
        f"no measured improvement: best {report0['best_time_s'] * 1e3:.1f} ms "
        f"vs start {baseline_s * 1e3:.1f} ms"
    )
    print(f"improvement: start {baseline_s * 1e3:.1f} ms -> "
          f"best {report0['best_time_s'] * 1e3:.1f} ms "
          f"({baseline_s / report0['best_time_s']:.2f}x)")

    # -- gate 2: everything ever applied was inside the safe ranges -----
    for entry in report0["applied_log"] + [{"config": active}]:
        validate_config(TunedConfig(**entry["config"]))
    print("safe-range compliance: every applied config validated")

    # -- gate 3: every rank took the identical decision path ------------
    for other in reports[1:]:
        assert other["applied_log"] == report0["applied_log"], (
            "ranks diverged in applied configs"
        )
        assert other["active_config"] == report0["active_config"]
    print("cross-rank agreement: identical applied_log on all ranks")

    # -- training still learned through the live relayouts --------------
    assert losses0[-1] < losses0[0], (
        f"loss did not improve: {losses0[0]:.3f} -> {losses0[-1]:.3f}"
    )
    print(f"training: loss {losses0[0]:.3f} -> {losses0[-1]:.3f}")

    if args.report:
        with open(args.report, "w") as handle:
            json.dump(report0, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.report} — inspect with: "
              f"python tools/autotunectl.py {args.report}")

    print("\nautotune demo OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
