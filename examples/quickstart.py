"""Quickstart: the paper's §3.1 example, runnable end to end.

Converting local training to distributed data parallel training is one
line: wrap the model in ``DistributedDataParallel``.  This script runs
the paper's toy example (an ``nn.Linear(10, 10)`` with MSE loss and
SGD) on 4 rank threads and verifies the mathematical-equivalence
guarantee: every replica ends each iteration in an identical state.

Run:
    python examples/quickstart.py
"""

import numpy as np

from repro import nn, optim
from repro.autograd import Tensor
from repro.comm import run_distributed
from repro.core import DistributedDataParallel
from repro.utils import manual_seed

WORLD_SIZE = 4
ITERATIONS = 5

# Shared synthetic data: each rank trains on its own shard.
rng = np.random.default_rng(0)
INPUTS = rng.standard_normal((WORLD_SIZE * 20, 10))
TARGETS = rng.standard_normal((WORLD_SIZE * 20, 10))


def train(rank: int):
    # Identical seeds => identical initial replicas (DDP also broadcasts
    # rank 0's state at construction, so this is belt and braces).
    manual_seed(42)

    # --- the paper's snippet, lines 10-12 -----------------------------
    net = nn.Linear(10, 10)
    net = DistributedDataParallel(net)  # the only changed line
    opt = optim.SGD(net.parameters(), lr=0.01)
    # -------------------------------------------------------------------

    loss_fn = nn.MSELoss()
    shard = slice(rank * 20, (rank + 1) * 20)
    inp = Tensor(INPUTS[shard])
    exp = Tensor(TARGETS[shard])

    for iteration in range(ITERATIONS):
        opt.zero_grad()
        out = net(inp)                     # forward pass
        loss = loss_fn(out, exp)
        loss.backward()                    # hooks AllReduce gradients
        opt.step()                         # identical update everywhere
        if rank == 0:
            print(f"iteration {iteration}: loss={loss.item():.6f}")

    return net.state_dict()


def main() -> None:
    print(f"training nn.Linear(10, 10) on {WORLD_SIZE} ranks (gloo backend)\n")
    states = run_distributed(WORLD_SIZE, train, backend="gloo")

    # Verify the correctness guarantee: all replicas are bit-identical.
    reference = states[0]
    worst = max(
        np.abs(states[rank][name] - reference[name]).max()
        for rank in range(1, WORLD_SIZE)
        for name in reference
    )
    print(f"\nmax parameter divergence across replicas: {worst:.2e}")
    assert worst == 0.0, "replicas diverged!"
    print("all replicas identical — mathematical equivalence holds.")


if __name__ == "__main__":
    main()
