"""Dynamic graphs and unused parameters (paper Fig. 3(b), §3.2.3).

A mixture-of-branches model routes each iteration through one branch,
and different ranks may pick *different* branches.  Without special
handling this hangs real DDP (a bucket waits forever for a gradient that
never comes); with ``find_unused_parameters=True`` DDP traverses the
autograd graph after each forward, marks absent parameters ready, and
runs one extra bitmap AllReduce to learn which parameters are globally
unused — those keep their gradients intact so stateful optimizers are
not polluted.

Run:
    python examples/dynamic_graph.py
"""

import numpy as np

from repro import nn
from repro.autograd import Tensor
from repro.comm import run_distributed
from repro.core import DistributedDataParallel
from repro.models import BranchedModel
from repro.optim import Adam
from repro.utils import manual_seed

WORLD_SIZE = 2
STEPS = 6


def train(rank: int):
    manual_seed(3)
    model = BranchedModel(in_features=8, hidden=32, num_classes=4, num_branches=3)
    ddp = DistributedDataParallel(model, find_unused_parameters=True)
    optimizer = Adam(ddp.parameters(), lr=1e-2)
    loss_fn = nn.CrossEntropyLoss()
    rng = np.random.default_rng(50 + rank)

    log = []
    for step in range(STEPS):
        # Each rank independently picks a branch — graphs diverge.
        branch = int(rng.integers(0, 2))  # branches 0/1 used; 2 never
        x = Tensor(rng.standard_normal((16, 8)))
        y = rng.integers(0, 4, 16)

        optimizer.zero_grad()
        loss = loss_fn(ddp(x, branch=branch), y)
        loss.backward()
        optimizer.step()

        got_grads = [
            all(p.grad is not None for p in b.parameters()) for b in model.branches
        ]
        log.append((step, branch, got_grads, round(loss.item(), 3)))
    return log, ddp.state_dict()


def main() -> None:
    print(f"BranchedModel on {WORLD_SIZE} ranks, divergent branch choices\n")
    results = run_distributed(WORLD_SIZE, train, backend="gloo", timeout=120)

    for rank, (log, _) in enumerate(results):
        print(f"rank {rank}:")
        for step, branch, got_grads, loss in log:
            grads = "".join("x" if g else "." for g in got_grads)
            print(f"  step {step}: used branch {branch}, branches w/ grads [{grads}], loss {loss}")

    # Branch 2 is never used on any rank: its gradients must stay None.
    for log, _ in results:
        assert all(not got[2] for _, _, got, _ in log), "unused branch polluted!"

    # Replicas remain identical despite divergent per-rank graphs.
    reference = results[0][1]
    for _, state in results[1:]:
        for name in reference:
            assert np.allclose(reference[name], state[name])
    print("\nbranch 2 gradients stayed intact on every rank; replicas identical.")


if __name__ == "__main__":
    main()
