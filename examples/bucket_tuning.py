"""Bucket-size tuning walkthrough (paper §5.2, Figs. 7-8).

"No single bucket size can best serve all applications... the value
should be measured and determined empirically."  This example does both
kinds of measurement this library supports:

1. *Functional*: trains a real model under several ``bucket_cap_mb``
   settings on the threaded backend and shows the bucket layouts and
   per-bucket AllReduce counts.
2. *Performance*: sweeps the calibrated simulator across bucket sizes
   for ResNet50 and BERT on both backends, printing the Fig. 7-style
   latency table and the recommended setting.

Run:
    python examples/bucket_tuning.py
"""

import numpy as np

from repro import nn
from repro.autograd import Tensor
from repro.comm import run_distributed
from repro.core import DistributedDataParallel
from repro.core.bucket import describe_assignment
from repro.models import MLP
from repro.optim import SGD
from repro.simulation import SimulationConfig, TrainingSimulator
from repro.simulation.models import bert_profile, resnet50_profile
from repro.utils import manual_seed


def functional_demo() -> None:
    print("=== functional: bucket layouts on a real model ===")
    rng = np.random.default_rng(0)
    X, Y = rng.standard_normal((8, 32)), rng.integers(0, 4, 8)

    for cap_mb in (0.0, 0.001, 25.0):
        def body(rank, cap_mb=cap_mb):
            manual_seed(0)
            model = MLP(32, [64, 64], 4)
            ddp = DistributedDataParallel(model, bucket_cap_mb=cap_mb)
            opt = SGD(ddp.parameters(), lr=0.05)
            loss_fn = nn.CrossEntropyLoss()
            shard = slice(rank * 4, (rank + 1) * 4)
            opt.zero_grad()
            loss_fn(ddp(Tensor(X[shard])), Y[shard]).backward()
            opt.step()
            return len(ddp.reducer.buckets), describe_assignment(
                [b.spec for b in ddp.reducer.buckets]
            )

        results = run_distributed(2, body, backend="gloo")
        count, table = results[0]
        print(f"\nbucket_cap_mb={cap_mb}: {count} buckets "
              f"(= {count} AllReduce launches per iteration)")
        if count <= 8:
            print(table)


def simulated_sweep() -> None:
    print("\n=== simulated: Fig. 7-style sweep at 16 GPUs ===")
    sweeps = [
        (resnet50_profile(), [0, 5, 10, 25, 50]),
        (bert_profile(), [0, 5, 10, 25, 50, 100, 200]),
    ]
    for model, caps in sweeps:
        for backend in ("nccl", "gloo"):
            latencies = []
            for cap in caps:
                sim = TrainingSimulator(
                    SimulationConfig(
                        model=model, world_size=16, backend=backend,
                        bucket_cap_mb=cap,
                    )
                )
                latencies.append(sim.median_latency(8))
            best = caps[int(np.argmin(latencies))]
            row = "  ".join(f"{c}MB:{t*1e3:6.1f}ms" for c, t in zip(caps, latencies))
            print(f"{model.name:>8} on {backend:<4}: {row}")
            print(f"{'':>8}    recommendation: bucket_cap_mb={best}")


def main() -> None:
    functional_demo()
    simulated_sweep()


if __name__ == "__main__":
    main()
