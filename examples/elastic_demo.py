"""Elastic fault-tolerant training demo: chaos in, convergence out.

The acceptance scenario for ``repro.resilience`` end to end:

1. A seeded :class:`FaultPlan` drops 1% of wire messages *and* crashes
   rank 2 mid-run (as it issues a bucket AllReduce of iteration 3).
2. The :class:`ReliableTransportHub` absorbs the drops — retry counters
   land in ``ddp_stats()["resilience"]`` — so none of them is fatal.
3. The heartbeat monitor detects the dead rank in fractions of a
   second; :func:`run_elastic` aborts the generation, re-rendezvouses
   the survivors into a smaller world, restores model + optimizer state
   from the last checkpoint, and finishes the iteration budget.
4. The final loss matches a no-fault run at the shrunken world size.
5. A second scenario grows back: rank 2 is killed, *rejoins two
   generations later* via :func:`rejoin_rank`, and the supervisor
   re-admits it at the boundary — with the replicated
   :class:`~repro.checkpoint.CheckpointEngine` carrying state.  The
   loss trajectory is **bitwise identical** to a composed baseline
   running the same world schedule without faults.

Each claim is asserted; the script exits non-zero if any fails, and on
failure writes the collective flight-recorder dump (when REPRO_DEBUG is
enabled) next to the checkpoint for postmortem.

Run:
    python examples/elastic_demo.py
"""

import os
import sys
import tempfile
import time

import numpy as np

from repro import nn
from repro.autograd import Tensor
from repro.optim import SGD
from repro.resilience import (
    ElasticConfig,
    FaultPlan,
    crash_rank,
    drop,
    rejoin_rank,
    run_elastic,
)
from repro.utils import manual_seed

WORLD = 3
ITERATIONS = 10
BUCKETS = 4  # one per parameter tensor at the tiny bucket cap below
SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))

rng = np.random.default_rng(0)
X = rng.standard_normal((24, 6))
Y = rng.integers(0, 4, 24)
loss_fn = nn.CrossEntropyLoss()


def setup(ctx):
    manual_seed(7)
    model = nn.Sequential(nn.Linear(6, 16), nn.ReLU(), nn.Linear(16, 4))
    return model, SGD(model.parameters(), lr=0.05)


def step(ctx, model, opt, iteration):
    shard = slice(ctx.rank * 4, (ctx.rank + 1) * 4)
    opt.zero_grad()
    loss = loss_fn(model(Tensor(X[shard])), Y[shard])
    loss.backward()
    opt.step()
    # Keep each iteration longer than the supervisor's poll tick so a
    # generation cannot end before a pending rejoin is noticed (loss
    # numerics untouched — the baselines run this same step).
    time.sleep(0.01)
    # Surface the retrying transport's live counters once per rank 0 step.
    if ctx.rank == 0 and iteration == ITERATIONS - 1:
        resilience = model.ddp_stats()["resilience"]
        print(f"  ddp_stats resilience: retries={resilience['total_retries']} "
              f"retransmits={resilience['total_retransmits']} "
              f"corrupt_detected={resilience['total_corrupt_detected']}")
    return float(loss.data)


def dump_flight_recorder(directory):
    from repro.debug import flight_recorder

    path = os.path.join(directory, "flight_recorder.json")
    flight_recorder.dump_json(path)
    print(f"flight recorder dump written to {path}", file=sys.stderr)


def main() -> int:
    workdir = tempfile.mkdtemp(prefix="elastic_demo_")
    plan = FaultPlan(
        [
            drop(probability=0.01),                      # 1% lossy wire
            crash_rank(2, scope="collective", op="allreduce",
                       after=3 * BUCKETS + 1, times=1),  # dies iteration 3
        ],
        seed=SEED,
    )
    config = ElasticConfig(
        policy="shrink",
        checkpoint_dir=workdir,
        checkpoint_every=1,
        timeout=10.0,
        seed=SEED,
        ddp_kwargs={"bucket_cap_mb": 0.0001},
    )

    print(f"=== elastic run: world={WORLD}, {ITERATIONS} iterations, "
          f"1% drops + rank 2 crash (seed {SEED}) ===")
    try:
        result = run_elastic(WORLD, setup, step, ITERATIONS,
                             config=config, fault_plan=plan)
    except Exception:
        dump_flight_recorder(workdir)
        raise
    for gen in result.generations:
        resil = gen["resilience"]
        print(f"generation {gen['generation']}: world={gen['world_size']} "
              f"iterations→{gen['end_iteration']} died={gen['died']} "
              f"retries={resil['total_retries']} "
              f"retransmits={resil['total_retransmits']}")
    print(f"losses: {[round(l, 4) for l in result.losses]}")

    print(f"\n=== baseline: no faults at the shrunken world size "
          f"({WORLD - 1} ranks) ===")
    baseline = run_elastic(
        WORLD - 1, setup, step, ITERATIONS,
        config=ElasticConfig(
            policy="shrink",
            checkpoint_dir=os.path.join(workdir, "baseline"),
            checkpoint_every=1,
            timeout=10.0,
            ddp_kwargs={"bucket_cap_mb": 0.0001},
        ),
    )
    print(f"baseline losses: {[round(l, 4) for l in baseline.losses]}")

    print(f"\n=== grow run: rank 2 killed, rejoins two generations later "
          f"(replication_factor=2) ===")
    grow_plan = FaultPlan(
        [
            crash_rank(2, scope="collective", op="allreduce",
                       after=2 * BUCKETS + 1, times=1),  # dies iteration 2
            rejoin_rank(2, generation=1),  # matures during generation 1
        ],
        seed=SEED,
    )
    grow = run_elastic(
        WORLD, setup, step, ITERATIONS,
        config=ElasticConfig(
            policy="shrink",
            checkpoint_dir=os.path.join(workdir, "grow"),
            checkpoint_every=1,
            timeout=10.0,
            seed=SEED,
            ddp_kwargs={"bucket_cap_mb": 0.0001},
            allow_grow=True,
            max_world_size=WORLD,
            replication_factor=2,
        ),
        fault_plan=grow_plan,
    )
    for gen in grow.generations:
        ckpt = (gen.get("checkpoint") or {}).get(0, {})
        print(f"generation {gen['generation']}: world={gen['world_size']} "
              f"iterations→{gen['end_iteration']} died={gen['died']} "
              f"admitted={gen.get('admitted', [])} "
              f"replicas_sent={ckpt.get('replicas_sent', 0)}")
    print(f"grow losses: {[round(l, 4) for l in grow.losses]}")

    # Composed baseline: replay the observed world schedule without
    # faults through one shared checkpoint dir — bitwise comparable.
    schedule = [(g["world_size"], g["end_iteration"])
                for g in grow.generations]
    composed_dir = os.path.join(workdir, "grow_baseline")
    composed_losses = []
    cursor = 0
    for world, end in schedule:
        if end <= cursor:
            continue
        segment = run_elastic(
            world, setup, step, end,
            config=ElasticConfig(
                policy="shrink",
                checkpoint_dir=composed_dir,
                checkpoint_every=1,
                timeout=10.0,
                ddp_kwargs={"bucket_cap_mb": 0.0001},
            ),
        )
        composed_losses += segment.losses
        cursor = end

    checks = [
        ("run completed", result.completed),
        ("all iterations ran", result.iterations == ITERATIONS),
        ("rank 2 detected dead", result.deaths == [2]),
        ("world shrank to survivors",
         result.final_world_size == WORLD - 1),
        ("injected drops were absorbed by retries",
         plan.stats()[0]["triggered"] == 0 or result.total_retries > 0),
        ("loss kept improving", result.losses[-1] < result.losses[0]),
        ("final loss matches no-fault shrunken-world baseline",
         abs(result.final_loss - baseline.final_loss) < 0.05),
        ("grow run completed", grow.completed),
        ("grow ran all iterations", grow.iterations == ITERATIONS),
        ("killed rank rejoined at a boundary",
         grow.deaths == [2] and grow.admissions == [2]),
        ("world grew back to full size",
         grow.final_world_size == WORLD),
        ("checkpoint engine replicated shards",
         all((g.get("checkpoint") or {}).get(0, {}).get("replicas_sent", 0)
             > 0 for g in grow.generations)),
        ("grow losses bitwise-match the composed same-schedule baseline",
         composed_losses == grow.losses),
    ]
    print()
    failed = False
    for label, ok in checks:
        print(f"  [{'ok' if ok else 'FAIL'}] {label}")
        failed = failed or not ok
    if failed:
        dump_flight_recorder(workdir)
        return 1
    print("\nall checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
