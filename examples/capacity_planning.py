"""Capacity planning for a custom model (the §6.1 lessons, applied).

A downstream team has its own model and wants to answer, *before*
reserving a cluster: which backend, which bucket size, how many GPUs,
and would round-robin groups or periodic synchronization help?  This
example builds a simulator profile straight from a real ``nn.Module``
(``profile_from_module``), then walks the paper's three tuning lessons:

1. communication backend: NCCL when available;
2. bucket size: sweep, the optimum is model-dependent;
3. resource allocation: watch the machine-boundary cliff; consider
   ``no_sync`` when scaling past it.

Run:
    python examples/capacity_planning.py
"""

import numpy as np

from repro import nn
from repro.models import TinyTransformer
from repro.simulation import (
    SimulationConfig,
    TrainingSimulator,
    profile_from_module,
)
from repro.utils import manual_seed


def build_custom_model() -> nn.Module:
    """The team's model: a mid-sized transformer encoder."""
    manual_seed(0)
    return TinyTransformer(
        vocab_size=32_000, max_seq_len=512, hidden=512, num_heads=8,
        num_layers=8, ffn_dim=2048, num_classes=2,
    )


def main() -> None:
    model = build_custom_model()
    # Compute anchors would normally be measured on one GPU; here we
    # estimate from parameter count relative to the calibrated BERT.
    profile = profile_from_module(
        model, "team-transformer",
        v100_forward_seconds=0.06, v100_backward_seconds=0.12,
    )
    print(f"profiled model: {profile} ({profile.gradient_bytes / 1e6:.0f} MB of gradients)\n")

    print("lesson 1 — communication backend (16 GPUs, 25MB buckets):")
    for backend in ("nccl", "gloo"):
        latency = TrainingSimulator(
            SimulationConfig(model=profile, world_size=16, backend=backend)
        ).median_latency(8)
        print(f"  {backend}: {latency * 1e3:7.1f} ms/iteration")

    print("\nlesson 2 — bucket size sweep (16 GPUs, nccl):")
    caps = [0, 1, 5, 10, 25, 50]
    latencies = []
    for cap in caps:
        latency = TrainingSimulator(
            SimulationConfig(
                model=profile, world_size=16, backend="nccl", bucket_cap_mb=cap
            )
        ).median_latency(8)
        latencies.append(latency)
        print(f"  {cap:>3} MB: {latency * 1e3:7.1f} ms")
    best_cap = caps[int(np.argmin(latencies))]
    print(f"  -> recommend bucket_cap_mb={best_cap}")

    print("\nlesson 3 — scaling and the machine boundary (8 GPUs/server):")
    throughputs = []
    for world in (1, 2, 4, 8, 16, 32):
        latency = TrainingSimulator(
            SimulationConfig(
                model=profile, world_size=world, backend="nccl",
                bucket_cap_mb=best_cap,
            )
        ).median_latency(8)
        throughput = world / latency
        throughputs.append((world, latency, throughput))
        marker = "  <- crosses server boundary" if world == 16 else ""
        print(f"  {world:>3} GPUs: {latency * 1e3:7.1f} ms/iter, "
              f"{throughput:8.1f} samples-batches/s{marker}")

    print("\n  mitigation: sync every 4 iterations at 32 GPUs:")
    relaxed = TrainingSimulator(
        SimulationConfig(
            model=profile, world_size=32, backend="nccl",
            bucket_cap_mb=best_cap, sync_every=4,
        )
    ).average_latency(16)
    base = throughputs[-1][1]
    print(f"    avg latency {relaxed * 1e3:.1f} ms vs {base * 1e3:.1f} ms "
          f"({(1 - relaxed / base) * 100:.0f}% saved) — weigh against Fig 11's "
          f"convergence caveat before enabling.")

    print("\n  alternative: round-robin groups (rr3) at 32 GPUs:")
    rr3 = TrainingSimulator(
        SimulationConfig(
            model=profile, world_size=32, backend="nccl",
            bucket_cap_mb=best_cap, num_comm_streams=3,
        )
    ).median_latency(8)
    print(f"    {rr3 * 1e3:.1f} ms vs {base * 1e3:.1f} ms "
          f"({(1 - rr3 / base) * 100:.0f}% saved), no convergence impact.")

    from repro.simulation import export_chrome_trace

    trace_path = export_chrome_trace(
        TrainingSimulator(
            SimulationConfig(
                model=profile, world_size=32, backend="nccl", bucket_cap_mb=best_cap
            )
        ),
        "/tmp/repro_team_transformer_trace.json",
        iterations=2,
    )
    print(f"\ntimeline trace written to {trace_path} (open in chrome://tracing)")


if __name__ == "__main__":
    main()
