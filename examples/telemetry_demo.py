"""Telemetry smoke: trace a real multi-rank DDP run end to end.

Enables ``repro.telemetry``, trains a small MLP on rank threads, then:

* exports a Chrome trace (``telemetry_trace.json``) with one process
  per rank and compute/comm/transport rows — load it in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``;
* prints ``ddp_stats()`` (bucket layout, overlap ratio, per-bucket
  AllReduce latency) and the merged cross-rank metric counters;
* runs the cross-rank straggler detector;
* validates the exported trace: parseable JSON, events from every
  rank, and comm spans nested inside an iteration window — so CI can
  use this script as a telemetry smoke test;
* checks the ``debug`` section of ``ddp_stats()``: with
  ``REPRO_DEBUG=INFO`` (or higher) the collective flight recorder must
  hold records and the hang watchdog must be running; when OFF the
  debug layer must record nothing.

Run:
    python examples/telemetry_demo.py
    REPRO_DEBUG=INFO python examples/telemetry_demo.py
"""

import json
import os
import tempfile

import numpy as np

from repro import nn, optim, telemetry
from repro.autograd import Tensor
from repro.comm import run_distributed
from repro.core import DistributedDataParallel
from repro.utils import manual_seed

WORLD_SIZE = int(os.environ.get("REPRO_DEMO_WORLD", "4"))
ITERATIONS = 3


def train(rank: int):
    manual_seed(7)
    net = nn.Sequential(
        nn.Linear(32, 128), nn.ReLU(), nn.Linear(128, 128), nn.ReLU(),
        nn.Linear(128, 8),
    )
    ddp = DistributedDataParallel(net, bucket_cap_mb=0.05)
    opt = optim.SGD(ddp.parameters(), lr=0.01)
    loss_fn = nn.CrossEntropyLoss()
    rng = np.random.default_rng(rank)

    for _ in range(ITERATIONS):
        inp = Tensor(rng.standard_normal((32, 32)))
        exp = rng.integers(0, 8, 32)
        opt.zero_grad()
        loss_fn(ddp(inp), exp).backward()
        opt.step()

    report = ddp.check_stragglers(threshold=1.5)
    return ddp.ddp_stats(), report


def validate_trace(path: str) -> dict:
    """Assert the exported trace is well-formed; return summary numbers."""
    with open(path) as fh:
        trace = json.load(fh)
    events = trace["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    ranks_seen = {e["pid"] for e in complete}
    assert ranks_seen == set(range(WORLD_SIZE)), f"missing ranks: {ranks_seen}"
    cats_by_rank = {
        rank: {e["cat"] for e in complete if e["pid"] == rank}
        for rank in sorted(ranks_seen)
    }
    for rank, cats in cats_by_rank.items():
        assert "comm" in cats, f"rank {rank} has no comm spans"
        assert {"compute", "iteration"} & cats, f"rank {rank} has no compute spans"
    # every gradient AllReduce falls inside some iteration window on its
    # rank (construction-time broadcasts legitimately precede iteration 0)
    iterations = [e for e in complete if e["cat"] == "iteration"]
    for comm in (e for e in complete
                 if e["cat"] == "comm" and e["name"].startswith("allreduce")):
        assert any(
            it["pid"] == comm["pid"]
            and it["ts"] <= comm["ts"]
            and comm["ts"] + comm["dur"] <= it["ts"] + it["dur"]
            for it in iterations
        ), f"comm span outside iteration window: {comm['name']}"
    return {"events": len(complete), "ranks": len(ranks_seen)}


def main() -> None:
    telemetry.enable()
    print(f"tracing a {WORLD_SIZE}-rank DDP run ({ITERATIONS} iterations)...\n")
    results = run_distributed(WORLD_SIZE, train, backend="gloo", timeout=60)

    trace_path = os.path.join(tempfile.gettempdir(), "telemetry_trace.json")
    telemetry.export_chrome_trace(trace_path)
    summary = validate_trace(trace_path)
    print(f"chrome trace: {trace_path} "
          f"({summary['events']} spans from {summary['ranks']} ranks) — "
          "open it in https://ui.perfetto.dev\n")

    stats, straggler = results[0]
    print("ddp_stats() on rank 0:")
    for key in ("world_size", "backend", "num_buckets", "bucket_sizes_bytes",
                "unused_parameter_count", "comm_compute_overlap_ratio",
                "per_bucket_allreduce_latency_s"):
        print(f"  {key}: {stats[key]}")
    assert 0.0 <= stats["comm_compute_overlap_ratio"] <= 1.0

    merged = telemetry.merge_snapshots(telemetry.all_snapshots())
    print("\nmerged cross-rank counters:")
    for name in ("allreduce.bytes", "allreduce.count", "hook.fire_count",
                 "bucket.launches", "iterations.synced"):
        print(f"  {name}: {merged['counters'][name]}")
    assert merged["counters"]["iterations.synced"] == WORLD_SIZE * ITERATIONS

    print(f"\nstraggler check: {straggler.describe()}")

    debug = stats["debug"]
    print(f"\ndebug layer (REPRO_DEBUG={debug['level']}): {debug}")
    if debug["level"] == "OFF":
        assert debug["flight_recorder_depth"] == 0, (
            "flight recorder must record nothing when REPRO_DEBUG=OFF"
        )
        assert debug["watchdog"] is None, "no watchdog expected when OFF"
    else:
        assert debug["flight_recorder_depth"] > 0, (
            "flight recorder recorded no collectives at "
            f"REPRO_DEBUG={debug['level']}"
        )
        assert debug["watchdog"]["active"], "hang watchdog was not running"
        assert debug["watchdog"]["alarms_raised"] == 0, (
            "healthy run raised a desync alarm"
        )

    telemetry.disable()
    print("\ntelemetry smoke passed.")


if __name__ == "__main__":
    main()
