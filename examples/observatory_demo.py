"""Observatory smoke: live metrics, critical-path blame, merged timeline.

Runs a short multi-rank DDP job with the full performance observatory
attached:

* a :class:`~repro.telemetry.observatory.MetricsSampler` snapshotting
  every rank's metrics registry at 50 ms into ring-bounded time series,
  dumped to ``observatory_metrics.jsonl`` (one JSON tick per line);
* a Prometheus exporter serving the same registries on ``/metrics`` —
  the demo scrapes itself once over HTTP and prints a few lines;
* the critical-path profiler's per-bucket blame table for the last
  iteration (where did the wall time go: prepare, backward, exposed
  communication, finalize) and the cross-rank straggler summary;
* the merged Chrome trace (``observatory_timeline.json``): telemetry
  spans, flight-recorder collective lifecycles (enable with
  ``REPRO_DEBUG=INFO``), and resilience instants in one timeline —
  load it at https://ui.perfetto.dev.

The script validates its own outputs (series present, exposition
scrapes, attribution sums to the iteration wall time, trace parses) so
CI can run it as the observatory smoke test.

Run:
    python examples/observatory_demo.py
    REPRO_DEBUG=INFO python examples/observatory_demo.py
"""

import json
import os
import urllib.request

import numpy as np

from repro import nn, optim, telemetry
from repro.autograd import Tensor
from repro.comm import run_distributed
from repro.core import DistributedDataParallel
from repro.telemetry.observatory import (
    CriticalPathProfiler,
    MetricsSampler,
    start_exporter,
)
from repro.utils import manual_seed

WORLD_SIZE = int(os.environ.get("REPRO_DEMO_WORLD", "4"))
ITERATIONS = 6
METRICS_PATH = os.environ.get("REPRO_DEMO_METRICS", "observatory_metrics.jsonl")
TIMELINE_PATH = os.environ.get("REPRO_DEMO_TIMELINE", "observatory_timeline.json")


def train(rank: int):
    manual_seed(7)
    net = nn.Sequential(
        nn.Linear(64, 192), nn.ReLU(), nn.Linear(192, 192), nn.ReLU(),
        nn.Linear(192, 8),
    )
    ddp = DistributedDataParallel(net, bucket_cap_mb=0.25)
    opt = optim.SGD(ddp.parameters(), lr=0.01)
    loss_fn = nn.CrossEntropyLoss()
    rng = np.random.default_rng(rank)
    for _ in range(ITERATIONS):
        inp = Tensor(rng.standard_normal((64, 64)))
        exp = rng.integers(0, 8, 64)
        opt.zero_grad()
        loss_fn(ddp(inp), exp).backward()
        opt.step()
    return ddp.ddp_stats()


def main() -> int:
    telemetry.enable()
    sampler = MetricsSampler(interval=0.05).start()
    exporter = start_exporter(port=int(os.environ.get("REPRO_METRICS_PORT", 0)))

    print(f"== training: {WORLD_SIZE} ranks x {ITERATIONS} iterations ==")
    stats = run_distributed(WORLD_SIZE, train, backend="gloo", timeout=60.0)

    # -- live scrape (what a real Prometheus would pull) ----------------
    with urllib.request.urlopen(exporter.url, timeout=5) as response:
        exposition = response.read().decode()
    interesting = [
        line for line in exposition.splitlines()
        if line.startswith(("repro_iterations_synced", "repro_iteration_overlap"))
    ]
    print(f"\n== scraped {exporter.url}: {len(exposition.splitlines())} lines ==")
    print("\n".join(interesting[: WORLD_SIZE * 2]))
    assert "repro_iterations_synced_total" in exposition

    # -- time series ----------------------------------------------------
    sampler.stop()
    names = sampler.series_names()
    print(f"\n== sampler: {sampler.generation + 1} ticks, "
          f"{len(names)} metrics tracked ==")
    overlap = sampler.series("iteration.overlap_ratio", rank=0)
    assert overlap is not None and len(overlap) >= 1
    sampler.dump_jsonl(METRICS_PATH)
    print(f"wrote {METRICS_PATH} ({len(sampler.ticks())} ticks)")

    # -- critical-path blame -------------------------------------------
    profiler = CriticalPathProfiler()
    profile = profiler.last_profile()
    print("\n== critical path (last iteration) ==")
    print(profile.blame_table())
    attributed = sum(profile.attribution().values())
    assert abs(attributed - profile.total_s) <= 0.02 * profile.total_s
    print(f"\n{profiler.straggler_summary().describe()}")
    ddp_profile = stats[0]["profile"]
    assert ddp_profile is not None and ddp_profile["blame"]
    print(f"ddp_stats profile: overlap {ddp_profile['overlap_ratio']:.3f}, "
          f"exposed comm {ddp_profile['exposed_comm_ms']:.3f} ms")

    # -- merged timeline ------------------------------------------------
    path = telemetry.export_merged_trace(TIMELINE_PATH)
    document = json.load(open(path))
    events = document["traceEvents"]
    categories = {e.get("cat") for e in events if e.get("cat")}
    print(f"\n== merged timeline: {len(events)} events, tracks: "
          f"{sorted(categories)} ==")
    assert {"compute", "comm", "iteration"} <= categories
    if os.environ.get("REPRO_DEBUG", "").upper() in ("INFO", "DETAIL", "1", "2"):
        assert "flight" in categories, "flight-recorder track missing"
        print("flight-recorder track present "
              f"({sum(1 for e in events if e.get('cat') == 'flight')} records)")
    print(f"wrote {path} — open at https://ui.perfetto.dev")

    exporter.close()
    print("\nobservatory demo OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
