"""Baselines the paper positions DDP against.

* :mod:`~repro.baselines.parameter_server` — the P2P parameter-server
  architecture (§2.3, Table 1's asynchronous rows): a server rank owns
  the parameters and optimizer; worker ranks push gradients and pull
  parameters, synchronously (mathematically equivalent, but two network
  hops and a server bottleneck) or asynchronously (no barrier, but
  stale gradients).
* ``repro.core.param_avg`` (in the core package, because the paper
  discusses it in §2.2) — parameter averaging.
"""

from repro.baselines.parameter_server import (
    ParameterServer,
    ParameterServerWorker,
    run_parameter_server_training,
)
from repro.baselines.zero import ZeroRedundancyOptimizer

__all__ = [
    "ParameterServer",
    "ParameterServerWorker",
    "run_parameter_server_training",
    "ZeroRedundancyOptimizer",
]
