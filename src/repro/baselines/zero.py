"""ZeRO stage-1 baseline, now a thin adapter over :mod:`repro.sharded`.

The paper describes ZeRO as "data parallelism with minimum model
replication" (§7).  Earlier revisions of this module implemented a toy
stage-1 by whole-parameter greedy partitioning plus one broadcast per
parameter; it is now an adapter over
:class:`repro.sharded.optimizer.ShardedOptimizer`, which shards by
*flat spans* (balanced to ±1 element) and restores replicas with one
pipelined ``all_gather_flat`` per bucket instead of per-parameter
broadcasts.  The public surface the ablation experiments use is
unchanged:

* construct with ``(params, optimizer_factory, process_group)``;
* after DDP's backward (gradients already averaged everywhere), call
  :meth:`ZeroRedundancyOptimizer.step` — each rank updates only its
  shard, then every replica is made identical again;
* ``owner_of`` still maps parameter index → rank, now the rank whose
  span holds the parameter's first flat element (deterministic and
  size-balanced, as the flat order splits by elements).

Mathematically equivalent to running the full optimizer on every rank —
elementwise updates make span sharding exact, not approximate; the win
is memory: per-rank optimizer state shrinks by ~world_size (see
:func:`repro.simulation.memory.memory_report`).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.comm.process_group import ProcessGroup
from repro.sharded.flat import FlatShardLayout, unit_bucket_specs
from repro.sharded.optimizer import ShardedOptimizer


class ZeroRedundancyOptimizer:
    """Shards an optimizer's state across a process group (ZeRO-1).

    Parameters
    ----------
    params:
        The model's parameters (same order on every rank).
    optimizer_factory:
        ``lambda shard_params: SGD(shard_params, ...)`` — constructs the
        inner optimizer over this rank's shard tensors only.
    process_group:
        Group used to re-gather updated parameter spans.
    """

    def __init__(
        self,
        params,
        optimizer_factory: Callable[[List], object],
        process_group: ProcessGroup,
    ):
        self.params: List = list(params)
        if not self.params:
            raise ValueError("ZeroRedundancyOptimizer got no parameters")
        self.process_group = process_group
        self.world = int(process_group.size)
        self.rank = process_group.group_rank

        # One bucket in forward parameters() order: the flat
        # concatenation whose spans define ownership.
        layout = FlatShardLayout(
            self.params,
            self.world,
            specs=unit_bucket_specs([list(range(len(self.params)))], self.params),
        )
        self._sharded = ShardedOptimizer(
            self.params,
            optimizer_factory,
            process_group=process_group,
            layout=layout,
            gather_after_step=True,
        )
        self.layout = layout
        self.owner_of: Dict[int, int] = self._partition()
        self.local_optimizer = self._sharded.inner

    def _partition(self) -> Dict[int, int]:
        """Primary owner of each parameter: the rank whose span contains
        its first flat element.  Deterministic given (sizes, world) —
        every rank computes the same map without communication."""
        owner: Dict[int, int] = {}
        spans = self.layout.spans[0]
        for index, offset, _ in self.layout.bucket_entries(0):
            for rank, (lo, hi) in enumerate(spans):
                if lo <= offset < hi:
                    owner[index] = rank
                    break
        return owner

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Update the local span shard, then all-gather every bucket's
        updated spans so replicas are identical again."""
        self._sharded.set_grads_from_params()
        self._sharded.step()

    def zero_grad(self) -> None:
        """Clear parameter and shard gradients."""
        self._sharded.zero_grad()

    # ------------------------------------------------------------------
    def shard_numel(self) -> int:
        """Number of parameter elements whose optimizer state lives here."""
        return self._sharded.shard_numel()

    def state_bytes(self, bytes_per_element: int = 8) -> int:
        """Approximate local optimizer-state footprint (one slot per
        element, e.g. momentum; Adam would be 2x)."""
        return self.shard_numel() * bytes_per_element
