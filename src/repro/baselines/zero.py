"""ZeRO-style optimizer-state sharding (paper §7 related work).

The paper describes ZeRO as "data parallelism with minimum model
replication": parameters, gradients, and optimizer states are
partitioned across DDP instances, trading extra communication for
memory.  This module implements the stage-1 idea (optimizer-state
sharding, PyTorch's ``ZeroRedundancyOptimizer``) on this library's
stack:

* parameters are partitioned across ranks (greedy by size, largest
  first, to balance shards);
* after DDP's backward (gradients already averaged everywhere), each
  rank runs the real optimizer **only on its own shard** — so momentum
  / Adam moments exist once per parameter across the cluster instead of
  once per rank;
* each updated parameter is then broadcast from its owner, restoring
  identical replicas.

Mathematically equivalent to running the full optimizer on every rank;
the win is memory: per-rank optimizer state shrinks by ~world_size
(see :func:`repro.simulation.memory.memory_report`).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.comm.process_group import ProcessGroup


class ZeroRedundancyOptimizer:
    """Shards an optimizer's state across a process group.

    Parameters
    ----------
    params:
        The model's parameters (same order on every rank).
    optimizer_factory:
        ``lambda shard_params: SGD(shard_params, ...)`` — constructs the
        local optimizer over this rank's shard only.
    process_group:
        Group used to broadcast updated shards.
    """

    def __init__(
        self,
        params,
        optimizer_factory: Callable[[List], object],
        process_group: ProcessGroup,
    ):
        self.params: List = list(params)
        if not self.params:
            raise ValueError("ZeroRedundancyOptimizer got no parameters")
        self.process_group = process_group
        self.world = process_group.size
        self.rank = process_group.group_rank

        self.owner_of: Dict[int, int] = self._partition()
        shard = [p for i, p in enumerate(self.params) if self.owner_of[i] == self.rank]
        # A rank can own nothing for tiny models; keep a well-formed
        # optimizer anyway by handing it an empty-grad sentinel list.
        self.local_optimizer = optimizer_factory(shard) if shard else None
        self._shard_indices = [i for i in range(len(self.params)) if self.owner_of[i] == self.rank]

    def _partition(self) -> Dict[int, int]:
        """Greedy largest-first balancing of parameter elements.

        Deterministic given (sizes, world), so every rank computes the
        same ownership map without communication.
        """
        loads = [0] * self.world
        owner: Dict[int, int] = {}
        order = sorted(
            range(len(self.params)),
            key=lambda i: (-self.params[i].numel(), i),
        )
        for index in order:
            target = min(range(self.world), key=lambda r: (loads[r], r))
            owner[index] = target
            loads[target] += self.params[index].numel()
        return owner

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Update the local shard, then broadcast every parameter from
        its owner (one collective per parameter, in index order)."""
        if self.local_optimizer is not None:
            self.local_optimizer.step()
        for index, param in enumerate(self.params):
            self.process_group.broadcast(param, src=self.owner_of[index])

    def zero_grad(self) -> None:
        for param in self.params:
            param.grad = None

    # ------------------------------------------------------------------
    def shard_numel(self) -> int:
        """Number of parameter elements whose optimizer state lives here."""
        return sum(self.params[i].numel() for i in self._shard_indices)

    def state_bytes(self, bytes_per_element: int = 8) -> int:
        """Approximate local optimizer-state footprint (one slot per
        element, e.g. momentum; Adam would be 2x)."""
        return self.shard_numel() * bytes_per_element
