"""A parameter-server baseline over point-to-point communication.

The paper contrasts DDP's synchronized collectives with "the P2P
communication used in parameter servers" (§2.3, citing Li et al., OSDI
2014).  This module implements that architecture on the same transport
DDP's collectives use, so the two strategies are directly comparable:

* **server rank** (global rank 0 by convention) owns the authoritative
  parameters and the only optimizer; it aggregates pushed gradients and
  serves parameter pulls.
* **worker ranks** compute gradients on local shards, push them to the
  server, and pull fresh parameters.

Two modes:

* ``sync`` — the server waits for one gradient from every worker per
  round, averages, steps once, then answers all pulls: mathematically
  equivalent to DDP/local training, but every gradient crosses the wire
  twice (push + pull) through a single server link.
* ``async`` — the server applies each gradient the moment it arrives
  and replies with the current parameters: no barrier, no equivalence —
  workers train on stale parameters (Table 1's "A" rows).
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional

import numpy as np

from repro.comm.transport import TransportHub

_PUSH = "ps/push"
_PULL = "ps/pull"
_STOP = "ps/stop"


def _flatten_params(module) -> np.ndarray:
    return np.concatenate([p.data.reshape(-1) for p in module.parameters()])


def _unflatten_into(module, flat: np.ndarray) -> None:
    offset = 0
    for param in module.parameters():
        size = param.numel()
        param.data[...] = flat[offset : offset + size].reshape(param.shape)
        offset += size


def _flatten_grads(module) -> np.ndarray:
    chunks = []
    for param in module.parameters():
        if param.grad is None:
            chunks.append(np.zeros(param.numel()))
        else:
            chunks.append(param.grad.data.reshape(-1))
    return np.concatenate(chunks)


def _write_grads(module, flat: np.ndarray) -> None:
    from repro.autograd.tensor import Tensor

    offset = 0
    for param in module.parameters():
        size = param.numel()
        value = flat[offset : offset + size].reshape(param.shape)
        if param.grad is None:
            param.grad = Tensor(value.copy())
        else:
            param.grad.data[...] = value
        offset += size


class ParameterServer:
    """The server rank's event loop.

    Owns ``module`` (the authoritative parameters) and ``optimizer``.
    ``serve()`` processes pushes and pulls until every worker has sent a
    stop notice.
    """

    def __init__(
        self,
        module,
        optimizer,
        hub: TransportHub,
        server_rank: int,
        worker_ranks: List[int],
        mode: str = "sync",
    ):
        if mode not in ("sync", "async"):
            raise ValueError(f"mode must be 'sync' or 'async', got {mode!r}")
        self.module = module
        self.optimizer = optimizer
        self.hub = hub
        self.server_rank = server_rank
        self.worker_ranks = list(worker_ranks)
        self.mode = mode
        self.updates_applied = 0

    # -- serving --------------------------------------------------------
    def serve(self, timeout: Optional[float] = None) -> None:
        if self.mode == "sync":
            self._serve_sync(timeout)
        else:
            self._serve_async(timeout)

    def _answer_pull(self, worker: int) -> None:
        self.hub.send(self.server_rank, worker, _PULL, _flatten_params(self.module))

    def _serve_sync(self, timeout) -> None:
        """Round-based: gather one gradient per worker, step, answer pulls."""
        active = set(self.worker_ranks)
        while active:
            gradients = []
            for worker in sorted(active):
                message = self.hub.recv(self.server_rank, worker, _PUSH, timeout)
                if message is None:  # stop notice
                    active.discard(worker)
                else:
                    gradients.append(message)
            if not gradients:
                break
            mean_grad = np.mean(gradients, axis=0)
            _write_grads(self.module, mean_grad)
            self.optimizer.step()
            self.updates_applied += 1
            for worker in sorted(active):
                self._answer_pull(worker)

    def _serve_async(self, timeout) -> None:
        """Apply each gradient on arrival; reply with current params.

        Workers race: a gradient computed against parameter version v
        may be applied at version v+k (staleness k).
        """
        active = set(self.worker_ranks)
        lock = threading.Lock()

        def handle(worker: int) -> None:
            while True:
                message = self.hub.recv(self.server_rank, worker, (_PUSH, worker), timeout)
                if message is None:
                    return
                with lock:
                    _write_grads(self.module, message)
                    self.optimizer.step()
                    self.updates_applied += 1
                    self._answer_pull_async(worker)

        threads = [
            threading.Thread(target=handle, args=(w,), daemon=True) for w in sorted(active)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def _answer_pull_async(self, worker: int) -> None:
        self.hub.send(
            self.server_rank, worker, (_PULL, worker), _flatten_params(self.module)
        )


class ParameterServerWorker:
    """A worker rank's view: pull parameters, compute, push gradients."""

    def __init__(self, module, hub: TransportHub, rank: int, server_rank: int,
                 mode: str = "sync"):
        self.module = module
        self.hub = hub
        self.rank = rank
        self.server_rank = server_rank
        self.mode = mode

    def push_and_pull(self, timeout: Optional[float] = None) -> None:
        """Send local gradients; block for the refreshed parameters."""
        grads = _flatten_grads(self.module)
        if self.mode == "sync":
            self.hub.send(self.rank, self.server_rank, _PUSH, grads)
            fresh = self.hub.recv(self.rank, self.server_rank, _PULL, timeout)
        else:
            self.hub.send(self.rank, self.server_rank, (_PUSH, self.rank), grads)
            fresh = self.hub.recv(self.rank, self.server_rank, (_PULL, self.rank), timeout)
        _unflatten_into(self.module, fresh)

    def finish(self) -> None:
        """Notify the server this worker is done."""
        if self.mode == "sync":
            self.hub.send(self.rank, self.server_rank, _PUSH, None)
        else:
            self.hub.send(self.rank, self.server_rank, (_PUSH, self.rank), None)


def run_parameter_server_training(
    world_size: int,
    make_model: Callable[[], object],
    make_optimizer: Callable[[object], object],
    worker_fn: Callable,
    iterations: int,
    mode: str = "sync",
    timeout: float = 30.0,
):
    """Convenience harness: rank 0 serves, ranks 1..n-1 train.

    ``worker_fn(worker_index, iteration, model)`` must run one local
    forward/backward (gradients left in ``model``).  Returns the final
    server-side state_dict and the per-worker results list.
    """
    from repro.comm import run_distributed

    if world_size < 2:
        raise ValueError("parameter server training needs >= 2 ranks")
    worker_ranks = list(range(1, world_size))
    server_state = {}

    def body(rank: int):
        model = make_model()
        if rank == 0:
            optimizer = make_optimizer(model)
            server = ParameterServer(
                model, optimizer, _hub_of(), 0, worker_ranks, mode=mode
            )
            server.serve(timeout)
            server_state["state"] = model.state_dict()
            server_state["updates"] = server.updates_applied
            return None
        worker = ParameterServerWorker(model, _hub_of(), rank, 0, mode=mode)
        # initial pull substitute: start from identical seeds (workers
        # construct the same model as the server by seed convention)
        for iteration in range(iterations):
            model.zero_grad()
            worker_fn(rank - 1, iteration, model)
            worker.push_and_pull(timeout)
        worker.finish()
        return model.state_dict()

    def _hub_of():
        from repro.comm import get_context

        return get_context().hub

    results = run_distributed(world_size, body, timeout=timeout)
    return server_state, results[1:]
