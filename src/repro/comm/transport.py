"""Point-to-point transport between ranks.

``TransportHub`` is the wire: every (src → dst) pair owns a set of tagged
mailboxes.  Collective algorithms are written purely in terms of
``send``/``recv``, exactly as they would be over sockets or InfiniBand
verbs, so the ring/tree/halving-doubling implementations in
``algorithms.py`` are the real algorithms, not shortcuts through shared
memory.

The hub also keeps per-rank traffic counters (messages and bytes sent),
which the tests use to verify algorithmic properties such as "ring
AllReduce sends ``2*(p-1)`` chunks per rank".
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict, deque
from typing import Any, Dict, Hashable, Tuple

from repro.telemetry.metrics import registry_for
from repro.telemetry.spans import TRACER


class TransportTimeoutError(TimeoutError):
    """A ``recv`` found no matching message before its deadline.

    In real deployments this surfaces as a NCCL/Gloo timeout or hang —
    the failure mode of Fig. 3 when ranks disagree on what to send.
    """


class TransportClosedError(RuntimeError):
    """The hub was shut down while a rank was blocked in ``recv``."""


#: Sentinel distinguishing "no message before the slice expired" from a
#: legitimate ``None`` payload in :meth:`TransportHub._wait_one`.
_NOTHING = object()


class TransportHub:
    """In-process message fabric connecting ``world_size`` ranks.

    Thread-safety: fully thread-safe — one condition variable guards the
    mailboxes, counters, and waiting-receiver registry, so any number of
    rank and communication-worker threads may ``send``/``recv``
    concurrently.  ``send`` never blocks (the deposit models the wire:
    the payload is on its way the moment the call returns), which is
    what lets chunked collectives keep several chunks in flight.

    Cost model: one ``send``/``recv`` pair is one α (latency) plus
    ``payload.nbytes``·β (bandwidth) in the paper's terms; the per-rank
    ``messages_sent``/``bytes_sent`` counters measure exactly those two
    quantities for tests and benchmarks.
    """

    def __init__(self, world_size: int, default_timeout: float = 30.0):
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        self.world_size = world_size
        self.default_timeout = default_timeout
        self._cond = threading.Condition()
        self._mailboxes: Dict[Tuple[int, int, Hashable], deque] = defaultdict(deque)
        self._closed = False
        self.messages_sent = [0] * world_size
        self.bytes_sent = [0] * world_size
        # Live registry of blocked receivers, keyed by an opaque token —
        # the debug watchdog's "who is stuck waiting on whom" evidence.
        self._waiting: Dict[int, Tuple[int, int, Hashable, float]] = {}
        self._wait_token = 0
        #: Optional :class:`repro.resilience.FaultPlan` consulted on every
        #: send (drop / delay / duplicate / corrupt / crash-rank rules).
        self.fault_plan = None

    def install_fault_plan(self, plan) -> None:
        """Install a fault-injection plan; ``None`` removes it.

        Every subsequent :meth:`send` consults ``plan.on_send`` — the
        plan may drop the wire delivery, delay it, duplicate it, corrupt
        the payload, or raise
        :class:`~repro.resilience.InjectedRankFailure` on the sending
        thread.  Process groups sharing this hub pick the plan up for
        collective-scoped rules as well.
        """
        self.fault_plan = plan

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.world_size:
            raise ValueError(f"rank {rank} out of range for world size {self.world_size}")

    def send(self, src: int, dst: int, tag: Hashable, payload: Any) -> None:
        """Deposit ``payload`` into the (src, dst, tag) mailbox.

        With a fault plan installed the deposit models a lossy wire: the
        plan decides what actually lands in the mailbox (nothing for a
        drop, two copies for a duplicate, a perturbed copy for a
        corruption) and dropped messages are not counted as sent.
        """
        self._check_rank(src)
        self._check_rank(dst)
        plan = self.fault_plan
        if plan is None:
            self._deposit(src, dst, tag, payload)
            return
        for delivery in plan.on_send(src, dst, tag, payload):
            self._deposit(src, dst, tag, delivery)

    def _deposit(self, src: int, dst: int, tag: Hashable, payload: Any) -> None:
        """Place one message on the wire (counters + receiver wakeup)."""
        nbytes = getattr(payload, "nbytes", 0)
        with self._cond:
            if self._closed:
                raise TransportClosedError("transport hub is closed")
            self._mailboxes[(src, dst, tag)].append(payload)
            self.messages_sent[src] += 1
            self.bytes_sent[src] += int(nbytes)
            self._cond.notify_all()
        if TRACER.enabled:
            registry = registry_for(src)
            registry.counter("transport.messages_sent").add(1)
            registry.counter("transport.bytes_sent").add(int(nbytes))

    def recv(self, dst: int, src: int, tag: Hashable, timeout: float | None = None) -> Any:
        """Block until a message matching (src, dst, tag) arrives.

        With telemetry enabled, the blocked interval is recorded as a
        ``transport.recv`` span on the *receiver's* timeline — the
        dependency-stall picture of who waits on whom.
        """
        self._check_rank(src)
        self._check_rank(dst)
        deadline = timeout if timeout is not None else self.default_timeout
        key = (src, dst, tag)
        traced = TRACER.enabled
        t_start = time.perf_counter() if traced else 0.0
        payload = self._wait_one(key, deadline)
        if payload is _NOTHING:
            raise TransportTimeoutError(
                f"rank {dst} timed out waiting for message from rank {src} "
                f"tag {tag!r} after {deadline}s (peer rank diverged or hung?)"
            )
        if traced:
            TRACER.record(
                "transport.recv",
                t_start,
                time.perf_counter(),
                cat="transport",
                stream="transport",
                rank=dst,
                args={"src": src, "bytes": int(getattr(payload, "nbytes", 0))},
            )
        return payload

    def _wait_one(self, key: Tuple[int, int, Hashable], timeout: float) -> Any:
        """Pop the next message for ``key``, or ``_NOTHING`` on timeout.

        The wait is registered in the blocked-receiver table (watchdog
        evidence) and a hub close raises ``TransportClosedError``.
        Subclasses use this to wait in short backoff slices.
        """
        src, dst, tag = key
        with self._cond:
            token = self._wait_token
            self._wait_token += 1
            self._waiting[token] = (dst, src, tag, time.perf_counter())
            try:
                ok = self._cond.wait_for(
                    lambda: self._closed or bool(self._mailboxes.get(key)), timeout
                )
            finally:
                self._waiting.pop(token, None)
            if self._closed:
                raise TransportClosedError("transport hub closed during recv")
            if not ok:
                return _NOTHING
            return self._mailboxes[key].popleft()

    def close(self) -> None:
        """Wake every blocked receiver with ``TransportClosedError``."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran; sends and recvs then raise."""
        return self._closed

    def blocked_receivers(self) -> list:
        """Snapshot of ranks currently blocked in :meth:`recv`.

        Each entry names the blocked rank, the rank it is waiting on,
        the tag, and how long it has been blocked — the transport-level
        view a desync report attaches per rank.
        """
        now = time.perf_counter()
        with self._cond:
            return [
                {
                    "rank": dst,
                    "waiting_on": src,
                    "tag": repr(tag),
                    "blocked_s": now - since,
                }
                for dst, src, tag, since in self._waiting.values()
            ]

    def reset_stats(self) -> None:
        """Zero the per-rank message/byte counters (thread-safe)."""
        with self._cond:
            self.messages_sent = [0] * self.world_size
            self.bytes_sent = [0] * self.world_size

    def pending_messages(self) -> int:
        """Total messages deposited but not yet received (thread-safe)."""
        with self._cond:
            return sum(len(box) for box in self._mailboxes.values())
