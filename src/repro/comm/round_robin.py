"""Round-robin composition of process groups (paper §3.3, §5.4).

A single NCCL or Gloo group may be unable to saturate the link (stream
or thread concurrency limits).  ``RoundRobinProcessGroup`` takes a list
of member groups and dispatches successive collectives to them in
round-robin order.  Because every rank constructs the same number of
member groups and issues collectives in the same order, the dispatch
index stays aligned across ranks.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.comm.process_group import ProcessGroup, ReduceOp


class RoundRobinProcessGroup:
    """Dispatches collectives across member groups in rotation."""

    def __init__(self, groups: Sequence[ProcessGroup]):
        if not groups:
            raise ValueError("round-robin group needs at least one member group")
        sizes = {g.size for g in groups}
        if len(sizes) != 1:
            raise ValueError("member groups must have identical membership")
        self.groups: List[ProcessGroup] = list(groups)
        self._next = 0

    @property
    def backend(self) -> str:
        """Composite backend label, e.g. ``round_robin(ncclx2)``."""
        return f"round_robin({self.groups[0].backend}x{len(self.groups)})"

    @property
    def size(self) -> int:
        """Number of ranks (identical across member groups)."""
        return self.groups[0].size

    @property
    def group_rank(self) -> int:
        """This rank's index within the (shared) group membership."""
        return self.groups[0].group_rank

    @property
    def supports_cpu_tensors(self) -> bool:
        """Device policy of the member backend (all members agree)."""
        return self.groups[0].supports_cpu_tensors

    @property
    def bytes_communicated(self) -> int:
        """Total bytes issued across every member group."""
        return sum(g.bytes_communicated for g in self.groups)

    # Debug-layer surfaces (flight recorder, DDP consistency checks,
    # monitored_barrier) address the composite through its first member.
    @property
    def store(self):
        """Rendezvous store (first member's)."""
        return self.groups[0].store

    @property
    def global_rank(self) -> int:
        """This rank's global id (first member's)."""
        return self.groups[0].global_rank

    @property
    def ranks(self):
        """Member rank list (identical across member groups)."""
        return self.groups[0].ranks

    @property
    def timeout(self) -> float:
        """Collective timeout in seconds (first member's)."""
        return self.groups[0].timeout

    @property
    def _group_id(self):
        return self.groups[0]._group_id

    @property
    def flight_recorder(self):
        """Debug flight recorder (first member's), or None."""
        return self.groups[0].flight_recorder

    @property
    def _watchdog(self):
        return self.groups[0]._watchdog

    def _pick(self) -> ProcessGroup:
        group = self.groups[self._next]
        self._next = (self._next + 1) % len(self.groups)
        return group

    def allreduce(self, tensor, op: str = ReduceOp.SUM, async_op: bool = False):
        """AllReduce on the next member group in rotation."""
        return self._pick().allreduce(tensor, op, async_op)

    def broadcast(self, tensor, src: int = 0, async_op: bool = False):
        """Broadcast on the next member group in rotation."""
        return self._pick().broadcast(tensor, src, async_op)

    def allgather(self, tensor, async_op: bool = False):
        """Allgather on the next member group in rotation."""
        return self._pick().allgather(tensor, async_op)

    def barrier(self) -> None:
        """Barrier on the next member group in rotation."""
        self._pick().barrier()

    def shutdown(self) -> bool:
        """Shut down every member group; True if all workers joined."""
        ok = True
        for group in self.groups:
            ok = group.shutdown() and ok
        return ok
