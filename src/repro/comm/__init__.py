"""Collective communication: the ``c10d`` analog.

Each logical "process" (GPU worker) is a Python thread with a rank.  The
package provides:

* :class:`~repro.comm.store.Store` — rendezvous key/value store (the
  analog of ``TCPStore``); ProcessGroup construction blocks until every
  rank joins, exactly as described in paper §3.3.
* :class:`~repro.comm.transport.TransportHub` — point-to-point message
  channels between ranks, with byte/message accounting.
* :mod:`~repro.comm.algorithms` — real AllReduce implementations (naive,
  ring, binary tree, recursive halving-doubling) plus broadcast,
  allgather, reduce-scatter, barrier.
* :class:`~repro.comm.process_group.ProcessGroup` — the uniform API DDP
  programs against; ``ProcessGroupNccl`` and ``ProcessGroupGloo`` differ
  in default algorithm and in the cost personality the simulator assigns
  them, not in semantics.
* :class:`~repro.comm.round_robin.RoundRobinProcessGroup` — dispatches
  successive collectives across several groups (paper §3.3, §5.4).
* :mod:`~repro.comm.distributed` — rank context plumbing and the
  ``run_distributed`` thread harness used by tests and examples.
"""

from repro.comm.store import Store
from repro.comm.transport import TransportHub
from repro.comm.process_group import (
    ProcessGroup,
    ProcessGroupGloo,
    ProcessGroupMpi,
    ProcessGroupNccl,
    ReduceOp,
    Work,
    CollectiveError,
    CollectiveMismatchError,
    CollectiveTimeoutError,
)
from repro.comm.round_robin import RoundRobinProcessGroup
from repro.comm.distributed import (
    DistributedContext,
    init_process_group,
    destroy_process_group,
    get_context,
    get_rank,
    get_world_size,
    monitored_barrier,
    new_process_group,
    new_round_robin_group,
    run_distributed,
)

__all__ = [
    "Store",
    "TransportHub",
    "ProcessGroup",
    "ProcessGroupGloo",
    "ProcessGroupMpi",
    "ProcessGroupNccl",
    "RoundRobinProcessGroup",
    "ReduceOp",
    "Work",
    "CollectiveError",
    "CollectiveMismatchError",
    "CollectiveTimeoutError",
    "DistributedContext",
    "init_process_group",
    "destroy_process_group",
    "get_context",
    "get_rank",
    "get_world_size",
    "monitored_barrier",
    "new_process_group",
    "new_round_robin_group",
    "run_distributed",
]
