"""The ``ProcessGroup`` abstraction and its backend implementations.

DDP wraps NCCL, Gloo and MPI behind one ``ProcessGroup`` API (paper
§3.3).  Key semantics reproduced here:

* **Rendezvous construction** — all instances construct together; the
  first arrival blocks until the last joins.
* **Asynchronous execution** — every collective may return a ``Work``
  handle; each rank owns one or more dedicated communication worker
  threads (the analog of NCCL's dedicated CUDA streams), so
  communication genuinely proceeds concurrently with the caller's
  computation.  With ``num_streams > 1``, collectives are assigned to
  streams deterministically by sequence number (``seq % num_streams``),
  which keeps the assignment identical on every rank — a collective
  always meets its peers on the same stream, so multiple buckets can be
  genuinely in flight at once without cross-rank mismatches.
* **Ordered collectives** — operations on all instances must match in
  type/shape/dtype and follow the same order.  A built-in signature
  checker turns the real-world symptom (silent corruption or a hang)
  into a diagnosable :class:`CollectiveMismatchError`.
* **Device restrictions** — ``ProcessGroupNccl`` only accepts tensors on
  ``gpu:*`` devices, which forces DDP to keep its CPU bitmap copy logic
  (paper §4.2, "Globally Unused Parameters").
"""

from __future__ import annotations

import queue
import threading
import time
from typing import List, Optional, Sequence

import numpy as np

from repro.comm import algorithms
from repro.comm.store import Store, StoreTimeoutError
from repro.comm.transport import TransportHub, TransportTimeoutError
from repro.debug import desync as _desync
from repro.debug.flight_recorder import current_collective_context, recorder_for
from repro.debug.levels import DEBUG, DETAIL
from repro.telemetry.health import accounting as _health
from repro.telemetry.health.events import record_event
from repro.telemetry.metrics import registry_for
from repro.telemetry.spans import TRACER
from repro.utils.logging import logger
from repro.utils.rank import set_current_rank


class ReduceOp:
    """Reduction operators accepted by collectives."""

    SUM = "sum"
    PROD = "prod"
    MIN = "min"
    MAX = "max"
    BOR = "bor"
    BAND = "band"


class CollectiveError(RuntimeError):
    """Base class for collective-communication failures."""


class CollectiveMismatchError(CollectiveError):
    """Ranks disagreed on the collective sequence (paper Fig. 3(a) failure)."""


class CollectiveTimeoutError(CollectiveError):
    """A collective did not complete in time (a peer hung or diverged)."""


class Work:
    """Handle for an asynchronously executing collective.

    The communication worker stamps ``_t_start``/``_t_end``
    (``perf_counter`` seconds) around the collective's execution, so
    callers holding the handle — notably the reducer's per-bucket
    latency and overlap-ratio accounting — can read how long the
    operation actually ran, as opposed to how long they waited on it.
    """

    def __init__(self, description: str = "", meta: Optional[dict] = None):
        self._done = threading.Event()
        self._error: Optional[BaseException] = None
        self.description = description
        self.meta = meta
        self._t_start: Optional[float] = None
        self._t_end: Optional[float] = None
        # Flight-recorder record for this collective (debug mode only).
        self._debug_record = None

    def _complete(self, error: Optional[BaseException] = None) -> None:
        # First completion wins: the hang watchdog may fail a stuck Work
        # with a desync report before the worker's own (less precise)
        # transport timeout surfaces; keep the richer error.
        if self._done.is_set():
            return
        self._error = error
        self._done.set()

    def is_completed(self) -> bool:
        """Non-blocking poll: has the collective finished (ok or not)?"""
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> None:
        """Block until the collective finishes; re-raise any failure.

        A caller-side timeout does not leave the collective dangling:
        the work is marked failed (first completion wins, so a worker
        that finishes in the same instant keeps its result) and its
        flight-recorder record — which would otherwise stay "started"
        forever — is closed as failed with the timeout error.
        """
        if not self._done.wait(timeout):
            detail = ""
            if self.meta:
                detail = " (" + ", ".join(
                    f"{key}={value}" for key, value in sorted(self.meta.items())
                ) + ")"
            error = CollectiveTimeoutError(
                f"timed out waiting for collective {self.description!r}{detail} "
                f"after {timeout}s (caller-side wait expired)"
            )
            self._complete(error)
            if self._error is None:
                # Lost the race: the worker completed successfully
                # between the wait expiring and our failure landing.
                return
            if self._debug_record is not None:
                from repro.debug.flight_recorder import mark_record_failed

                mark_record_failed(self._debug_record, self._error)
            raise self._error
        if self._error is not None:
            raise self._error

    def __repr__(self) -> str:
        state = "done" if self.is_completed() else "pending"
        return f"<Work {self.description} {state}>"


def _as_array(tensor) -> np.ndarray:
    """Accept either a library Tensor or a raw ndarray."""
    if isinstance(tensor, np.ndarray):
        return tensor
    data = getattr(tensor, "data", None)
    if not isinstance(data, np.ndarray):
        raise TypeError(f"collectives operate on tensors/ndarrays, got {type(tensor)}")
    return data


def _device_of(tensor) -> Optional[str]:
    """Device tag, or None for raw ndarrays (treated as device memory)."""
    if isinstance(tensor, np.ndarray):
        return None
    return getattr(tensor, "device", None)


class ProcessGroup:
    """One rank's membership in a communicator group.

    Subclasses choose the default AllReduce algorithm and the accepted
    device kinds.  Per-rank instances coordinate purely through the
    shared :class:`TransportHub` and :class:`Store`.
    """

    #: Backend name, e.g. "nccl" — used by cost models and diagnostics.
    backend = "base"
    #: Default AllReduce algorithm key into ``algorithms.ALLREDUCE_ALGORITHMS``.
    default_algorithm = "ring"
    #: Whether tensors tagged "cpu" may be communicated.
    supports_cpu_tensors = True

    def __init__(
        self,
        store: Store,
        hub: TransportHub,
        rank: int,
        ranks: Optional[Sequence[int]] = None,
        group_id: Optional[int] = None,
        timeout: float = 30.0,
        algorithm: Optional[str] = None,
        check_consistency: bool = True,
        num_streams: int = 1,
        chunk_bytes: Optional[int] = None,
    ):
        self.store = store
        self.hub = hub
        self.global_rank = rank
        self.ranks: List[int] = sorted(ranks) if ranks is not None else list(
            range(hub.world_size)
        )
        if rank not in self.ranks:
            raise ValueError(f"rank {rank} is not a member of group ranks {self.ranks}")
        self.group_rank = self.ranks.index(rank)
        self.timeout = timeout
        self.algorithm = algorithm or self.default_algorithm
        if self.algorithm not in algorithms.ALLREDUCE_ALGORITHMS:
            raise ValueError(f"unknown allreduce algorithm {self.algorithm!r}")
        self.check_consistency = check_consistency
        if num_streams < 1:
            raise ValueError("num_streams must be >= 1")
        #: Number of communication worker threads ("streams"); collectives
        #: are assigned by ``seq % num_streams`` identically on all ranks.
        self.num_streams = int(num_streams)
        #: Default transfer-chunk size forwarded to the AllReduce
        #: algorithm (None → the module default in ``algorithms``).
        self.chunk_bytes = chunk_bytes
        self._seq = 0
        self._group_id = group_id if group_id is not None else 0
        # Fault injection: collective-scoped rules (crash a rank as it
        # issues its n-th collective) ride on the hub's installed plan.
        self._fault_plan = getattr(hub, "fault_plan", None)
        # Byte counter for tests and reporting.
        self.bytes_communicated = 0
        self._closed = False
        # Per-stream (work, started-at) while a worker executes a
        # collective; the hang watchdog polls the oldest via the
        # ``_inflight`` property.  Set/cleared by each worker thread.
        self._inflight_by_stream: dict = {}
        #: Set when shutdown could not join a communication worker.
        self.worker_stuck = False

        # Rendezvous: block until every member has constructed (paper §3.3).
        arrival_key = f"pg{self._group_id}/arrivals"
        self.store.add(arrival_key, 1)
        self.store.wait_value(
            arrival_key, lambda v: v >= len(self.ranks), timeout=timeout
        )

        # Debug layer (REPRO_DEBUG=INFO|DETAIL): per-rank flight recorder
        # plus a hang watchdog thread for this group membership.
        self.flight_recorder = None
        self._watchdog = None
        if DEBUG.level:
            self.flight_recorder = recorder_for(rank)
            from repro.debug.watchdog import HangWatchdog

            self._watchdog = HangWatchdog(self)

        # The dedicated communication workers ("streams").
        self._queues: List["queue.Queue"] = [
            queue.Queue() for _ in range(self.num_streams)
        ]
        self._workers: List[threading.Thread] = [
            threading.Thread(
                target=self._worker_loop,
                args=(stream,),
                name=f"pg{self._group_id}-rank{rank}-comm{stream}",
                daemon=True,
            )
            for stream in range(self.num_streams)
        ]
        for worker in self._workers:
            worker.start()
        if self._watchdog is not None:
            self._watchdog.start()

    # ------------------------------------------------------------------
    # worker machinery
    # ------------------------------------------------------------------
    @property
    def _inflight(self):
        """Oldest in-flight (work, started-at) pair, or None.

        The hang watchdog polls this; with multiple streams the longest-
        running collective is the one worth reporting.
        """
        entries = list(self._inflight_by_stream.values())
        live = [e for e in entries if e is not None]
        if not live:
            return None
        return min(live, key=lambda pair: pair[1])

    def _worker_loop(self, stream: int) -> None:
        # Worker threads carry the owning rank's identity so telemetry
        # spans and log records from inside collectives attribute
        # correctly (the rank contextvar does not cross thread spawns).
        set_current_rank(self.global_rank)
        while True:
            item = self._queues[stream].get()
            if item is None:
                return
            fn, work = item
            error: Optional[BaseException] = None
            record = work._debug_record
            if record is not None:
                self.flight_recorder.mark_started(record)
            # With a retrying transport, attribute this rank's retry
            # counter movement to the collective that ran (approximate
            # under num_streams > 1, exact otherwise).
            retry_probe = getattr(self.hub, "retry_totals_for", None)
            retry_before = retry_probe(self.global_rank) if retry_probe else None
            self._inflight_by_stream[stream] = (work, time.perf_counter())
            # Health accounting brackets the collective so the receive
            # helper in the algorithms can attribute stalls per source.
            health_on = _health.collecting_enabled()
            if health_on:
                _health.begin_collective()
            work._t_start = time.perf_counter()
            if health_on:
                self._record_lifecycle("start", work, work._t_start)
            try:
                fn()
            except BaseException as exc:  # propagate through the Work handle
                error = exc
            work._t_end = time.perf_counter()
            self._inflight_by_stream[stream] = None
            if health_on:
                stall_s, stall_by_src, chunks = _health.end_collective()
                _health.record_collective(
                    self.global_rank,
                    work.meta,
                    work._t_start,
                    work._t_end,
                    len(self.ranks),
                    self.backend,
                    stall_s,
                    stall_by_src,
                    chunks,
                )
                self._record_lifecycle(
                    "failed" if error is not None else "complete",
                    work,
                    work._t_end,
                    extra={"error": type(error).__name__} if error is not None else None,
                )
            if retry_before is not None:
                after = retry_probe(self.global_rank)
                deltas = {
                    name: after[i] - retry_before[i]
                    for i, name in enumerate(
                        ("retries", "retransmits", "duplicates_dropped",
                         "corrupt_detected")
                    )
                    if after[i] > retry_before[i]
                }
                if deltas:
                    if work.meta is not None:
                        work.meta.update(deltas)
                    if record is not None:
                        extra = dict(record.extra or {})
                        extra.update(deltas)
                        record.extra = extra
            if record is not None:
                self.flight_recorder.mark_completed(record, error)
            if TRACER.enabled:
                args = dict(work.meta) if work.meta else {}
                if error is not None:
                    args["error"] = type(error).__name__
                TRACER.record(
                    work.description,
                    work._t_start,
                    work._t_end,
                    cat="comm",
                    stream="comm",
                    rank=self.global_rank,
                    args=args or None,
                )
            work._complete(error)

    def _record_lifecycle(
        self, kind: str, work: Work, t: float, extra: Optional[dict] = None
    ) -> None:
        """Append one collective lifecycle event to this rank's health
        event log, carrying the ``(group, seq)`` trace context that lets
        the engine stitch the same collective across ranks."""
        meta = work.meta or {}
        record_event(
            self.global_rank,
            kind,
            t=t,
            group=self._group_id,
            seq=meta.get("seq"),
            op=meta.get("op"),
            bucket=meta.get("bucket"),
            nbytes=meta.get("bytes"),
            extra=extra,
        )

    def _submit(
        self,
        fn,
        description: str,
        async_op: bool,
        meta: Optional[dict] = None,
        fingerprint: Optional[dict] = None,
    ) -> Optional[Work]:
        """Queue ``fn`` on the deterministic stream for this collective.

        The stream index derives from the collective's sequence number,
        so every rank routes collective ``seq`` to the same worker and
        peers always meet on a matching stream.
        """
        if self._closed:
            raise CollectiveError("process group has been shut down")
        if self._fault_plan is not None:
            # Raises InjectedRankFailure on the issuing rank's own
            # thread when a collective-scoped crash rule fires — before
            # the collective is queued, so peers see a vanished rank.
            self._fault_plan.on_collective(
                self.global_rank,
                (meta or {}).get("op", description),
                (meta or {}).get("seq", -1),
                self._group_id,
            )
        work = Work(description, meta)
        if _health.collecting_enabled():
            self._record_lifecycle("schedule", work, time.perf_counter())
        stream = (meta or {}).get("seq", 0) % self.num_streams
        if self.flight_recorder is not None and DEBUG.level:
            fp = fingerprint or {}
            work._debug_record = self.flight_recorder.record_scheduled(
                seq=(meta or {}).get("seq", -1),
                op=fp.get("op") or (meta or {}).get("op", description),
                group_id=self._group_id,
                shape=fp.get("shape"),
                dtype=fp.get("dtype"),
                nbytes=fp.get("nbytes"),
                extra={k: v for k, v in fp.items()
                       if k not in ("op", "shape", "dtype", "nbytes")},
                context=current_collective_context(),
            )
        self._queues[stream].put((fn, work))
        if async_op:
            return work
        work.wait(self.timeout + 5.0)
        return None

    def install_fault_plan(self, plan) -> None:
        """Install (or with ``None`` remove) a fault plan on this group.

        Overrides the plan inherited from the hub for collective-scoped
        rules; wire-scoped rules always live on the transport hub.
        """
        self._fault_plan = plan

    # ------------------------------------------------------------------
    # live retuning (repro.autotune)
    # ------------------------------------------------------------------
    def set_algorithm(self, algorithm: str) -> None:
        """Switch the AllReduce algorithm for *future* collectives.

        The algorithm is resolved per call, so the switch takes effect
        on the next collective issued.  Every rank must switch at the
        same sequence point — ranks running different algorithms for
        the same collective would deadlock on mismatched message
        patterns.  The autotuner applies this only at agreed iteration
        boundaries.
        """
        if algorithm not in algorithms.ALLREDUCE_ALGORITHMS:
            raise ValueError(f"unknown allreduce algorithm {algorithm!r}")
        self.algorithm = algorithm

    def set_chunk_bytes(self, chunk_bytes: Optional[int]) -> None:
        """Set the pipelining chunk size for future collectives
        (``None`` restores the module default).  Chunking never changes
        results, but all ranks must agree — chunk boundaries define the
        per-step message sequence."""
        if chunk_bytes is not None and chunk_bytes < 1:
            raise ValueError(f"chunk_bytes must be >= 1, got {chunk_bytes}")
        self.chunk_bytes = chunk_bytes

    def set_num_streams(self, num_streams: int) -> None:
        """Live-resize the communication worker pool.

        Must be called at a quiescent point — no collectives in flight
        (every issued ``Work`` waited) — and at the same sequence point
        on every rank, because stream routing is ``seq % num_streams``
        and ranks pair collectives by stream.  Growing appends queues
        and worker threads; shrinking retires the tail workers via the
        queue sentinel and joins them.
        """
        if num_streams < 1:
            raise ValueError("num_streams must be >= 1")
        if self._closed:
            raise CollectiveError("process group is shut down")
        if num_streams == self.num_streams:
            return
        if num_streams > self.num_streams:
            for stream in range(self.num_streams, num_streams):
                self._queues.append(queue.Queue())
                worker = threading.Thread(
                    target=self._worker_loop,
                    args=(stream,),
                    name=f"pg{self._group_id}-rank{self.global_rank}-comm{stream}",
                    daemon=True,
                )
                self._workers.append(worker)
                worker.start()
        else:
            retired = self._workers[num_streams:]
            for stream in range(num_streams, self.num_streams):
                self._queues[stream].put(None)
            for worker in retired:
                worker.join(timeout=self.timeout)
            stuck = [worker.name for worker in retired if worker.is_alive()]
            if stuck:
                # A retired worker still executing means the caller was
                # not quiescent; leave the pool untouched rather than
                # strand a live collective on an unread queue.
                raise CollectiveError(
                    f"set_num_streams({num_streams}) with collectives still "
                    f"in flight on {', '.join(stuck)}; wait all Work first"
                )
            self._queues = self._queues[:num_streams]
            self._workers = self._workers[:num_streams]
            for stream in list(self._inflight_by_stream):
                if stream >= num_streams:
                    self._inflight_by_stream.pop(stream, None)
        self.num_streams = int(num_streams)

    def shutdown(self, grace: float = 2.0) -> bool:
        """Stop the worker threads (idempotent); returns True if all joined.

        A worker blocked in a transport ``recv`` (its peer diverged or
        died) cannot see the queue sentinel, so after ``grace`` seconds
        the hub is closed to wake it with ``TransportClosedError``
        instead of stranding the thread.  Workers that still fail to
        join are reported via ``worker_stuck`` and a log line.
        """
        if self._closed:
            return not any(worker.is_alive() for worker in self._workers)
        self._closed = True
        if self._watchdog is not None:
            # Leave a parting snapshot so a peer's watchdog can still
            # attribute a later hang to this (exited) rank.
            try:
                self._watchdog.publish_state(status="shutdown")
            except Exception:
                logger.exception("failed to publish parting debug state")
            self._watchdog.stop()
        for stream_queue in self._queues:
            stream_queue.put(None)
        deadline = min(grace, self.timeout)
        for worker in self._workers:
            worker.join(timeout=deadline)
        if any(worker.is_alive() for worker in self._workers):
            logger.warning(
                "comm worker(s) of group %s on rank %d did not drain within "
                "%.1fs; closing the transport hub to unblock them",
                self._group_id, self.global_rank, deadline,
            )
            self.hub.close()
            for worker in self._workers:
                worker.join(timeout=deadline)
        stranded = [worker.name for worker in self._workers if worker.is_alive()]
        self.worker_stuck = bool(stranded)
        if self.worker_stuck:
            logger.error(
                "comm worker(s) of group %s on rank %d failed to join even "
                "after the transport hub was closed (thread(s) %s stranded)",
                self._group_id, self.global_rank, ", ".join(stranded),
            )
        else:
            self._cleanup_store_namespace()
        return not self.worker_stuck

    def _cleanup_store_namespace(self) -> None:
        """Drop this group's store keys once every member shut down.

        Collectives leave one signature key per sequence number (plus
        rendezvous counters, watchdog snapshots, barrier and DDP-check
        keys), which would grow the store without bound across long
        elastic runs that create a fresh group per generation.  The last
        member to shut down cleanly deletes the whole namespace — at
        that point no watchdog can still need the parting snapshots.
        Ranks that die without reaching shutdown leave the keys behind
        on purpose: they are the postmortem evidence.
        """
        gid = self._group_id
        try:
            arrivals = self.store.add(f"pgfini/{gid}/arrivals", 1)
            if arrivals < len(self.ranks):
                return
            for prefix in (
                f"pg{gid}/",       # rendezvous counter + per-seq signatures
                f"pgdebug/{gid}/", # watchdog alarms and snapshots
                f"mb/{gid}/",      # monitored_barrier counters
                f"ddpchk/{gid}/",  # DDP construction consistency checks
                f"pgfini/{gid}/",  # this counter itself
            ):
                self.store.delete_prefix(prefix)
        except Exception:
            logger.exception(
                "store cleanup for group %s failed (keys left behind)", gid
            )

    # ------------------------------------------------------------------
    # consistency checking
    # ------------------------------------------------------------------
    def _check_signature(self, seq: int, signature: dict) -> None:
        """Verify all ranks issue the same collective at sequence ``seq``.

        The group leader publishes its fingerprint (op, shape, dtype,
        nbytes, reduce op / src / root); everyone else compares.  Real
        libraries would corrupt data or hang here (paper §3.3); we raise
        a :class:`CollectiveMismatchError` carrying a field-level diff —
        and, under ``REPRO_DEBUG=DETAIL``, every rank's signature so the
        report shows exactly who diverged.
        """
        if not self.check_consistency:
            return
        key = f"pg{self._group_id}/sig/{seq}"
        detail = DEBUG.level >= DETAIL
        if detail:
            self.store.set(f"{key}/rank{self.global_rank}", signature)
        if self.group_rank == 0:
            self.store.set(key, signature)
            return
        leader_sig = self._wait_leader_signature(key, seq)
        if leader_sig != signature:
            peer_sigs = None
            if detail:
                # Best-effort gather: peers publish before comparing, so
                # a short wait usually collects the whole group.
                deadline = time.perf_counter() + min(1.0, self.timeout / 4.0)
                keys = {r: f"{key}/rank{r}" for r in self.ranks}
                while time.perf_counter() < deadline:
                    if all(self.store.try_get(k) is not None for k in keys.values()):
                        break
                    time.sleep(0.01)
                peer_sigs = {
                    r: sig for r, k in keys.items()
                    if (sig := self.store.try_get(k)) is not None
                }
            raise CollectiveMismatchError(
                _desync.render_mismatch(
                    self._group_id, seq, self.global_rank, signature,
                    self.ranks[0], leader_sig, peer_sigs,
                )
            )

    def _wait_leader_signature(self, key: str, seq: int) -> dict:
        """Blocking read of the leader's signature, sliced so a shutdown
        (``self._closed``) wakes the worker instead of stranding it for
        the full group timeout."""
        deadline = time.perf_counter() + self.timeout
        while True:
            remaining = deadline - time.perf_counter()
            try:
                return self.store.get(key, timeout=max(0.0, min(0.25, remaining)))
            except StoreTimeoutError:
                if self._closed or self.hub.closed:
                    raise CollectiveError(
                        f"process group {self._group_id} shut down while "
                        f"waiting for the leader's signature of collective "
                        f"#{seq}"
                    ) from None
                if remaining <= 0:
                    raise CollectiveTimeoutError(
                        f"rank {self.global_rank} timed out after "
                        f"{self.timeout}s waiting for the leader (rank "
                        f"{self.ranks[0]}) to issue collective #{seq} in "
                        f"group {self._group_id} — the leader diverged, "
                        f"hung, or exited"
                    ) from None

    def _next_tag(self, op_name: str) -> tuple:
        seq = self._seq
        self._seq += 1
        return (self._group_id, seq, op_name)

    def _check_device(self, tensor) -> None:
        if not self.supports_cpu_tensors and _device_of(tensor) == "cpu":
            raise CollectiveError(
                f"{type(self).__name__} only supports device tensors "
                f"(got a tensor on 'cpu'); copy to a gpu:* device first"
            )

    def _record_op_metrics(self, op_name: str, nbytes: int) -> None:
        if TRACER.enabled:
            registry = registry_for(self.global_rank)
            registry.counter(f"{op_name}.count").add(1)
            registry.counter(f"{op_name}.bytes").add(nbytes)

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of ranks in this group (the p of the α–β model)."""
        return len(self.ranks)

    def allreduce(self, tensor, op: str = ReduceOp.SUM, async_op: bool = False):
        """Reduce ``tensor`` in place across the group (sum by default)."""
        self._check_device(tensor)
        array = _as_array(tensor)
        tag = self._next_tag("allreduce")
        seq = tag[1]
        signature = _desync.fingerprint("allreduce", array, reduce_op=op)
        algorithm = algorithms.ALLREDUCE_ALGORITHMS[self.algorithm]
        self.bytes_communicated += array.nbytes
        self._record_op_metrics("allreduce", array.nbytes)

        def run() -> None:
            self._check_signature(seq, signature)
            try:
                algorithm(
                    self.hub, self.ranks, self.group_rank, array, op, tag,
                    self.timeout, self.chunk_bytes,
                )
            except TransportTimeoutError as exc:
                raise CollectiveTimeoutError(str(exc)) from exc

        meta = {
            "op": "allreduce",
            "seq": seq,
            "bytes": array.nbytes,
            "algorithm": self.algorithm,
            "reduce_op": op,
            "group": self._group_id,
        }
        return self._submit(
            run, f"allreduce#{seq}", async_op, meta=meta, fingerprint=signature
        )

    def broadcast(self, tensor, src: int = 0, async_op: bool = False):
        """Broadcast from group-rank ``src`` into every rank's tensor."""
        self._check_device(tensor)
        array = _as_array(tensor)
        tag = self._next_tag("broadcast")
        seq = tag[1]
        signature = _desync.fingerprint("broadcast", array, src=src)
        self.bytes_communicated += array.nbytes
        self._record_op_metrics("broadcast", array.nbytes)

        def run() -> None:
            self._check_signature(seq, signature)
            try:
                algorithms.broadcast(
                    self.hub, self.ranks, self.group_rank, array, src, tag,
                    self.timeout, self.chunk_bytes,
                )
            except TransportTimeoutError as exc:
                raise CollectiveTimeoutError(str(exc)) from exc

        meta = {"op": "broadcast", "seq": seq, "bytes": array.nbytes, "src": src,
                "group": self._group_id}
        return self._submit(
            run, f"broadcast#{seq}", async_op, meta=meta, fingerprint=signature
        )

    def allgather(self, tensor, async_op: bool = False):
        """Gather every rank's tensor; sync form returns (world, n) array."""
        self._check_device(tensor)
        array = _as_array(tensor)
        tag = self._next_tag("allgather")
        seq = tag[1]
        signature = _desync.fingerprint("allgather", array)
        self.bytes_communicated += array.nbytes * len(self.ranks)
        self._record_op_metrics("allgather", array.nbytes * len(self.ranks))
        result: list = [None]

        def run() -> None:
            self._check_signature(seq, signature)
            try:
                result[0] = algorithms.allgather(
                    self.hub, self.ranks, self.group_rank, array, tag, self.timeout
                )
            except TransportTimeoutError as exc:
                raise CollectiveTimeoutError(str(exc)) from exc

        meta = {"op": "allgather", "seq": seq,
                "bytes": array.nbytes * len(self.ranks), "group": self._group_id}
        work = self._submit(
            run, f"allgather#{seq}", async_op, meta=meta, fingerprint=signature
        )
        if async_op:
            work.result = result  # type: ignore[attr-defined]
            return work
        return result[0]

    def reduce_scatter(self, tensor, op: str = ReduceOp.SUM):
        """Synchronously reduce-scatter; returns this rank's chunk."""
        self._check_device(tensor)
        array = _as_array(tensor)
        tag = self._next_tag("reduce_scatter")
        seq = tag[1]
        signature = _desync.fingerprint("reduce_scatter", array, reduce_op=op)
        self.bytes_communicated += array.nbytes
        self._record_op_metrics("reduce_scatter", array.nbytes)
        result: list = [None]

        def run() -> None:
            self._check_signature(seq, signature)
            result[0] = algorithms.reduce_scatter(
                self.hub, self.ranks, self.group_rank, array, op, tag, self.timeout
            )

        meta = {"op": "reduce_scatter", "seq": seq, "bytes": array.nbytes,
                "group": self._group_id}
        self._submit(run, f"reduce_scatter#{seq}", async_op=False, meta=meta,
                     fingerprint=signature)
        return result[0]

    def reduce_scatter_flat(self, tensor, op: str = ReduceOp.SUM, async_op: bool = False):
        """Reduce across the group and return this rank's contiguous span.

        The flat tensor is partitioned with
        :func:`~repro.comm.algorithms.partition_spans`; rank ``r`` gets
        back the fully reduced span ``r`` as a new array (the caller's
        tensor is not modified).  This is the gradient-sharding
        primitive of the ZeRO stages (:mod:`repro.sharded`).  With
        ``async_op=True`` returns a :class:`Work` whose ``result[0]``
        holds the span after ``wait()``.
        """
        self._check_device(tensor)
        array = _as_array(tensor)
        tag = self._next_tag("reduce_scatter_flat")
        seq = tag[1]
        signature = _desync.fingerprint("reduce_scatter_flat", array, reduce_op=op)
        self.bytes_communicated += array.nbytes
        self._record_op_metrics("reduce_scatter_flat", array.nbytes)
        result: list = [None]

        def run() -> None:
            self._check_signature(seq, signature)
            try:
                result[0] = algorithms.reduce_scatter_flat(
                    self.hub, self.ranks, self.group_rank, array, op, tag,
                    self.timeout, self.chunk_bytes,
                )
            except TransportTimeoutError as exc:
                raise CollectiveTimeoutError(str(exc)) from exc

        meta = {"op": "reduce_scatter_flat", "seq": seq, "bytes": array.nbytes,
                "reduce_op": op, "group": self._group_id}
        work = self._submit(
            run, f"reduce_scatter_flat#{seq}", async_op, meta=meta,
            fingerprint=signature,
        )
        if async_op:
            work.result = result  # type: ignore[attr-defined]
            return work
        return result[0]

    def all_gather_flat(self, tensor, shard=None, async_op: bool = False):
        """Fill ``tensor`` in place with every rank's contiguous span.

        The inverse of :meth:`reduce_scatter_flat`: the flat tensor is
        partitioned with
        :func:`~repro.comm.algorithms.partition_spans` and after the
        collective every rank holds all spans.  Rank ``r`` contributes
        span ``r`` — from ``shard`` when given (its element count must
        match the span), otherwise from the tensor's own span.  This is
        the parameter-materialization primitive of the ZeRO stages
        (:mod:`repro.sharded`).
        """
        self._check_device(tensor)
        array = _as_array(tensor)
        shard_array = None if shard is None else _as_array(shard)
        tag = self._next_tag("all_gather_flat")
        seq = tag[1]
        signature = _desync.fingerprint("all_gather_flat", array)
        self.bytes_communicated += array.nbytes
        self._record_op_metrics("all_gather_flat", array.nbytes)

        def run() -> None:
            self._check_signature(seq, signature)
            try:
                algorithms.all_gather_into_flat(
                    self.hub, self.ranks, self.group_rank, array, shard_array,
                    tag, self.timeout, self.chunk_bytes,
                )
            except TransportTimeoutError as exc:
                raise CollectiveTimeoutError(str(exc)) from exc

        meta = {"op": "all_gather_flat", "seq": seq, "bytes": array.nbytes,
                "group": self._group_id}
        return self._submit(
            run, f"all_gather_flat#{seq}", async_op, meta=meta,
            fingerprint=signature,
        )

    def reduce(self, tensor, root: int = 0, op: str = ReduceOp.SUM):
        """Reduce into group-rank ``root``'s tensor (synchronous)."""
        self._check_device(tensor)
        array = _as_array(tensor)
        tag = self._next_tag("reduce")
        seq = tag[1]
        signature = _desync.fingerprint("reduce", array, root=root, reduce_op=op)
        self.bytes_communicated += array.nbytes
        self._record_op_metrics("reduce", array.nbytes)

        def run() -> None:
            self._check_signature(seq, signature)
            algorithms.reduce(
                self.hub, self.ranks, self.group_rank, array, root, op, tag, self.timeout
            )

        meta = {"op": "reduce", "seq": seq, "bytes": array.nbytes,
                "group": self._group_id}
        self._submit(run, f"reduce#{seq}", async_op=False, meta=meta,
                     fingerprint=signature)

    def gather(self, tensor, root: int = 0):
        """Gather tensors at ``root``; returns (world, n) there, None elsewhere."""
        self._check_device(tensor)
        array = _as_array(tensor)
        tag = self._next_tag("gather")
        seq = tag[1]
        signature = _desync.fingerprint("gather", array, root=root)
        self.bytes_communicated += array.nbytes
        self._record_op_metrics("gather", array.nbytes)
        result: list = [None]

        def run() -> None:
            self._check_signature(seq, signature)
            result[0] = algorithms.gather(
                self.hub, self.ranks, self.group_rank, array, root, tag, self.timeout
            )

        meta = {"op": "gather", "seq": seq, "bytes": array.nbytes,
                "group": self._group_id}
        self._submit(run, f"gather#{seq}", async_op=False, meta=meta,
                     fingerprint=signature)
        return result[0]

    def scatter(self, chunks=None, root: int = 0):
        """Scatter root's per-rank chunks; returns this rank's chunk."""
        tag = self._next_tag("scatter")
        seq = tag[1]
        signature = _desync.fingerprint("scatter", root=root)
        result: list = [None]

        def run() -> None:
            self._check_signature(seq, signature)
            result[0] = algorithms.scatter(
                self.hub, self.ranks, self.group_rank, chunks, root, tag, self.timeout
            )

        meta = {"op": "scatter", "seq": seq, "group": self._group_id}
        self._submit(run, f"scatter#{seq}", async_op=False, meta=meta,
                     fingerprint=signature)
        return result[0]

    def send(self, tensor, dst: int, tag: object = "p2p") -> None:
        """Point-to-point send to group-rank ``dst`` (paper §2.3 contrasts
        this with collectives; provided for parameter-server-style code)."""
        array = _as_array(tensor)
        self.bytes_communicated += array.nbytes
        self._record_op_metrics("p2p.send", array.nbytes)
        self.hub.send(
            self.ranks[self.group_rank], self.ranks[dst], ("p2p", self._group_id, tag),
            array.copy(),
        )

    def recv(self, tensor, src: int, tag: object = "p2p") -> None:
        """Blocking point-to-point receive from group-rank ``src``."""
        array = _as_array(tensor)
        self._record_op_metrics("p2p.recv", array.nbytes)
        incoming = self.hub.recv(
            self.ranks[self.group_rank], self.ranks[src], ("p2p", self._group_id, tag),
            self.timeout,
        )
        array[...] = incoming.reshape(array.shape)

    def barrier(self) -> None:
        """Block until every member rank reaches this barrier.

        Implemented as a 1-element tree AllReduce: ≈ 2·⌈log₂ p⌉·α.
        Thread-safe like every collective here: issue from the rank's
        own thread; the transfer itself runs on the comm worker.
        """
        tag = self._next_tag("barrier")
        seq = tag[1]
        signature = _desync.fingerprint("barrier")

        def run() -> None:
            self._check_signature(seq, signature)
            algorithms.barrier(self.hub, self.ranks, self.group_rank, tag, self.timeout)

        meta = {"op": "barrier", "seq": seq, "group": self._group_id}
        self._submit(run, f"barrier#{seq}", async_op=False, meta=meta,
                     fingerprint=signature)


class ProcessGroupNccl(ProcessGroup):
    """NCCL personality: ring AllReduce, device tensors only.

    Like ``ProcessGroupNCCL`` in the paper (§4.2), CPU tensors are
    rejected — DDP must stage its unused-parameter bitmap through a
    device-resident copy when running on this backend.
    """

    backend = "nccl"
    default_algorithm = "ring"
    supports_cpu_tensors = False


class ProcessGroupGloo(ProcessGroup):
    """Gloo personality: halving-doubling AllReduce, CPU tensors fine."""

    backend = "gloo"
    default_algorithm = "halving_doubling"
    supports_cpu_tensors = True


class ProcessGroupMpi(ProcessGroup):
    """MPI personality: the paper's third backend option (§3.3).

    Tree-based AllReduce (latency-optimized, as in classic MPI
    implementations); CPU tensors accepted.  The paper does not evaluate
    MPI, so no cost-model personality is calibrated for it.
    """

    backend = "mpi"
    default_algorithm = "tree"
    supports_cpu_tensors = True


BACKENDS = {
    "nccl": ProcessGroupNccl,
    "gloo": ProcessGroupGloo,
    "mpi": ProcessGroupMpi,
}
