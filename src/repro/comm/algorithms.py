"""Collective algorithms implemented over point-to-point transport.

These are the real algorithms communication libraries use (paper §2.3):

* ``allreduce_naive`` — every rank sends its tensor to every peer and
  reduces locally; the strawman the paper mentions, kept as a baseline.
* ``allreduce_ring`` — reduce-scatter + allgather ring (NCCL's default),
  2·(p−1) chunk transfers per rank, bandwidth-optimal.
* ``allreduce_tree`` — binomial-tree reduce to a root followed by a
  binomial-tree broadcast (NCCL 2.4-style latency-optimal variant).
* ``allreduce_halving_doubling`` — recursive vector halving/distance
  doubling (Gloo's default for large tensors).

All functions operate **in place** on a flat numpy array and take the
list of participating global ranks, so sub-groups and round-robin groups
reuse them unchanged.  ``tag`` namespaces concurrent collectives.

Hot-path design (paper Figs. 7/8 cost model):

* **Contiguous segments** — buffers are partitioned with
  :func:`partition_spans` into contiguous ``[lo, hi)`` windows, so every
  send is a single ``memcpy``-like slice copy and every reduction is one
  vectorized numpy ufunc call (``np.add(dst, src, out=dst)``).  No index
  arrays, no fancy-indexing gathers, no Python element loops.
* **Chunked transfers** — segments larger than ``chunk_bytes`` (default
  :data:`DEFAULT_CHUNK_BYTES`, env ``REPRO_CHUNK_BYTES``) are split into
  chunks that are deposited into the transport back-to-back.  Because
  ``TransportHub.send`` never blocks, several chunks are in flight at
  once and a receiver starts reducing chunk 0 while the sender is still
  copying chunk *k* — the chunk-level pipelining of the S-SGD DAG model
  (Shi et al.).  Chunk counts are derived purely from (segment size,
  chunk size), which both endpoints know, so no extra coordination
  messages are needed.

Complexity notes use the paper's α–β model: α is per-message latency,
β is per-byte transfer time, *n* is the buffer's byte size and *p* the
number of participating ranks.

Thread-safety: every function is written to run on one rank's thread
while peer ranks run the same function concurrently; all shared state
lives in the :class:`~repro.comm.transport.TransportHub` mailboxes.
Per-rank buffers are only touched by their own rank.
"""

from __future__ import annotations

import os
import time
from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.comm.transport import TransportHub
from repro.telemetry.health import accounting as _health

ReduceFn = Callable[..., np.ndarray]


def _recv(hub: TransportHub, me: int, src: int, tag: object, timeout: float | None):
    """``hub.recv`` plus per-source stall attribution.

    When the process-group worker has bracketed this collective for
    health accounting (:func:`repro.telemetry.health.accounting.active`),
    the time spent inside ``recv`` is attributed to the sending rank —
    the raw signal behind straggler and slow-link diagnoses.  Outside a
    bracket this is a plain ``hub.recv`` plus one attribute check.
    """
    if not _health.active():
        return hub.recv(me, src, tag, timeout)
    t0 = time.perf_counter()
    payload = hub.recv(me, src, tag, timeout)
    _health.note_recv_stall(src, time.perf_counter() - t0)
    return payload

#: Elementwise reduction operators.  All values are numpy ufuncs so the
#: hot path can reduce **in place** (``fn(dst, src, out=dst)``) without
#: allocating temporaries; called with two arguments they still return a
#: new array, preserving the seed API.
REDUCE_FUNCTIONS: dict[str, ReduceFn] = {
    "sum": np.add,
    "prod": np.multiply,
    "min": np.minimum,
    "max": np.maximum,
    "bor": np.bitwise_or,
    "band": np.bitwise_and,
}


def _default_chunk_bytes() -> int:
    try:
        return max(1, int(os.environ.get("REPRO_CHUNK_BYTES", 1 << 20)))
    except ValueError:
        return 1 << 20


#: Default transfer-chunk size in bytes (1 MiB).  Tunable per call via
#: ``chunk_bytes=`` or globally via :func:`set_chunk_bytes` / the
#: ``REPRO_CHUNK_BYTES`` environment variable (read at import).
DEFAULT_CHUNK_BYTES: int = _default_chunk_bytes()


def set_chunk_bytes(nbytes: int) -> None:
    """Set the global default transfer-chunk size (bytes, ≥1).

    Thread-safety: a plain module-global write; call it from the main
    thread before launching rank threads (the benchmarks' usage), not
    concurrently with running collectives.
    """
    global DEFAULT_CHUNK_BYTES
    if nbytes < 1:
        raise ValueError("chunk_bytes must be >= 1")
    DEFAULT_CHUNK_BYTES = int(nbytes)


def get_chunk_bytes() -> int:
    """Current global default transfer-chunk size in bytes."""
    return DEFAULT_CHUNK_BYTES


def partition_spans(total: int, parts: int) -> List[Tuple[int, int]]:
    """Split ``range(total)`` into ``parts`` contiguous ``(lo, hi)`` spans.

    Sizing matches ``np.array_split``: the first ``total % parts`` spans
    get one extra element, so layouts agree with code (and tests) that
    used index-array splitting.  Empty spans are legal — they keep the
    message protocol aligned when ``total < parts``.
    """
    base, extra = divmod(total, parts)
    spans: List[Tuple[int, int]] = []
    lo = 0
    for i in range(parts):
        hi = lo + base + (1 if i < extra else 0)
        spans.append((lo, hi))
        lo = hi
    return spans


def _chunk_elems(chunk_bytes: int | None, dtype: np.dtype) -> int:
    nbytes = DEFAULT_CHUNK_BYTES if chunk_bytes is None else int(chunk_bytes)
    return max(1, nbytes // max(1, dtype.itemsize))


def _chunk_spans(lo: int, hi: int, chunk_elems: int) -> List[Tuple[int, int]]:
    """Split window ``[lo, hi)`` into chunks of at most ``chunk_elems``.

    An empty window still yields exactly one (empty) chunk so sender and
    receiver always exchange the same number of messages per window.
    """
    if hi <= lo:
        return [(lo, lo)]
    spans = []
    while lo < hi:
        mid = min(lo + chunk_elems, hi)
        spans.append((lo, mid))
        lo = mid
    return spans


def _reduce_fn(op: str) -> ReduceFn:
    """Resolve a reduce-op name to its ufunc; raises on unknown names."""
    try:
        return REDUCE_FUNCTIONS[op]
    except KeyError:
        raise ValueError(f"unknown reduce op {op!r}; options: {sorted(REDUCE_FUNCTIONS)}")


def allreduce_naive(
    hub: TransportHub,
    ranks: Sequence[int],
    me: int,
    buffer: np.ndarray,
    op: str = "sum",
    tag: object = "naive",
    timeout: float | None = None,
    chunk_bytes: int | None = None,
) -> None:
    """Every rank broadcasts its input to all peers; reduce locally.

    Cost per rank: (p−1)α + (p−1)·n·β — each rank moves the *entire*
    buffer p−1 times, the O(p·n) strawman the paper contrasts with ring
    AllReduce.  Kept unchunked on purpose: it is the seed-fidelity
    baseline the benchmarks compare against.

    Thread-safety: safe to run concurrently on every rank thread of the
    group; the local buffer is only written by its own rank.
    """
    fn = _reduce_fn(op)
    world = len(ranks)
    if world == 1:
        return
    mine = buffer.copy()
    for offset, peer in enumerate(ranks):
        if offset != me:
            hub.send(ranks[me], peer, (tag, "naive", me), mine)
    acc = mine.copy()
    for offset, peer in enumerate(ranks):
        if offset == me:
            continue
        incoming = _recv(hub, ranks[me], peer, (tag, "naive", offset), timeout)
        fn(acc, incoming, out=acc)
    buffer[...] = acc


def allreduce_ring(
    hub: TransportHub,
    ranks: Sequence[int],
    me: int,
    buffer: np.ndarray,
    op: str = "sum",
    tag: object = "ring",
    timeout: float | None = None,
    chunk_bytes: int | None = None,
) -> None:
    """Reduce-scatter + allgather ring (NCCL's default algorithm).

    Cost per rank: 2(p−1)α + 2·((p−1)/p)·n·β — bandwidth-optimal: each
    byte crosses each link roughly twice regardless of p.  The buffer is
    partitioned into p contiguous segments; every step each rank sends
    one segment right and reduces the incoming segment from the left
    with one vectorized ufunc call.  Segments larger than ``chunk_bytes``
    are pipelined as several in-flight chunks (the reducing side starts
    on chunk 0 while later chunks are still being deposited).

    Thread-safety: safe to run concurrently on every rank thread of the
    group (one call per rank per ``tag``).
    """
    fn = _reduce_fn(op)
    world = len(ranks)
    if world == 1:
        return
    flat = buffer.reshape(-1)
    segments = partition_spans(flat.size, world)
    celems = _chunk_elems(chunk_bytes, flat.dtype)
    right = ranks[(me + 1) % world]
    left = ranks[(me - 1) % world]

    # Phase 1: reduce-scatter. After world-1 steps, rank r owns the fully
    # reduced segment (r+1) % world.
    for step in range(world - 1):
        send_lo, send_hi = segments[(me - step) % world]
        recv_lo, recv_hi = segments[(me - step - 1) % world]
        for c, (lo, hi) in enumerate(_chunk_spans(send_lo, send_hi, celems)):
            hub.send(ranks[me], right, (tag, "rs", step, c), flat[lo:hi].copy())
        for c, (lo, hi) in enumerate(_chunk_spans(recv_lo, recv_hi, celems)):
            incoming = _recv(hub, ranks[me], left, (tag, "rs", step, c), timeout)
            fn(flat[lo:hi], incoming, out=flat[lo:hi])

    # Phase 2: allgather. Circulate the reduced segments.
    for step in range(world - 1):
        send_lo, send_hi = segments[(me - step + 1) % world]
        recv_lo, recv_hi = segments[(me - step) % world]
        for c, (lo, hi) in enumerate(_chunk_spans(send_lo, send_hi, celems)):
            hub.send(ranks[me], right, (tag, "ag", step, c), flat[lo:hi].copy())
        for c, (lo, hi) in enumerate(_chunk_spans(recv_lo, recv_hi, celems)):
            incoming = _recv(hub, ranks[me], left, (tag, "ag", step, c), timeout)
            flat[lo:hi] = incoming
    buffer.reshape(-1)[...] = flat


def allreduce_tree(
    hub: TransportHub,
    ranks: Sequence[int],
    me: int,
    buffer: np.ndarray,
    op: str = "tree",
    tag: object = "tree",
    timeout: float | None = None,
    chunk_bytes: int | None = None,
) -> None:
    """Binomial-tree reduce to rank 0 then binomial-tree broadcast.

    Cost per rank: ≈ 2·⌈log₂ p⌉·(α + n·β) — latency-optimal in message
    rounds (the NCCL 2.4-style tree variant) but each round moves the
    full buffer, so it loses to the ring on large n.  Whole-buffer
    transfers are chunked so partners overlap reduction with transfer.

    Thread-safety: safe to run concurrently on every rank thread of the
    group (one call per rank per ``tag``).
    """
    fn = _reduce_fn(op)
    world = len(ranks)
    if world == 1:
        return
    flat = buffer.reshape(-1)
    celems = _chunk_elems(chunk_bytes, flat.dtype)
    whole = _chunk_spans(0, flat.size, celems)

    # Reduce phase: at round k, ranks with the k-th bit set send to the
    # partner with that bit cleared, then drop out.
    mask = 1
    while mask < world:
        if me & mask:
            partner = me - mask
            for c, (lo, hi) in enumerate(whole):
                hub.send(ranks[me], ranks[partner], (tag, "red", mask, c), flat[lo:hi].copy())
            break
        partner = me + mask
        if partner < world:
            for c, (lo, hi) in enumerate(whole):
                incoming = _recv(hub, ranks[me], ranks[partner], (tag, "red", mask, c), timeout)
                fn(flat[lo:hi], incoming, out=flat[lo:hi])
        mask <<= 1

    # Broadcast phase: mirror image, highest mask first.
    top = 1
    while top < world:
        top <<= 1
    mask = top >> 1
    while mask >= 1:
        if me & (mask - 1) == 0:  # still active at this round
            if me & mask:
                for c, (lo, hi) in enumerate(whole):
                    incoming = _recv(hub, ranks[me], ranks[me - mask], (tag, "bc", mask, c), timeout)
                    flat[lo:hi] = incoming
            else:
                partner = me + mask
                if partner < world:
                    for c, (lo, hi) in enumerate(whole):
                        hub.send(ranks[me], ranks[partner], (tag, "bc", mask, c), flat[lo:hi].copy())
        mask >>= 1
    buffer.reshape(-1)[...] = flat


def allreduce_halving_doubling(
    hub: TransportHub,
    ranks: Sequence[int],
    me: int,
    buffer: np.ndarray,
    op: str = "sum",
    tag: object = "hd",
    timeout: float | None = None,
    chunk_bytes: int | None = None,
) -> None:
    """Recursive vector-halving distance-doubling (Gloo's large-tensor path).

    Cost per rank: 2·log₂ p·α + 2·((p−1)/p)·n·β — the ring's bandwidth
    optimality at tree-like log₂ p latency.  Each round exchanges a
    contiguous half-window with the partner at distance 2ᵏ; windows are
    chunked for in-flight pipelining.  Requires a power-of-two
    participant count; other sizes delegate to the ring, which is what
    Gloo's bcube fallback effectively does.

    Thread-safety: safe to run concurrently on every rank thread of the
    group (one call per rank per ``tag``).
    """
    world = len(ranks)
    if world & (world - 1):
        allreduce_ring(hub, ranks, me, buffer, op, (tag, "ringfb"), timeout, chunk_bytes)
        return
    fn = _reduce_fn(op)
    if world == 1:
        return
    flat = buffer.reshape(-1)
    celems = _chunk_elems(chunk_bytes, flat.dtype)
    # Track the index window this rank is responsible for.
    lo, hi = 0, flat.size
    distance = 1
    spans = []
    # Reduce-scatter with halving vectors.
    while distance < world:
        partner = me ^ distance
        mid = lo + (hi - lo) // 2
        if me < partner:
            send_lo, send_hi, keep_lo, keep_hi = mid, hi, lo, mid
        else:
            send_lo, send_hi, keep_lo, keep_hi = lo, mid, mid, hi
        for c, (clo, chi) in enumerate(_chunk_spans(send_lo, send_hi, celems)):
            hub.send(ranks[me], ranks[partner], (tag, "rs", distance, c), flat[clo:chi].copy())
        for c, (clo, chi) in enumerate(_chunk_spans(keep_lo, keep_hi, celems)):
            incoming = _recv(hub, ranks[me], ranks[partner], (tag, "rs", distance, c), timeout)
            fn(flat[clo:chi], incoming, out=flat[clo:chi])
        spans.append((lo, hi))
        lo, hi = keep_lo, keep_hi
        distance <<= 1
    # Allgather with doubling vectors (reverse the halving).
    distance >>= 1
    while distance >= 1:
        partner = me ^ distance
        prev_lo, prev_hi = spans.pop()
        for c, (clo, chi) in enumerate(_chunk_spans(lo, hi, celems)):
            hub.send(ranks[me], ranks[partner], (tag, "ag", distance, c), flat[clo:chi].copy())
        # Partners shared the same parent window [prev_lo, prev_hi); the
        # lower rank kept the lower half, so each fills in the other half.
        fill_lo, fill_hi = (hi, prev_hi) if me < partner else (prev_lo, lo)
        for c, (clo, chi) in enumerate(_chunk_spans(fill_lo, fill_hi, celems)):
            incoming = _recv(hub, ranks[me], ranks[partner], (tag, "ag", distance, c), timeout)
            flat[clo:chi] = incoming
        lo, hi = prev_lo, prev_hi
        distance >>= 1
    buffer.reshape(-1)[...] = flat


def broadcast(
    hub: TransportHub,
    ranks: Sequence[int],
    me: int,
    buffer: np.ndarray,
    root: int = 0,
    tag: object = "bcast",
    timeout: float | None = None,
    chunk_bytes: int | None = None,
) -> None:
    """Binomial-tree broadcast from group-rank ``root`` (in place).

    Cost per rank: ≤ ⌈log₂ p⌉·(α + n·β); the root sends ⌈log₂ p⌉ copies,
    interior ranks forward once per subtree.  Transfers are chunked so
    a forwarding rank relays chunk 0 before chunk *k* arrives.

    Thread-safety: safe to run concurrently on every rank thread of the
    group (one call per rank per ``tag``).
    """
    world = len(ranks)
    if world == 1:
        return
    flat = buffer.reshape(-1)
    celems = _chunk_elems(chunk_bytes, flat.dtype)
    whole = _chunk_spans(0, flat.size, celems)
    # Re-index so the root is virtual rank 0.
    vrank = (me - root) % world
    top = 1
    while top < world:
        top <<= 1
    mask = top >> 1
    while mask >= 1:
        if vrank & (mask - 1) == 0:
            if vrank & mask:
                src = ranks[(vrank - mask + root) % world]
                for c, (lo, hi) in enumerate(whole):
                    incoming = _recv(hub, ranks[me], src, (tag, "bc", mask, c), timeout)
                    flat[lo:hi] = incoming
            else:
                vpartner = vrank + mask
                if vpartner < world:
                    dst = ranks[(vpartner + root) % world]
                    for c, (lo, hi) in enumerate(whole):
                        hub.send(ranks[me], dst, (tag, "bc", mask, c), flat[lo:hi].copy())
        mask >>= 1
    buffer.reshape(-1)[...] = flat


def allgather(
    hub: TransportHub,
    ranks: Sequence[int],
    me: int,
    buffer: np.ndarray,
    tag: object = "allgather",
    timeout: float | None = None,
) -> np.ndarray:
    """Ring allgather; returns an array of shape (world, buffer.size).

    Cost per rank: (p−1)α + (p−1)·n·β — every rank's full buffer visits
    every other rank once around the ring.  Rows are contiguous, so each
    step is one slice copy.

    Thread-safety: safe to run concurrently on every rank thread of the
    group (one call per rank per ``tag``).
    """
    world = len(ranks)
    flat = buffer.reshape(-1)
    out = np.empty((world, flat.size), dtype=flat.dtype)
    out[me] = flat
    if world == 1:
        return out
    right = ranks[(me + 1) % world]
    left = ranks[(me - 1) % world]
    for step in range(world - 1):
        send_idx = (me - step) % world
        recv_idx = (me - step - 1) % world
        hub.send(ranks[me], right, (tag, "ag", step), out[send_idx].copy())
        out[recv_idx] = _recv(hub, ranks[me], left, (tag, "ag", step), timeout)
    return out


def reduce_scatter(
    hub: TransportHub,
    ranks: Sequence[int],
    me: int,
    buffer: np.ndarray,
    op: str = "sum",
    tag: object = "rscatter",
    timeout: float | None = None,
) -> np.ndarray:
    """Ring reduce-scatter; returns this rank's fully reduced chunk.

    Cost per rank: (p−1)α + ((p−1)/p)·n·β — phase 1 of the ring
    AllReduce.  Segments are contiguous spans reduced with in-place
    ufunc calls.

    Thread-safety: safe to run concurrently on every rank thread of the
    group (one call per rank per ``tag``).
    """
    fn = _reduce_fn(op)
    world = len(ranks)
    flat = buffer.reshape(-1).copy()
    segments = partition_spans(flat.size, world)
    if world == 1:
        return flat
    right = ranks[(me + 1) % world]
    left = ranks[(me - 1) % world]
    for step in range(world - 1):
        send_lo, send_hi = segments[(me - step) % world]
        recv_lo, recv_hi = segments[(me - step - 1) % world]
        hub.send(ranks[me], right, (tag, "rs", step), flat[send_lo:send_hi].copy())
        incoming = _recv(hub, ranks[me], left, (tag, "rs", step), timeout)
        fn(flat[recv_lo:recv_hi], incoming, out=flat[recv_lo:recv_hi])
    owned_lo, owned_hi = segments[(me + 1) % world]
    return flat[owned_lo:owned_hi]


def reduce_scatter_flat(
    hub: TransportHub,
    ranks: Sequence[int],
    me: int,
    buffer: np.ndarray,
    op: str = "sum",
    tag: object = "rsflat",
    timeout: float | None = None,
    chunk_bytes: int | None = None,
) -> np.ndarray:
    """Chunked ring reduce-scatter over contiguous spans; returns rank
    ``me``'s fully reduced span.

    The buffer is partitioned with :func:`partition_spans` into ``p``
    contiguous spans and rank ``r`` receives the reduction of span ``r``
    — the ownership convention the sharded (ZeRO) stack builds on: the
    span a rank reduces here is exactly the span it owns in
    ``all_gather_into_flat`` and in the sharded optimizer's state
    partition.  The caller's buffer is left untouched (reductions run on
    a private copy), so gradients can be reused after the collective.

    Cost per rank: (p−1)α + ((p−1)/p)·n·β — phase 1 of the ring
    AllReduce.  Spans larger than ``chunk_bytes`` are pipelined as
    several in-flight chunks; empty spans (``n < p``) still exchange one
    empty chunk per step so the message protocol stays aligned.

    Thread-safety: safe to run concurrently on every rank thread of the
    group (one call per rank per ``tag``).
    """
    fn = _reduce_fn(op)
    world = len(ranks)
    flat = buffer.reshape(-1)
    segments = partition_spans(flat.size, world)
    if world == 1:
        return flat.copy()
    work = flat.copy()
    celems = _chunk_elems(chunk_bytes, flat.dtype)
    right = ranks[(me + 1) % world]
    left = ranks[(me - 1) % world]
    # The allreduce_ring schedule shifted by one slot, so after world-1
    # steps rank r holds the fully reduced segment r (not (r+1) % p).
    for step in range(world - 1):
        send_lo, send_hi = segments[(me - step - 1) % world]
        recv_lo, recv_hi = segments[(me - step - 2) % world]
        for c, (lo, hi) in enumerate(_chunk_spans(send_lo, send_hi, celems)):
            hub.send(ranks[me], right, (tag, "rs", step, c), work[lo:hi].copy())
        for c, (lo, hi) in enumerate(_chunk_spans(recv_lo, recv_hi, celems)):
            incoming = _recv(hub, ranks[me], left, (tag, "rs", step, c), timeout)
            fn(work[lo:hi], incoming, out=work[lo:hi])
    owned_lo, owned_hi = segments[me]
    # Copy the owned span out so the world-sized scratch is collectable.
    return work[owned_lo:owned_hi].copy()


def all_gather_into_flat(
    hub: TransportHub,
    ranks: Sequence[int],
    me: int,
    buffer: np.ndarray,
    shard: np.ndarray | None = None,
    tag: object = "agflat",
    timeout: float | None = None,
    chunk_bytes: int | None = None,
) -> None:
    """Chunked ring allgather of per-rank spans into one flat buffer.

    The inverse of :func:`reduce_scatter_flat`: ``buffer`` (in place) is
    partitioned with :func:`partition_spans` and, after the call, every
    rank holds all ``p`` spans.  Rank ``r`` contributes span ``r`` —
    taken from ``shard`` when given (it must match the span's element
    count), otherwise from the buffer's own span, so callers that keep
    only their shard materialize the full tensor without staging it
    first.

    Cost per rank: (p−1)α + ((p−1)/p)·n·β — phase 2 of the ring
    AllReduce.  Spans larger than ``chunk_bytes`` are pipelined as
    several in-flight chunks; empty spans still exchange one empty chunk
    per step so the message protocol stays aligned.

    Thread-safety: safe to run concurrently on every rank thread of the
    group (one call per rank per ``tag``).
    """
    world = len(ranks)
    flat = buffer.reshape(-1)
    segments = partition_spans(flat.size, world)
    my_lo, my_hi = segments[me]
    if shard is not None:
        contribution = np.asarray(shard).reshape(-1)
        if contribution.size != my_hi - my_lo:
            raise ValueError(
                f"shard has {contribution.size} elements but rank {me}'s "
                f"span of a {flat.size}-element buffer over {world} ranks "
                f"holds {my_hi - my_lo}"
            )
        flat[my_lo:my_hi] = contribution
    if world == 1:
        buffer.reshape(-1)[...] = flat
        return
    celems = _chunk_elems(chunk_bytes, flat.dtype)
    right = ranks[(me + 1) % world]
    left = ranks[(me - 1) % world]
    for step in range(world - 1):
        send_lo, send_hi = segments[(me - step) % world]
        recv_lo, recv_hi = segments[(me - step - 1) % world]
        for c, (lo, hi) in enumerate(_chunk_spans(send_lo, send_hi, celems)):
            hub.send(ranks[me], right, (tag, "ag", step, c), flat[lo:hi].copy())
        for c, (lo, hi) in enumerate(_chunk_spans(recv_lo, recv_hi, celems)):
            incoming = _recv(hub, ranks[me], left, (tag, "ag", step, c), timeout)
            flat[lo:hi] = incoming
    buffer.reshape(-1)[...] = flat


def reduce(
    hub: TransportHub,
    ranks: Sequence[int],
    me: int,
    buffer: np.ndarray,
    root: int = 0,
    op: str = "sum",
    tag: object = "reduce",
    timeout: float | None = None,
) -> None:
    """Binomial-tree reduce to group-rank ``root`` (in place at root;
    other ranks' buffers are left with partial sums, as in MPI).

    Cost per rank: ≤ ⌈log₂ p⌉·(α + n·β); each rank sends its running
    partial sum exactly once, reductions are in-place ufunc calls.

    Thread-safety: safe to run concurrently on every rank thread of the
    group (one call per rank per ``tag``).
    """
    fn = _reduce_fn(op)
    world = len(ranks)
    if world == 1:
        return
    flat = buffer.reshape(-1)
    vrank = (me - root) % world
    mask = 1
    while mask < world:
        if vrank & mask:
            dst = ranks[(vrank - mask + root) % world]
            hub.send(ranks[me], dst, (tag, "red", mask), flat.copy())
            return
        vpartner = vrank + mask
        if vpartner < world:
            src = ranks[(vpartner + root) % world]
            incoming = _recv(hub, ranks[me], src, (tag, "red", mask), timeout)
            fn(flat, incoming, out=flat)
        mask <<= 1


def gather(
    hub: TransportHub,
    ranks: Sequence[int],
    me: int,
    buffer: np.ndarray,
    root: int = 0,
    tag: object = "gather",
    timeout: float | None = None,
):
    """Gather every rank's buffer at ``root``; returns (world, n) array
    at the root and ``None`` elsewhere.

    Cost: non-roots pay α + n·β once; the root receives p−1 buffers
    ((p−1)α + (p−1)·n·β), the incast hot spot of the parameter-server
    pattern (§2.3).

    Thread-safety: safe to run concurrently on every rank thread of the
    group (one call per rank per ``tag``).
    """
    world = len(ranks)
    flat = buffer.reshape(-1)
    if me != root:
        hub.send(ranks[me], ranks[root], (tag, "g", me), flat.copy())
        return None
    out = np.empty((world, flat.size), dtype=flat.dtype)
    out[root] = flat
    for peer in range(world):
        if peer != root:
            out[peer] = _recv(hub, ranks[me], ranks[peer], (tag, "g", peer), timeout)
    return out


def scatter(
    hub: TransportHub,
    ranks: Sequence[int],
    me: int,
    chunks,
    root: int = 0,
    tag: object = "scatter",
    timeout: float | None = None,
) -> np.ndarray:
    """Scatter ``chunks`` (root's list of per-rank arrays) to the group;
    returns this rank's chunk.

    Cost: the root sends p−1 messages ((p−1)·(α + (n/p)·β)); every other
    rank pays one receive.

    Thread-safety: safe to run concurrently on every rank thread of the
    group (one call per rank per ``tag``).
    """
    world = len(ranks)
    if me == root:
        if chunks is None or len(chunks) != world:
            raise ValueError("root must provide one chunk per rank")
        for peer in range(world):
            if peer != root:
                hub.send(ranks[me], ranks[peer], (tag, "s", peer), np.asarray(chunks[peer]).copy())
        return np.asarray(chunks[root])
    return _recv(hub, ranks[me], ranks[root], (tag, "s", me), timeout)


def barrier(
    hub: TransportHub,
    ranks: Sequence[int],
    me: int,
    tag: object = "barrier",
    timeout: float | None = None,
) -> None:
    """Synchronize all ranks (a 1-element tree allreduce).

    Cost per rank: ≈ 2·⌈log₂ p⌉·α (the payload is 8 bytes).

    Thread-safety: safe to run concurrently on every rank thread of the
    group (one call per rank per ``tag``).
    """
    token = np.zeros(1, dtype=np.int64)
    allreduce_tree(hub, ranks, me, token, "sum", (tag, "tok"), timeout)


def allreduce_hierarchical(
    hub: TransportHub,
    ranks: Sequence[int],
    me: int,
    buffer: np.ndarray,
    op: str = "sum",
    tag: object = "hier",
    timeout: float | None = None,
    chunk_bytes: int | None = None,
    group_size: int = 8,
) -> None:
    """Two-level AllReduce: intra-group reduce → leader ring → broadcast.

    This is how multi-node NCCL behaves in practice: fast intra-server
    links absorb most of the volume, and only one stream per server
    crosses the slow inter-server network.  Groups are consecutive runs
    of ``group_size`` ranks (matching ``ClusterSpec.placement``); a
    trailing smaller group is fine.

    Cost per rank: ≈ ⌈log₂ g⌉·(α + n·β) intra-group + (for leaders)
    2(ℓ−1)α + 2((ℓ−1)/ℓ)·n·β on the leader ring of ℓ = ⌈p/g⌉ members.

    Thread-safety: safe to run concurrently on every rank thread of the
    group (one call per rank per ``tag``).
    """
    world = len(ranks)
    if world == 1:
        return
    if world <= group_size:
        allreduce_ring(hub, ranks, me, buffer, op, (tag, "flat"), timeout, chunk_bytes)
        return

    group_index = me // group_size
    group_lo = group_index * group_size
    group_members = ranks[group_lo : group_lo + group_size]
    local_me = me - group_lo
    leader_locals = list(range(0, world, group_size))
    leaders = [ranks[i] for i in leader_locals]

    # Phase 1: reduce within the group to its leader (local rank 0).
    reduce(hub, group_members, local_me, buffer, 0, op, (tag, "intra", group_index), timeout)
    # Phase 2: ring AllReduce among the leaders.
    if local_me == 0:
        leader_me = leader_locals.index(group_lo)
        allreduce_ring(hub, leaders, leader_me, buffer, op, (tag, "inter"), timeout, chunk_bytes)
    # Phase 3: broadcast the result within the group.
    broadcast(hub, group_members, local_me, buffer, 0, (tag, "bcast", group_index), timeout, chunk_bytes)


#: Registry the :class:`~repro.comm.process_group.ProcessGroup` backends
#: resolve their default AllReduce algorithm from.
ALLREDUCE_ALGORITHMS = {
    "naive": allreduce_naive,
    "ring": allreduce_ring,
    "tree": allreduce_tree,
    "halving_doubling": allreduce_halving_doubling,
    "hierarchical": allreduce_hierarchical,
}
