"""Collective algorithms implemented over point-to-point transport.

These are the real algorithms communication libraries use (paper §2.3):

* ``allreduce_naive`` — every rank sends its tensor to every peer and
  reduces locally; the strawman the paper mentions, kept as a baseline.
* ``allreduce_ring`` — reduce-scatter + allgather ring (NCCL's default),
  2·(p−1) chunk transfers per rank, bandwidth-optimal.
* ``allreduce_tree`` — binomial-tree reduce to a root followed by a
  binomial-tree broadcast (NCCL 2.4-style latency-optimal variant).
* ``allreduce_halving_doubling`` — recursive vector halving/distance
  doubling (Gloo's default for large tensors).

All functions operate **in place** on a flat numpy array and take the
list of participating global ranks, so sub-groups and round-robin groups
reuse them unchanged.  ``tag`` namespaces concurrent collectives.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

import numpy as np

from repro.comm.transport import TransportHub

ReduceFn = Callable[[np.ndarray, np.ndarray], np.ndarray]

REDUCE_FUNCTIONS: dict[str, ReduceFn] = {
    "sum": lambda a, b: a + b,
    "prod": lambda a, b: a * b,
    "min": np.minimum,
    "max": np.maximum,
    "bor": lambda a, b: a | b,
    "band": lambda a, b: a & b,
}


def _reduce_fn(op: str) -> ReduceFn:
    try:
        return REDUCE_FUNCTIONS[op]
    except KeyError:
        raise ValueError(f"unknown reduce op {op!r}; options: {sorted(REDUCE_FUNCTIONS)}")


def allreduce_naive(
    hub: TransportHub,
    ranks: Sequence[int],
    me: int,
    buffer: np.ndarray,
    op: str = "sum",
    tag: object = "naive",
    timeout: float | None = None,
) -> None:
    """Every rank broadcasts its input to all peers; O(p) bandwidth."""
    fn = _reduce_fn(op)
    world = len(ranks)
    if world == 1:
        return
    mine = buffer.copy()
    for offset, peer in enumerate(ranks):
        if offset != me:
            hub.send(ranks[me], peer, (tag, "naive", me), mine)
    acc = mine
    for offset, peer in enumerate(ranks):
        if offset == me:
            continue
        incoming = hub.recv(ranks[me], peer, (tag, "naive", offset), timeout)
        acc = fn(acc, incoming)
    buffer[...] = acc


def allreduce_ring(
    hub: TransportHub,
    ranks: Sequence[int],
    me: int,
    buffer: np.ndarray,
    op: str = "sum",
    tag: object = "ring",
    timeout: float | None = None,
) -> None:
    """Reduce-scatter + allgather ring; each rank sends 2(p−1) chunks."""
    fn = _reduce_fn(op)
    world = len(ranks)
    if world == 1:
        return
    flat = buffer.reshape(-1)
    chunks = np.array_split(np.arange(flat.size), world)
    right = ranks[(me + 1) % world]
    left = ranks[(me - 1) % world]

    # Phase 1: reduce-scatter. After world-1 steps, rank r owns the fully
    # reduced chunk (r+1) % world.
    for step in range(world - 1):
        send_idx = (me - step) % world
        recv_idx = (me - step - 1) % world
        hub.send(ranks[me], right, (tag, "rs", step), flat[chunks[send_idx]].copy())
        incoming = hub.recv(ranks[me], left, (tag, "rs", step), timeout)
        flat[chunks[recv_idx]] = fn(flat[chunks[recv_idx]], incoming)

    # Phase 2: allgather. Circulate the reduced chunks.
    for step in range(world - 1):
        send_idx = (me - step + 1) % world
        recv_idx = (me - step) % world
        hub.send(ranks[me], right, (tag, "ag", step), flat[chunks[send_idx]].copy())
        incoming = hub.recv(ranks[me], left, (tag, "ag", step), timeout)
        flat[chunks[recv_idx]] = incoming
    buffer.reshape(-1)[...] = flat


def allreduce_tree(
    hub: TransportHub,
    ranks: Sequence[int],
    me: int,
    buffer: np.ndarray,
    op: str = "sum",
    tag: object = "tree",
    timeout: float | None = None,
) -> None:
    """Binomial-tree reduce to rank 0 then binomial-tree broadcast."""
    fn = _reduce_fn(op)
    world = len(ranks)
    if world == 1:
        return
    flat = buffer.reshape(-1)

    # Reduce phase: at round k, ranks with the k-th bit set send to the
    # partner with that bit cleared, then drop out.
    mask = 1
    while mask < world:
        if me & mask:
            partner = me - mask
            hub.send(ranks[me], ranks[partner], (tag, "red", mask), flat.copy())
            break
        partner = me + mask
        if partner < world:
            incoming = hub.recv(ranks[me], ranks[partner], (tag, "red", mask), timeout)
            flat[...] = fn(flat, incoming)
        mask <<= 1

    # Broadcast phase: mirror image, highest mask first.
    top = 1
    while top < world:
        top <<= 1
    mask = top >> 1
    while mask >= 1:
        if me & (mask - 1) == 0:  # still active at this round
            if me & mask:
                incoming = hub.recv(ranks[me], ranks[me - mask], (tag, "bc", mask), timeout)
                flat[...] = incoming
            else:
                partner = me + mask
                if partner < world:
                    hub.send(ranks[me], ranks[partner], (tag, "bc", mask), flat.copy())
        mask >>= 1
    buffer.reshape(-1)[...] = flat


def allreduce_halving_doubling(
    hub: TransportHub,
    ranks: Sequence[int],
    me: int,
    buffer: np.ndarray,
    op: str = "sum",
    tag: object = "hd",
    timeout: float | None = None,
) -> None:
    """Recursive vector-halving distance-doubling (Gloo's large-tensor path).

    Requires a power-of-two participant count; other sizes delegate to the
    ring, which is what Gloo's bcube fallback effectively does.
    """
    world = len(ranks)
    if world & (world - 1):
        allreduce_ring(hub, ranks, me, buffer, op, (tag, "ringfb"), timeout)
        return
    fn = _reduce_fn(op)
    if world == 1:
        return
    flat = buffer.reshape(-1)
    # Track the index window this rank is responsible for.
    lo, hi = 0, flat.size
    distance = 1
    spans = []
    # Reduce-scatter with halving vectors.
    while distance < world:
        partner = me ^ distance
        mid = lo + (hi - lo) // 2
        if me < partner:
            send_lo, send_hi, keep_lo, keep_hi = mid, hi, lo, mid
        else:
            send_lo, send_hi, keep_lo, keep_hi = lo, mid, mid, hi
        hub.send(ranks[me], ranks[partner], (tag, "rs", distance), flat[send_lo:send_hi].copy())
        incoming = hub.recv(ranks[me], ranks[partner], (tag, "rs", distance), timeout)
        flat[keep_lo:keep_hi] = fn(flat[keep_lo:keep_hi], incoming)
        spans.append((lo, hi))
        lo, hi = keep_lo, keep_hi
        distance <<= 1
    # Allgather with doubling vectors (reverse the halving).
    distance >>= 1
    while distance >= 1:
        partner = me ^ distance
        prev_lo, prev_hi = spans.pop()
        hub.send(ranks[me], ranks[partner], (tag, "ag", distance), flat[lo:hi].copy())
        incoming = hub.recv(ranks[me], ranks[partner], (tag, "ag", distance), timeout)
        # Partners shared the same parent window [prev_lo, prev_hi); the
        # lower rank kept the lower half, so each fills in the other half.
        if me < partner:
            flat[hi:prev_hi] = incoming
        else:
            flat[prev_lo:lo] = incoming
        lo, hi = prev_lo, prev_hi
        distance >>= 1
    buffer.reshape(-1)[...] = flat


def broadcast(
    hub: TransportHub,
    ranks: Sequence[int],
    me: int,
    buffer: np.ndarray,
    root: int = 0,
    tag: object = "bcast",
    timeout: float | None = None,
) -> None:
    """Binomial-tree broadcast from group-rank ``root`` (in place)."""
    world = len(ranks)
    if world == 1:
        return
    flat = buffer.reshape(-1)
    # Re-index so the root is virtual rank 0.
    vrank = (me - root) % world
    top = 1
    while top < world:
        top <<= 1
    mask = top >> 1
    while mask >= 1:
        if vrank & (mask - 1) == 0:
            if vrank & mask:
                src = ranks[(vrank - mask + root) % world]
                incoming = hub.recv(ranks[me], src, (tag, "bc", mask), timeout)
                flat[...] = incoming
            else:
                vpartner = vrank + mask
                if vpartner < world:
                    dst = ranks[(vpartner + root) % world]
                    hub.send(ranks[me], dst, (tag, "bc", mask), flat.copy())
        mask >>= 1
    buffer.reshape(-1)[...] = flat


def allgather(
    hub: TransportHub,
    ranks: Sequence[int],
    me: int,
    buffer: np.ndarray,
    tag: object = "allgather",
    timeout: float | None = None,
) -> np.ndarray:
    """Ring allgather; returns an array of shape (world, buffer.size)."""
    world = len(ranks)
    flat = buffer.reshape(-1)
    out = np.empty((world, flat.size), dtype=flat.dtype)
    out[me] = flat
    if world == 1:
        return out
    right = ranks[(me + 1) % world]
    left = ranks[(me - 1) % world]
    for step in range(world - 1):
        send_idx = (me - step) % world
        recv_idx = (me - step - 1) % world
        hub.send(ranks[me], right, (tag, "ag", step), out[send_idx].copy())
        out[recv_idx] = hub.recv(ranks[me], left, (tag, "ag", step), timeout)
    return out


def reduce_scatter(
    hub: TransportHub,
    ranks: Sequence[int],
    me: int,
    buffer: np.ndarray,
    op: str = "sum",
    tag: object = "rscatter",
    timeout: float | None = None,
) -> np.ndarray:
    """Ring reduce-scatter; returns this rank's fully reduced chunk."""
    fn = _reduce_fn(op)
    world = len(ranks)
    flat = buffer.reshape(-1).copy()
    chunks = np.array_split(np.arange(flat.size), world)
    if world == 1:
        return flat
    right = ranks[(me + 1) % world]
    left = ranks[(me - 1) % world]
    for step in range(world - 1):
        send_idx = (me - step) % world
        recv_idx = (me - step - 1) % world
        hub.send(ranks[me], right, (tag, "rs", step), flat[chunks[send_idx]].copy())
        incoming = hub.recv(ranks[me], left, (tag, "rs", step), timeout)
        flat[chunks[recv_idx]] = fn(flat[chunks[recv_idx]], incoming)
    owned = (me + 1) % world
    return flat[chunks[owned]]


def reduce(
    hub: TransportHub,
    ranks: Sequence[int],
    me: int,
    buffer: np.ndarray,
    root: int = 0,
    op: str = "sum",
    tag: object = "reduce",
    timeout: float | None = None,
) -> None:
    """Binomial-tree reduce to group-rank ``root`` (in place at root;
    other ranks' buffers are left with partial sums, as in MPI)."""
    fn = _reduce_fn(op)
    world = len(ranks)
    if world == 1:
        return
    flat = buffer.reshape(-1)
    vrank = (me - root) % world
    mask = 1
    while mask < world:
        if vrank & mask:
            dst = ranks[(vrank - mask + root) % world]
            hub.send(ranks[me], dst, (tag, "red", mask), flat.copy())
            return
        vpartner = vrank + mask
        if vpartner < world:
            src = ranks[(vpartner + root) % world]
            incoming = hub.recv(ranks[me], src, (tag, "red", mask), timeout)
            flat[...] = fn(flat, incoming)
        mask <<= 1


def gather(
    hub: TransportHub,
    ranks: Sequence[int],
    me: int,
    buffer: np.ndarray,
    root: int = 0,
    tag: object = "gather",
    timeout: float | None = None,
):
    """Gather every rank's buffer at ``root``; returns (world, n) array
    at the root and ``None`` elsewhere."""
    world = len(ranks)
    flat = buffer.reshape(-1)
    if me != root:
        hub.send(ranks[me], ranks[root], (tag, "g", me), flat.copy())
        return None
    out = np.empty((world, flat.size), dtype=flat.dtype)
    out[root] = flat
    for peer in range(world):
        if peer != root:
            out[peer] = hub.recv(ranks[me], ranks[peer], (tag, "g", peer), timeout)
    return out


def scatter(
    hub: TransportHub,
    ranks: Sequence[int],
    me: int,
    chunks,
    root: int = 0,
    tag: object = "scatter",
    timeout: float | None = None,
) -> np.ndarray:
    """Scatter ``chunks`` (root's list of per-rank arrays) to the group;
    returns this rank's chunk."""
    world = len(ranks)
    if me == root:
        if chunks is None or len(chunks) != world:
            raise ValueError("root must provide one chunk per rank")
        for peer in range(world):
            if peer != root:
                hub.send(ranks[me], ranks[peer], (tag, "s", peer), np.asarray(chunks[peer]).copy())
        return np.asarray(chunks[root])
    return hub.recv(ranks[me], ranks[root], (tag, "s", me), timeout)


def barrier(
    hub: TransportHub,
    ranks: Sequence[int],
    me: int,
    tag: object = "barrier",
    timeout: float | None = None,
) -> None:
    """Synchronize all ranks (a 1-element tree allreduce)."""
    token = np.zeros(1, dtype=np.int64)
    allreduce_tree(hub, ranks, me, token, "sum", (tag, "tok"), timeout)


def allreduce_hierarchical(
    hub: TransportHub,
    ranks: Sequence[int],
    me: int,
    buffer: np.ndarray,
    op: str = "sum",
    tag: object = "hier",
    timeout: float | None = None,
    group_size: int = 8,
) -> None:
    """Two-level AllReduce: intra-group reduce → leader ring → broadcast.

    This is how multi-node NCCL behaves in practice: fast intra-server
    links absorb most of the volume, and only one stream per server
    crosses the slow inter-server network.  Groups are consecutive runs
    of ``group_size`` ranks (matching ``ClusterSpec.placement``); a
    trailing smaller group is fine.
    """
    world = len(ranks)
    if world == 1:
        return
    if world <= group_size:
        allreduce_ring(hub, ranks, me, buffer, op, (tag, "flat"), timeout)
        return

    group_index = me // group_size
    group_lo = group_index * group_size
    group_members = ranks[group_lo : group_lo + group_size]
    local_me = me - group_lo
    leader_locals = list(range(0, world, group_size))
    leaders = [ranks[i] for i in leader_locals]

    # Phase 1: reduce within the group to its leader (local rank 0).
    reduce(hub, group_members, local_me, buffer, 0, op, (tag, "intra", group_index), timeout)
    # Phase 2: ring AllReduce among the leaders.
    if local_me == 0:
        leader_me = leader_locals.index(group_lo)
        allreduce_ring(hub, leaders, leader_me, buffer, op, (tag, "inter"), timeout)
    # Phase 3: broadcast the result within the group.
    broadcast(hub, group_members, local_me, buffer, 0, (tag, "bcast", group_index), timeout)


ALLREDUCE_ALGORITHMS = {
    "naive": allreduce_naive,
    "ring": allreduce_ring,
    "tree": allreduce_tree,
    "halving_doubling": allreduce_halving_doubling,
    "hierarchical": allreduce_hierarchical,
}
