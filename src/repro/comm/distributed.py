"""Rank contexts, group initialization, and the thread harness.

``run_distributed(world_size, fn)`` is the library's ``torchrun``: it
creates the shared rendezvous store and transport hub, launches one
thread per rank, runs ``fn(rank)`` (or ``fn()``) inside a rank context,
joins, and re-raises the first failure.  Within a rank thread the usual
``init_process_group`` / ``get_rank`` / ``new_process_group`` APIs are
available, mirroring ``torch.distributed``.
"""

from __future__ import annotations

import inspect
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.comm.process_group import BACKENDS, ProcessGroup
from repro.comm.round_robin import RoundRobinProcessGroup
from repro.comm.store import Store, StoreTimeoutError
from repro.comm.transport import TransportHub
from repro.utils.logging import logger
from repro.utils.rank import set_current_rank

_thread_ctx = threading.local()


@dataclass
class DistributedContext:
    """Everything a rank thread needs to participate in collectives."""

    rank: int
    world_size: int
    store: Store
    hub: TransportHub
    default_group: Optional[ProcessGroup] = None
    _owned_groups: List = field(default_factory=list)

    def close(self) -> None:
        """Shut down every owned group.

        A communication worker wedged in a transport ``recv`` (its peer
        diverged or died) is woken by the group's shutdown closing the
        hub; any worker that still fails to join is reported instead of
        silently stranded.
        """
        # Capture the run's final metrics before the groups go away —
        # without this, anything since the last sampler tick is lost.
        from repro.telemetry.observatory.sampler import flush_active_samplers

        flush_active_samplers()
        stuck: List[str] = []
        for group in self._owned_groups:
            if not group.shutdown():
                stuck.append(f"pg{group._group_id}")
        self._owned_groups.clear()
        self.default_group = None
        if stuck:
            logger.error(
                "rank %d: communication workers of %s could not be joined "
                "at context close", self.rank, ", ".join(stuck),
            )


def _set_context(ctx: Optional[DistributedContext]) -> None:
    _thread_ctx.ctx = ctx


def get_context() -> DistributedContext:
    """This thread's distributed context; raises outside a rank thread."""
    ctx = getattr(_thread_ctx, "ctx", None)
    if ctx is None:
        raise RuntimeError(
            "no distributed context on this thread; run inside run_distributed() "
            "or call init_process_group() with explicit store/hub"
        )
    return ctx


def get_rank() -> int:
    """Calling thread's global rank (``torch.distributed.get_rank``)."""
    return get_context().rank


def get_world_size() -> int:
    """Total rank count of the calling thread's distributed context."""
    return get_context().world_size


def init_process_group(
    backend: str = "nccl",
    store: Optional[Store] = None,
    hub: Optional[TransportHub] = None,
    rank: Optional[int] = None,
    world_size: Optional[int] = None,
    timeout: float = 30.0,
    group_id=0,
    **kwargs,
) -> ProcessGroup:
    """Create (or recreate) the default process group for this rank.

    Inside ``run_distributed`` the store/hub/rank arguments default to
    the harness-provided context; standalone callers must pass them.
    ``group_id`` namespaces the group's store keys and message tags —
    the elastic supervisor passes a fresh id per re-rendezvous
    generation so stale keys from a dead generation cannot bleed in.
    """
    ctx = getattr(_thread_ctx, "ctx", None)
    if ctx is None:
        if store is None or hub is None or rank is None or world_size is None:
            raise RuntimeError(
                "outside run_distributed(), init_process_group needs "
                "store=, hub=, rank=, world_size="
            )
        ctx = DistributedContext(rank, world_size, store, hub)
        _set_context(ctx)
        set_current_rank(rank)
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; options: {sorted(BACKENDS)}")
    group = BACKENDS[backend](
        ctx.store, ctx.hub, ctx.rank, group_id=group_id, timeout=timeout, **kwargs
    )
    ctx.default_group = group
    ctx._owned_groups.append(group)
    return group


def new_process_group(
    backend: str = "nccl",
    ranks: Optional[Sequence[int]] = None,
    timeout: float = 30.0,
    **kwargs,
) -> ProcessGroup:
    """Create an additional group (for round-robin or sub-groups).

    Every member rank must call this the same number of times in the
    same order; the group id is allocated collectively through the store.
    """
    ctx = get_context()
    member_ranks = sorted(ranks) if ranks is not None else list(range(ctx.world_size))
    # Allocate one id per (call-site order, membership); the first caller
    # bumps the counter, everyone else reads the same value via the
    # per-rank call count so ids align without a global barrier.
    count_key = f"pg_alloc/{tuple(member_ranks)}/rank{ctx.rank}"
    nth_call = ctx.store.add(count_key, 1)
    id_key = f"pg_id/{tuple(member_ranks)}/{nth_call}"
    if ctx.rank == member_ranks[0]:
        group_id = ctx.store.add("pg_id_counter", 1)
        ctx.store.set(id_key, group_id)
    else:
        group_id = ctx.store.get(id_key, timeout=timeout)
    if ctx.rank not in member_ranks:
        # As in torch.distributed.new_group: every rank calls, only
        # members receive a usable group.
        return None
    group = BACKENDS[backend](
        ctx.store,
        ctx.hub,
        ctx.rank,
        ranks=member_ranks,
        group_id=group_id,
        timeout=timeout,
        **kwargs,
    )
    ctx._owned_groups.append(group)
    return group


def new_round_robin_group(
    backend: str = "nccl", num_groups: int = 2, timeout: float = 30.0, **kwargs
) -> RoundRobinProcessGroup:
    """Compose ``num_groups`` fresh groups into a round-robin dispatcher."""
    members = [
        new_process_group(backend, timeout=timeout, **kwargs) for _ in range(num_groups)
    ]
    return RoundRobinProcessGroup(members)


def monitored_barrier(
    timeout: Optional[float] = None, group=None
) -> None:
    """A barrier that *names* the ranks that failed to reach it.

    The plain ``barrier()`` collective inherits the failure mode it is
    supposed to debug: if a rank diverged, the barrier itself hangs into
    an anonymous timeout.  ``monitored_barrier`` runs through the
    rendezvous store instead — every rank checks in, the group's first
    rank (the monitor) waits for all arrivals and releases everyone, and
    a timeout raises on the monitor with the exact set of missing ranks
    (on other ranks, with the monitor named as unresponsive).

    Like ``torch.distributed.monitored_barrier``: every member rank must
    call it the same number of times, at the same points.
    """
    ctx = get_context()
    pg = group if group is not None else ctx.default_group
    if pg is not None:
        ranks, group_id, store = list(pg.ranks), pg._group_id, pg.store
        my_rank = pg.global_rank
        timeout = timeout if timeout is not None else pg.timeout
    else:
        ranks, group_id, store = list(range(ctx.world_size)), "ctx", ctx.store
        my_rank = ctx.rank
        timeout = timeout if timeout is not None else store.timeout
    # Per-rank call counter: all ranks call in the same order, so the
    # counter aligns barrier instances without a collective.
    seq = store.add(f"mb/{group_id}/count/rank{my_rank}", 1)
    prefix = f"mb/{group_id}/{seq}"
    store.set(f"{prefix}/arrive/rank{my_rank}", time.perf_counter())
    monitor = ranks[0]
    if my_rank == monitor:
        arrive_keys = [f"{prefix}/arrive/rank{r}" for r in ranks]
        try:
            store.wait(arrive_keys, timeout=timeout)
        except StoreTimeoutError:
            missing = sorted(
                r for r in ranks
                if store.try_get(f"{prefix}/arrive/rank{r}") is None
            )
            store.set(f"{prefix}/release", {"ok": False, "missing": missing})
            raise RuntimeError(
                f"monitored_barrier #{seq} (group {group_id}) timed out "
                f"after {timeout}s: rank(s) {missing} never reached the "
                f"barrier (diverged, hung, or exited)"
            ) from None
        store.set(f"{prefix}/release", {"ok": True})
    else:
        try:
            release = store.get(f"{prefix}/release", timeout=timeout)
        except StoreTimeoutError:
            raise RuntimeError(
                f"monitored_barrier #{seq} (group {group_id}): no release "
                f"from monitor rank {monitor} within {timeout}s (the "
                f"monitor hung, or is itself waiting on a missing rank)"
            ) from None
        if not release["ok"]:
            raise RuntimeError(
                f"monitored_barrier #{seq} (group {group_id}) failed: "
                f"monitor rank {monitor} reported rank(s) "
                f"{release['missing']} missing"
            )


def destroy_process_group() -> None:
    """Tear down every group this rank created (idempotent)."""
    ctx = getattr(_thread_ctx, "ctx", None)
    if ctx is not None:
        ctx.close()


def run_distributed(
    world_size: int,
    fn: Callable,
    backend: Optional[str] = None,
    timeout: float = 30.0,
    store: Optional[Store] = None,
    hub: Optional[TransportHub] = None,
    fault_plan=None,
    **group_kwargs,
) -> List:
    """Run ``fn`` on ``world_size`` rank threads; returns per-rank results.

    ``fn`` may accept zero arguments or a single ``rank`` argument.  When
    ``backend`` is given, a default process group is initialized before
    ``fn`` runs; extra keyword arguments (e.g. ``num_streams=2``,
    ``chunk_bytes=65536``, ``algorithm="tree"``) are forwarded to the
    backend constructor.  A ``fault_plan``
    (:class:`repro.resilience.FaultPlan`) is installed on the hub before
    any rank starts.  The first rank exception is re-raised in the
    caller.
    """
    store = store or Store(timeout=timeout)
    hub = hub or TransportHub(world_size, default_timeout=timeout)
    if fault_plan is not None:
        hub.install_fault_plan(fault_plan)
    results: List = [None] * world_size
    errors: List = []
    wants_rank = len(inspect.signature(fn).parameters) >= 1

    def runner(rank: int) -> None:
        ctx = DistributedContext(rank, world_size, store, hub)
        _set_context(ctx)
        # Rank identity for log records and telemetry span attribution.
        set_current_rank(rank)
        try:
            if backend is not None:
                init_process_group(backend, timeout=timeout, **group_kwargs)
            results[rank] = fn(rank) if wants_rank else fn()
        except BaseException as exc:  # noqa: BLE001 - propagate to caller
            errors.append((rank, exc))
            # Unblock peers stuck in recv so the join below terminates.
            hub.close()
        finally:
            destroy_process_group()
            _set_context(None)

    threads = [
        threading.Thread(target=runner, args=(rank,), name=f"rank{rank}", daemon=True)
        for rank in range(world_size)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=timeout * 4)
    alive = [t.name for t in threads if t.is_alive()]
    if alive and not errors:
        raise TimeoutError(f"rank threads did not finish: {alive}")
    if errors:
        # Prefer the root cause: ranks unblocked by hub.close() raise
        # TransportClosedError as a side effect of another rank's failure.
        from repro.comm.transport import TransportClosedError

        errors.sort(key=lambda pair: (isinstance(pair[1], TransportClosedError), pair[0]))
        rank, exc = errors[0]
        raise RuntimeError(f"rank {rank} failed: {exc}") from exc
    return results
