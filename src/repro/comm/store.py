"""Rendezvous key/value store (the ``TCPStore`` analog).

The paper (§3.3) describes ProcessGroup construction as "implemented
using a rendezvous service, where the first arrival will block waiting
until the last instance joins".  ``Store`` provides exactly that:
blocking ``get``/``wait`` plus an atomic ``add`` counter that the group
constructors use to allocate ids and count arrivals.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable


class StoreTimeoutError(TimeoutError):
    """A blocking store operation exceeded its timeout."""


class Store:
    """Thread-safe key/value store with blocking reads and atomic adds."""

    def __init__(self, timeout: float = 30.0):
        self._data: Dict[str, Any] = {}
        self._lock = threading.Condition()
        self.timeout = timeout

    def set(self, key: str, value: Any) -> None:
        """Publish ``value`` under ``key`` and wake blocked readers."""
        with self._lock:
            self._data[key] = value
            self._lock.notify_all()

    def get(self, key: str, timeout: float | None = None) -> Any:
        """Return ``key``'s value, blocking until some rank sets it."""
        deadline = timeout if timeout is not None else self.timeout
        with self._lock:
            ok = self._lock.wait_for(lambda: key in self._data, deadline)
            if not ok:
                raise StoreTimeoutError(f"store.get({key!r}) timed out after {deadline}s")
            return self._data[key]

    def try_get(self, key: str, default: Any = None) -> Any:
        """Non-blocking read: ``key``'s value, or ``default`` if unset.

        The debug watchdog polls with this — peeking for an alarm or a
        peer's state must never block behind a rank that will not write.
        """
        with self._lock:
            return self._data.get(key, default)

    def add(self, key: str, amount: int = 1) -> int:
        """Atomically add to an integer key, creating it at 0; returns the new value."""
        with self._lock:
            value = int(self._data.get(key, 0)) + amount
            self._data[key] = value
            self._lock.notify_all()
            return value

    def wait(self, keys: Iterable[str], timeout: float | None = None) -> None:
        """Block until every key in ``keys`` exists; raises on timeout."""
        deadline = timeout if timeout is not None else self.timeout
        keys = list(keys)
        with self._lock:
            ok = self._lock.wait_for(lambda: all(k in self._data for k in keys), deadline)
            if not ok:
                missing = [k for k in keys if k not in self._data]
                raise StoreTimeoutError(f"store.wait timed out; missing keys {missing}")

    def wait_value(self, key: str, predicate, timeout: float | None = None) -> Any:
        """Block until ``predicate(store[key])`` holds; returns the value."""
        deadline = timeout if timeout is not None else self.timeout
        with self._lock:
            ok = self._lock.wait_for(
                lambda: key in self._data and predicate(self._data[key]), deadline
            )
            if not ok:
                raise StoreTimeoutError(f"store.wait_value({key!r}) timed out")
            return self._data[key]

    def delete(self, key: str) -> bool:
        """Remove ``key``; returns True if it existed."""
        with self._lock:
            return self._data.pop(key, None) is not None

    def delete_prefix(self, prefix: str) -> int:
        """Remove every key starting with ``prefix``; returns the count.

        Process groups call this on destroy to drop their namespaced
        keys (per-seq collective signatures, watchdog snapshots, barrier
        counters), so long-lived stores — notably the one shared across
        elastic re-rendezvous generations — do not grow unboundedly.
        """
        with self._lock:
            victims = [key for key in self._data if key.startswith(prefix)]
            for key in victims:
                del self._data[key]
            return len(victims)

    def keys(self, prefix: str = "") -> list:
        """Snapshot of all keys currently set (optionally prefix-filtered)."""
        with self._lock:
            if prefix:
                return [key for key in self._data if key.startswith(prefix)]
            return list(self._data)
