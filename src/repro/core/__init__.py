"""The paper's primary contribution: ``DistributedDataParallel``.

Submodules:

* :mod:`~repro.core.bucket` — parameter-to-bucket assignment (reverse
  ``model.parameters()`` order, size cap, device/dtype affinity).
* :mod:`~repro.core.reducer` — the gradient-reduction engine: autograd
  hooks, per-bucket pending counts, in-order asynchronous AllReduce,
  unused-parameter bitmaps (paper §3.2, §4.2; ``reducer.cpp`` analog).
* :mod:`~repro.core.ddp` — the user-facing ``nn.Module`` wrapper with
  state broadcast, buffer sync, and ``no_sync`` (``distributed.py``
  analog).
* :mod:`~repro.core.comm_hooks` — gradient-compression communication
  hooks (paper §6.2.3 future work).
* :mod:`~repro.core.order_prediction` — backward-order tracing and
  rebucketing (paper §6.2.1 future work).
* :mod:`~repro.core.param_avg` — the parameter-averaging baseline the
  paper argues against (§2.2).
* :mod:`~repro.core.taxonomy` — Table 1's categorization of distributed
  training solutions.
"""

from repro.core.bucket import BucketSpec, compute_bucket_assignment
from repro.core.reducer import Reducer, ReducerError
from repro.core.ddp import DistributedDataParallel
from repro.core.data_parallel import DataParallel
from repro.core.param_avg import ParameterAveragingTrainer, average_parameters
from repro.core import comm_hooks
from repro.core.order_prediction import BackwardOrderTracer, assignment_from_order
from repro.core.layer_drop import BroadcastLayerDrop, SeededLayerDrop
from repro.core.taxonomy import TRAINING_SOLUTIONS, render_table1

__all__ = [
    "BucketSpec",
    "compute_bucket_assignment",
    "Reducer",
    "ReducerError",
    "DistributedDataParallel",
    "DataParallel",
    "ParameterAveragingTrainer",
    "average_parameters",
    "comm_hooks",
    "BackwardOrderTracer",
    "assignment_from_order",
    "BroadcastLayerDrop",
    "SeededLayerDrop",
    "TRAINING_SOLUTIONS",
    "render_table1",
]
