"""Gradient-compression communication hooks (paper §6.2.3).

The paper observes that gradients rarely need the parameter dtype's full
precision and proposes adaptive compression as future work, citing 1-bit
SGD.  These hooks implement that direction on the reducer's comm-hook
interface: each hook receives ``(process_group, bucket_tensor, world)``
and must return a ``Work``-like handle; when it completes, the bucket
must hold the *averaged* gradient.

Provided hooks:

* :func:`allreduce_hook` — the identity hook (sum + divide); baseline.
* :func:`fp16_compress_hook` / :class:`Fp16Hook` — cast to float16 on
  the wire (the class form adds optional error feedback).
* :func:`quantize8_hook` / :class:`Quantize8Hook` — linear 8-bit
  quantization with per-bucket scale (class form adds error feedback).
* :class:`OneBitSGDHook` — sign-based 1-bit compression with local error
  feedback (Seide et al., the paper's reference [34]).
* :class:`TopKHook` / :func:`topk_compress_hook` — top-k magnitude
  sparsification; ships a compact (indices, values) payload via
  AllGather instead of a dense AllReduce.
* :class:`PowerSGDHook` — low-rank gradient factorization (Vogels et
  al.): two small AllReduces of the P/Q factors replace one dense
  AllReduce of the full bucket.

Stateful hooks (error-feedback residuals, PowerSGD's warm-started Q)
key their per-bucket state by the bucket buffer's identity and expose
``reset()``; anything that *relayouts* buckets mid-run (the autotuner's
``rebuild_buckets``) must call :func:`reset_hook` so residuals do not
apply to mismatched layouts.

``HOOK_FACTORIES`` maps hook names to zero-argument factories producing
fresh hook instances — the registry behind the autotuner's ``comm_hook``
dimension and the compression ablation benchmark.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.autograd.tensor import Tensor
from repro.comm.process_group import ReduceOp


class _HookWork:
    """Work adapter running a post-processing step after the collective."""

    def __init__(self, inner_work, finish):
        self._inner = inner_work
        self._finish = finish
        self._done = False

    def wait(self, timeout=None) -> None:
        if not self._done:
            if self._inner is not None:
                self._inner.wait(timeout)
            self._finish()
            self._done = True

    def is_completed(self) -> bool:
        return self._done


def allreduce_hook(process_group, bucket: Tensor, world: int):
    """Vanilla hook: AllReduce-sum then divide — what DDP does natively."""
    work = process_group.allreduce(bucket, ReduceOp.SUM, async_op=True)

    def finish() -> None:
        bucket.data /= world

    return _HookWork(work, finish)


def fp16_compress_hook(process_group, bucket: Tensor, world: int):
    """Communicate in float16, decompress back into the bucket."""
    compressed = Tensor(bucket.data.astype(np.float16), device=bucket.device)
    work = process_group.allreduce(compressed, ReduceOp.SUM, async_op=True)

    def finish() -> None:
        bucket.data[...] = compressed.data.astype(bucket.data.dtype) / world

    return _HookWork(work, finish)


def quantize8_hook(process_group, bucket: Tensor, world: int):
    """Linear 8-bit quantization with a shared per-bucket scale.

    The scale is the global max-abs (one tiny AllReduce), so every rank
    quantizes onto the same grid and the integer sum is exact.
    """
    scale = Tensor(
        np.array([np.abs(bucket.data).max()], dtype=np.float64), device=bucket.device
    )
    process_group.allreduce(scale, ReduceOp.MAX)
    denom = float(scale.data[0]) or 1.0
    levels = 127.0
    quantized = Tensor(
        np.round(bucket.data / denom * levels).astype(np.int32), device=bucket.device
    )
    work = process_group.allreduce(quantized, ReduceOp.SUM, async_op=True)

    def finish() -> None:
        bucket.data[...] = quantized.data.astype(np.float64) / levels * denom / world

    return _HookWork(work, finish)


class OneBitSGDHook:
    """1-bit SGD: communicate signs, feed quantization error back locally.

    Per-bucket error memory makes the hook stateful; instantiate one per
    DDP instance.  The reconstruction magnitude is the global mean of
    per-rank mean-|g| (a second tiny AllReduce).
    """

    def __init__(self) -> None:
        self._error: Dict[int, np.ndarray] = {}

    def __call__(self, process_group, bucket: Tensor, world: int):
        key = id(bucket.data)  # stable: bucket buffers live for the DDP lifetime
        error = self._error.get(key)
        if error is None:
            error = np.zeros_like(bucket.data)
            self._error[key] = error

        corrected = bucket.data + error
        magnitude = Tensor(
            np.array([np.abs(corrected).mean()], dtype=np.float64), device=bucket.device
        )
        process_group.allreduce(magnitude, ReduceOp.SUM)
        mean_magnitude = float(magnitude.data[0]) / world

        signs = np.where(corrected >= 0, 1.0, -1.0)
        compressed_value = signs * mean_magnitude
        error[...] = corrected - compressed_value

        wire = Tensor(signs.astype(np.int8), device=bucket.device)
        work = process_group.allreduce(wire, ReduceOp.SUM, async_op=True)

        def finish() -> None:
            bucket.data[...] = wire.data.astype(np.float64) * mean_magnitude / world

        return _HookWork(work, finish)


class AdaptivePrecisionHook:
    """Adaptive compression levels (paper §6.2.3).

    "Current DDP implementation always uses the parameter type as the
    gradient type that can become an overkill especially when the model
    is approaching convergence.  DDP would benefit from adaptive
    compression levels by only communicating gradients with the
    necessary precision."

    The hook inspects each bucket's gradient magnitude and picks the
    narrowest wire dtype whose absolute rounding error at that magnitude
    stays below ``tolerance``.  As training converges and gradients
    shrink, narrower dtypes become acceptable and the wire volume drops
    automatically.  All ranks must agree on the wire dtype, so the
    per-bucket choice is made collectively with a tiny MIN-AllReduce
    (the most conservative rank wins).
    """

    #: wire dtypes from widest to narrowest; code == index
    LEVELS = (np.float64, np.float32, np.float16)

    def __init__(self, tolerance: float = 1e-4):
        self.tolerance = tolerance
        self.chosen_levels: Dict[int, int] = {}

    def _desired_level(self, data: np.ndarray) -> int:
        scale = float(np.abs(data).max())
        if scale == 0.0:
            return len(self.LEVELS) - 1
        for code in range(len(self.LEVELS) - 1, 0, -1):
            dtype = self.LEVELS[code]
            # absolute rounding error of the dtype at this magnitude
            rounding = float(np.finfo(dtype).eps) * scale
            if rounding <= self.tolerance:
                return code
        return 0

    def __call__(self, process_group, bucket: Tensor, world: int):
        desired = self._desired_level(bucket.data)
        vote = Tensor(np.array([desired], dtype=np.int64), device=bucket.device)
        process_group.allreduce(vote, ReduceOp.MIN)
        level = int(vote.data[0])
        self.chosen_levels[id(bucket.data)] = level
        wire_dtype = self.LEVELS[level]

        if wire_dtype == bucket.data.dtype:
            work = process_group.allreduce(bucket, ReduceOp.SUM, async_op=True)

            def finish_same() -> None:
                bucket.data /= world

            return _HookWork(work, finish_same)

        compressed = Tensor(bucket.data.astype(wire_dtype), device=bucket.device)
        work = process_group.allreduce(compressed, ReduceOp.SUM, async_op=True)

        def finish() -> None:
            bucket.data[...] = compressed.data.astype(bucket.data.dtype) / world

        return _HookWork(work, finish)


class _ResidualStore:
    """Per-bucket error-feedback residuals keyed by buffer identity.

    Bucket buffers live for the DDP lifetime, so ``id(bucket.data)`` is
    a stable key — with a shape check so a recycled id (buffer freed by
    an autotuner relayout, id reused by the allocator) can never
    resurrect a stale residual of the wrong length.
    """

    def __init__(self) -> None:
        self._store: Dict[int, np.ndarray] = {}

    def get(self, data: np.ndarray) -> np.ndarray:
        key = id(data)
        entry = self._store.get(key)
        if entry is None or entry.shape != data.shape:
            entry = np.zeros_like(data)
            self._store[key] = entry
        return entry

    def clear(self) -> None:
        self._store.clear()


class Fp16Hook:
    """float16 on the wire, with optional error feedback.

    The function form (:func:`fp16_compress_hook`) simply drops the
    rounding error; with ``use_error_feedback=True`` this class carries
    each rank's float16 rounding error into its next contribution, so
    the loss does not accumulate over training.
    """

    def __init__(self, use_error_feedback: bool = False):
        self.use_error_feedback = use_error_feedback
        self._residuals = _ResidualStore()

    def __call__(self, process_group, bucket: Tensor, world: int):
        data = bucket.data
        if self.use_error_feedback:
            residual = self._residuals.get(data)
            corrected = data + residual
        else:
            corrected = data
        wire = corrected.astype(np.float16)
        if self.use_error_feedback:
            residual[...] = corrected - wire.astype(data.dtype)
        compressed = Tensor(wire, device=bucket.device)
        work = process_group.allreduce(compressed, ReduceOp.SUM, async_op=True)

        def finish() -> None:
            bucket.data[...] = compressed.data.astype(data.dtype) / world

        return _HookWork(work, finish)

    def reset(self) -> None:
        self._residuals.clear()


class Quantize8Hook:
    """Linear 8-bit quantization (shared global scale), optional error
    feedback.  Same wire format as :func:`quantize8_hook` — int32
    carries the integer sum without overflow — plus the residual carry
    of each rank's local rounding error."""

    LEVELS = 127.0

    def __init__(self, use_error_feedback: bool = False):
        self.use_error_feedback = use_error_feedback
        self._residuals = _ResidualStore()

    def __call__(self, process_group, bucket: Tensor, world: int):
        data = bucket.data
        if self.use_error_feedback:
            residual = self._residuals.get(data)
            corrected = data + residual
        else:
            corrected = data
        scale = Tensor(
            np.array([np.abs(corrected).max()], dtype=np.float64),
            device=bucket.device,
        )
        process_group.allreduce(scale, ReduceOp.MAX)
        denom = float(scale.data[0]) or 1.0
        quantized = np.round(corrected / denom * self.LEVELS)
        if self.use_error_feedback:
            residual[...] = corrected - quantized / self.LEVELS * denom
        wire = Tensor(quantized.astype(np.int32), device=bucket.device)
        work = process_group.allreduce(wire, ReduceOp.SUM, async_op=True)

        def finish() -> None:
            bucket.data[...] = (
                wire.data.astype(data.dtype) / self.LEVELS * denom / world
            )

        return _HookWork(work, finish)

    def reset(self) -> None:
        self._residuals.clear()


class TopKHook:
    """Top-k magnitude sparsification with error feedback.

    Each rank keeps only the ``density`` fraction of largest-|g|
    entries of its residual-corrected contribution and AllGathers a
    compact ``[indices..., values...]`` payload; every rank then
    scatter-adds the world's sparse contributions and averages.  Wire
    volume per rank is ``2 * density * n`` elements versus ``n`` dense
    — a ~10x reduction at the default density.  Entries *not* selected
    stay in the residual (error feedback, on by default: without it
    top-k silently drops most of the gradient).
    """

    def __init__(self, density: float = 0.05, use_error_feedback: bool = True):
        if not 0.0 < density <= 1.0:
            raise ValueError(f"density must be in (0, 1], got {density}")
        self.density = density
        self.use_error_feedback = use_error_feedback
        self._residuals = _ResidualStore()

    def __call__(self, process_group, bucket: Tensor, world: int):
        data = bucket.data
        n = data.size
        if self.use_error_feedback:
            residual = self._residuals.get(data)
            corrected = data + residual
        else:
            corrected = data.copy()
        flat = corrected.reshape(-1)
        # All ranks derive k from (n, density) alone, so the payload
        # shape — and therefore the collective signature — matches.
        k = max(1, min(n, int(round(n * self.density))))
        if k >= n:
            indices = np.arange(n, dtype=np.int64)
        else:
            indices = np.argpartition(np.abs(flat), n - k)[n - k :]
            indices.sort()
        values = flat[indices]
        if self.use_error_feedback:
            residual[...] = corrected
            residual.reshape(-1)[indices] = 0.0
        payload = np.concatenate(
            [indices.astype(np.float64), values.astype(np.float64)]
        )
        wire = Tensor(payload, device=bucket.device)
        work = process_group.allgather(wire, async_op=True)

        def finish() -> None:
            gathered = work.result[0]  # (world, 2k)
            out = np.zeros(n, dtype=data.dtype)
            for row in gathered:
                np.add.at(out, row[:k].astype(np.int64), row[k:])
            bucket.data[...] = (out / world).reshape(data.shape)

        return _HookWork(work, finish)

    def reset(self) -> None:
        self._residuals.clear()


def topk_compress_hook(
    density: float = 0.05, use_error_feedback: bool = True
) -> TopKHook:
    """A fresh :class:`TopKHook` (factory — the hook is stateful)."""
    return TopKHook(density=density, use_error_feedback=use_error_feedback)


class PowerSGDHook:
    """PowerSGD low-rank gradient compression (Vogels et al. 2019).

    The bucket is viewed as a near-square matrix ``M`` (zero-padded)
    and approximated as ``P @ Q^T`` with ``rank`` columns: one
    AllReduce of ``P = M @ Q`` is launched asynchronously at hook time;
    at wait time the averaged ``P`` is orthonormalized and a second
    AllReduce of ``Q = M^T @ P̂`` runs synchronously, after which the
    bucket holds ``P̂ (M_avg^T P̂)^T = P̂ P̂^T M_avg`` — the projection of
    the average gradient onto the learned subspace.  ``Q`` is
    warm-started from a seeded Gaussian identical on every rank and
    carried across iterations (power iteration), and the approximation
    error feeds back through the residual.

    Ordering note: the second collective is issued inside ``wait()``.
    The reducer waits buckets in index order on every rank, so the
    P/Q collective sequence stays aligned across the group.
    """

    def __init__(
        self, rank: int = 2, use_error_feedback: bool = True, seed: int = 0
    ):
        if rank < 1:
            raise ValueError(f"rank must be >= 1, got {rank}")
        self.rank = rank
        self.use_error_feedback = use_error_feedback
        self.seed = seed
        self._residuals = _ResidualStore()
        self._q: Dict[int, np.ndarray] = {}

    @staticmethod
    def _matrix_shape(n: int) -> tuple:
        rows = int(np.ceil(np.sqrt(n)))
        cols = -(-n // rows)
        return rows, cols

    def __call__(self, process_group, bucket: Tensor, world: int):
        data = bucket.data
        n = data.size
        if self.use_error_feedback:
            residual = self._residuals.get(data)
            corrected = data + residual
        else:
            corrected = data.copy()
        rows, cols = self._matrix_shape(n)
        matrix = np.zeros(rows * cols, dtype=np.float64)
        matrix[:n] = corrected.reshape(-1)
        M = matrix.reshape(rows, cols)
        r = min(self.rank, rows, cols)
        qkey = id(data)
        q = self._q.get(qkey)
        if q is None or q.shape != (cols, r):
            # Deterministic warm start: every rank seeds from the same
            # (seed, problem size), so Q starts identical everywhere.
            rng = np.random.RandomState((self.seed * 1000003 + n * 31 + r) % (2**31))
            q, _ = np.linalg.qr(rng.standard_normal((cols, r)))
        p = M @ q  # (rows, r)
        p_wire = Tensor(p.reshape(-1), device=bucket.device)
        work = process_group.allreduce(p_wire, ReduceOp.SUM, async_op=True)

        def finish() -> None:
            p_avg = p_wire.data.reshape(rows, r) / world
            p_hat, _ = np.linalg.qr(p_avg)
            q_wire = Tensor((M.T @ p_hat).reshape(-1), device=bucket.device)
            process_group.allreduce(q_wire, ReduceOp.SUM)
            q_avg = q_wire.data.reshape(cols, r) / world
            self._q[qkey] = q_avg
            approx = (p_hat @ q_avg.T).reshape(-1)[:n].reshape(data.shape)
            if self.use_error_feedback:
                residual[...] = corrected - approx
            bucket.data[...] = approx

        return _HookWork(work, finish)

    def reset(self) -> None:
        self._residuals.clear()
        self._q.clear()


#: Hook registry: name → zero-argument factory returning a *fresh* hook
#: (stateful hooks must not be shared across DDP instances).  This is
#: the namespace behind the autotuner's ``comm_hook`` dimension and the
#: compression ablation benchmark.
HOOK_FACTORIES = {
    "allreduce": lambda: allreduce_hook,
    "fp16": Fp16Hook,
    "quantize8": Quantize8Hook,
    "onebit": OneBitSGDHook,
    "adaptive": AdaptivePrecisionHook,
    "topk": TopKHook,
    "powersgd": PowerSGDHook,
}


def make_hook(name: str):
    """Instantiate a registered hook by name (see ``HOOK_FACTORIES``)."""
    try:
        factory = HOOK_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown comm hook {name!r}; known: {sorted(HOOK_FACTORIES)}"
        ) from None
    return factory()


def reset_hook(hook) -> None:
    """Clear a hook's per-bucket state (residuals, warm-started
    factors) if it has any — required after a bucket relayout, where
    buffer identities and shapes change under the hook."""
    reset = getattr(hook, "reset", None)
    if callable(reset):
        reset()


def compression_ratio(
    hook_name: str,
    dtype_bytes: int = 8,
    density: float = 0.05,
    rank: int = 2,
    elements: int = 1 << 20,
) -> float:
    """Wire bytes per gradient element relative to uncompressed.

    ``topk`` and ``powersgd`` ratios depend on configuration:
    ``density`` (fraction of entries kept, doubled for the index
    channel) and ``rank``/``elements`` (low-rank factor volume for a
    near-square ``elements`` matrix) respectively.
    """
    if hook_name == "topk":
        return min(1.0, 2.0 * density)
    if hook_name == "powersgd":
        rows, cols = PowerSGDHook._matrix_shape(elements)
        return min(1.0, (rows + cols) * rank / elements)
    wire_bytes = {
        "allreduce": dtype_bytes,
        "fp16": 2,
        "quantize8": 4,  # int32 on the wire in this implementation
        "onebit": 1,  # int8 signs
    }
    return wire_bytes[hook_name] / dtype_bytes
