"""Gradient-compression communication hooks (paper §6.2.3).

The paper observes that gradients rarely need the parameter dtype's full
precision and proposes adaptive compression as future work, citing 1-bit
SGD.  These hooks implement that direction on the reducer's comm-hook
interface: each hook receives ``(process_group, bucket_tensor, world)``
and must return a ``Work``-like handle; when it completes, the bucket
must hold the *averaged* gradient.

Provided hooks:

* :func:`allreduce_hook` — the identity hook (sum + divide); baseline.
* :func:`fp16_compress_hook` — cast to float16 on the wire, 4× (vs
  float64: 4×; vs fp32: 2×) volume reduction.
* :func:`quantize8_hook` — linear 8-bit quantization with per-bucket
  scale.
* :class:`OneBitSGDHook` — sign-based 1-bit compression with local error
  feedback (Seide et al., the paper's reference [34]).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.autograd.tensor import Tensor
from repro.comm.process_group import ReduceOp


class _HookWork:
    """Work adapter running a post-processing step after the collective."""

    def __init__(self, inner_work, finish):
        self._inner = inner_work
        self._finish = finish
        self._done = False

    def wait(self, timeout=None) -> None:
        if not self._done:
            if self._inner is not None:
                self._inner.wait(timeout)
            self._finish()
            self._done = True

    def is_completed(self) -> bool:
        return self._done


def allreduce_hook(process_group, bucket: Tensor, world: int):
    """Vanilla hook: AllReduce-sum then divide — what DDP does natively."""
    work = process_group.allreduce(bucket, ReduceOp.SUM, async_op=True)

    def finish() -> None:
        bucket.data /= world

    return _HookWork(work, finish)


def fp16_compress_hook(process_group, bucket: Tensor, world: int):
    """Communicate in float16, decompress back into the bucket."""
    compressed = Tensor(bucket.data.astype(np.float16), device=bucket.device)
    work = process_group.allreduce(compressed, ReduceOp.SUM, async_op=True)

    def finish() -> None:
        bucket.data[...] = compressed.data.astype(bucket.data.dtype) / world

    return _HookWork(work, finish)


def quantize8_hook(process_group, bucket: Tensor, world: int):
    """Linear 8-bit quantization with a shared per-bucket scale.

    The scale is the global max-abs (one tiny AllReduce), so every rank
    quantizes onto the same grid and the integer sum is exact.
    """
    scale = Tensor(
        np.array([np.abs(bucket.data).max()], dtype=np.float64), device=bucket.device
    )
    process_group.allreduce(scale, ReduceOp.MAX)
    denom = float(scale.data[0]) or 1.0
    levels = 127.0
    quantized = Tensor(
        np.round(bucket.data / denom * levels).astype(np.int32), device=bucket.device
    )
    work = process_group.allreduce(quantized, ReduceOp.SUM, async_op=True)

    def finish() -> None:
        bucket.data[...] = quantized.data.astype(np.float64) / levels * denom / world

    return _HookWork(work, finish)


class OneBitSGDHook:
    """1-bit SGD: communicate signs, feed quantization error back locally.

    Per-bucket error memory makes the hook stateful; instantiate one per
    DDP instance.  The reconstruction magnitude is the global mean of
    per-rank mean-|g| (a second tiny AllReduce).
    """

    def __init__(self) -> None:
        self._error: Dict[int, np.ndarray] = {}

    def __call__(self, process_group, bucket: Tensor, world: int):
        key = id(bucket.data)  # stable: bucket buffers live for the DDP lifetime
        error = self._error.get(key)
        if error is None:
            error = np.zeros_like(bucket.data)
            self._error[key] = error

        corrected = bucket.data + error
        magnitude = Tensor(
            np.array([np.abs(corrected).mean()], dtype=np.float64), device=bucket.device
        )
        process_group.allreduce(magnitude, ReduceOp.SUM)
        mean_magnitude = float(magnitude.data[0]) / world

        signs = np.where(corrected >= 0, 1.0, -1.0)
        compressed_value = signs * mean_magnitude
        error[...] = corrected - compressed_value

        wire = Tensor(signs.astype(np.int8), device=bucket.device)
        work = process_group.allreduce(wire, ReduceOp.SUM, async_op=True)

        def finish() -> None:
            bucket.data[...] = wire.data.astype(np.float64) * mean_magnitude / world

        return _HookWork(work, finish)


class AdaptivePrecisionHook:
    """Adaptive compression levels (paper §6.2.3).

    "Current DDP implementation always uses the parameter type as the
    gradient type that can become an overkill especially when the model
    is approaching convergence.  DDP would benefit from adaptive
    compression levels by only communicating gradients with the
    necessary precision."

    The hook inspects each bucket's gradient magnitude and picks the
    narrowest wire dtype whose absolute rounding error at that magnitude
    stays below ``tolerance``.  As training converges and gradients
    shrink, narrower dtypes become acceptable and the wire volume drops
    automatically.  All ranks must agree on the wire dtype, so the
    per-bucket choice is made collectively with a tiny MIN-AllReduce
    (the most conservative rank wins).
    """

    #: wire dtypes from widest to narrowest; code == index
    LEVELS = (np.float64, np.float32, np.float16)

    def __init__(self, tolerance: float = 1e-4):
        self.tolerance = tolerance
        self.chosen_levels: Dict[int, int] = {}

    def _desired_level(self, data: np.ndarray) -> int:
        scale = float(np.abs(data).max())
        if scale == 0.0:
            return len(self.LEVELS) - 1
        for code in range(len(self.LEVELS) - 1, 0, -1):
            dtype = self.LEVELS[code]
            # absolute rounding error of the dtype at this magnitude
            rounding = float(np.finfo(dtype).eps) * scale
            if rounding <= self.tolerance:
                return code
        return 0

    def __call__(self, process_group, bucket: Tensor, world: int):
        desired = self._desired_level(bucket.data)
        vote = Tensor(np.array([desired], dtype=np.int64), device=bucket.device)
        process_group.allreduce(vote, ReduceOp.MIN)
        level = int(vote.data[0])
        self.chosen_levels[id(bucket.data)] = level
        wire_dtype = self.LEVELS[level]

        if wire_dtype == bucket.data.dtype:
            work = process_group.allreduce(bucket, ReduceOp.SUM, async_op=True)

            def finish_same() -> None:
                bucket.data /= world

            return _HookWork(work, finish_same)

        compressed = Tensor(bucket.data.astype(wire_dtype), device=bucket.device)
        work = process_group.allreduce(compressed, ReduceOp.SUM, async_op=True)

        def finish() -> None:
            bucket.data[...] = compressed.data.astype(bucket.data.dtype) / world

        return _HookWork(work, finish)


def compression_ratio(hook_name: str, dtype_bytes: int = 8) -> float:
    """Wire bytes per gradient element relative to uncompressed."""
    wire_bytes = {
        "allreduce": dtype_bytes,
        "fp16": 2,
        "quantize8": 4,  # int32 on the wire in this implementation
        "onebit": 1,  # int8 signs
    }
    return wire_bytes[hook_name] / dtype_bytes
