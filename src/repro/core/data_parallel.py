"""Single-process multi-thread data parallelism (paper §2.2's first tool).

``DataParallel`` is the intra-machine predecessor of DDP: one process,
one parameter set, the input batch scattered across worker threads that
run the forward pass concurrently on shared parameters.  Outputs are
gathered along the batch dimension, so a single ``backward()`` flows
through every replica branch and gradients *accumulate* into the one
model — mathematically identical to running the full batch at once.

The paper lists it for completeness and moves on; so does this module.
Its real-world weaknesses are faithfully present: all replicas contend
for one interpreter (the GIL here, the driver there) and there is no
communication/computation overlap — which is precisely why the paper's
subject is ``DistributedDataParallel``.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Sequence

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.nn.module import Module


class DataParallel(Module):
    """Scatter the batch across threads, gather outputs, share parameters.

    Parameters
    ----------
    module:
        The model; its parameters are shared (not replicated) across
        worker threads.
    num_replicas:
        Number of concurrent forward workers (the stand-in for
        ``device_ids``).  The batch must be divisible-ish: chunks are
        ``np.array_split`` slices, so ragged batches work.
    """

    def __init__(self, module: Module, num_replicas: int = 2):
        super().__init__()
        if num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        self.module = module
        self.num_replicas = num_replicas

    def forward(self, x: Tensor) -> Tensor:
        batch = x.shape[0]
        replicas = min(self.num_replicas, batch)
        if replicas == 1:
            return self.module(x)

        boundaries = np.array_split(np.arange(batch), replicas)
        chunks = [x[idx[0] : idx[-1] + 1] for idx in boundaries]
        outputs: List[Optional[Tensor]] = [None] * replicas
        errors: List[BaseException] = []

        def worker(position: int, chunk: Tensor) -> None:
            try:
                outputs[position] = self.module(chunk)
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i, chunk), daemon=True)
            for i, chunk in enumerate(chunks)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        return ops.cat(outputs, axis=0)

    # transparency helpers, as on DDP
    def state_dict(self):
        return self.module.state_dict()

    def load_state_dict(self, state) -> None:
        self.module.load_state_dict(state)

    def __repr__(self) -> str:
        return f"DataParallel(replicas={self.num_replicas})\n  {self.module!r}"
