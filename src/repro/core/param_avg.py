"""Parameter averaging: the baseline the paper argues against (§2.2).

Parameter averaging replaces each rank's parameters with the cross-rank
mean *after* the local optimizer step.  It decouples cleanly from the
training loop, but:

* it is **not mathematically equivalent** to local training — optimizer
  state (e.g. momentum) evolves from *local* gradients on each rank and
  diverges, producing conflicting descent directions; and
* computation and communication are forced into non-overlapping phases
  separated by ``optimizer.step()``.

Both defects are measurable with this implementation; see
``tests/test_param_avg.py`` and ``benchmarks/bench_param_averaging.py``.
"""

from __future__ import annotations

from typing import Iterable

from repro.autograd.tensor import Tensor
from repro.comm.process_group import ReduceOp
from repro.nn.module import Module


def average_parameters(module: Module, process_group) -> None:
    """In-place cross-rank mean of every parameter (one pass, blocking)."""
    world = process_group.size
    for param in module.parameters():
        process_group.allreduce(param, ReduceOp.SUM)
        param.data /= world


class ParameterAveragingTrainer:
    """Auxiliary-step trainer: local step, then parameter averaging.

    Usage::

        trainer = ParameterAveragingTrainer(model, optimizer, pg)
        loss = loss_fn(model(x), y)
        loss.backward()
        trainer.step()          # optimizer.step() + parameter average
    """

    def __init__(self, module: Module, optimizer, process_group, average_every: int = 1):
        if average_every < 1:
            raise ValueError("average_every must be >= 1")
        self.module = module
        self.optimizer = optimizer
        self.process_group = process_group
        self.average_every = average_every
        self._step_count = 0

    def step(self) -> None:
        """Hard phase boundary: all compute finishes, then all comm runs."""
        self.optimizer.step()
        self._step_count += 1
        if self._step_count % self.average_every == 0:
            average_parameters(self.module, self.process_group)

    def zero_grad(self) -> None:
        self.optimizer.zero_grad()
