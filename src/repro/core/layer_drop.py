"""Coordinated layer dropping (paper §6.2.2).

Randomly dropping layers during the forward pass accelerates training,
but under DDP every process must agree on *which* layers drop, or the
hook/bucket bookkeeping diverges.  The paper proposes two coordination
strategies: "using the same random seed or having an authority process
to broadcast the plan."  Both are implemented here:

* :class:`SeededLayerDrop` — every rank draws the identical plan from a
  shared seed + iteration counter (no communication).
* :class:`BroadcastLayerDrop` — rank 0 draws the plan and broadcasts it
  (one tiny collective per iteration).

Either coordinator yields a boolean keep-mask per iteration; models
apply it in their forward pass (see ``repro.models.StochasticDepthMLP``
for the uncoordinated variant).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.autograd.tensor import Tensor


class SeededLayerDrop:
    """All ranks derive the same plan from (seed, iteration)."""

    def __init__(self, num_layers: int, drop_prob: float, seed: int = 0):
        if not 0.0 <= drop_prob < 1.0:
            raise ValueError("drop_prob must be in [0, 1)")
        self.num_layers = num_layers
        self.drop_prob = drop_prob
        self.seed = seed
        self.iteration = 0

    def next_plan(self) -> List[bool]:
        """Keep-mask for the next iteration; True = keep the layer.

        At least one layer is always kept so the model never collapses
        to the identity.
        """
        rng = np.random.default_rng((self.seed, self.iteration))
        self.iteration += 1
        keep = rng.random(self.num_layers) >= self.drop_prob
        if not keep.any():
            keep[int(rng.integers(0, self.num_layers))] = True
        return keep.tolist()


class BroadcastLayerDrop:
    """Rank 0 draws the plan and broadcasts it to the group."""

    def __init__(self, process_group, num_layers: int, drop_prob: float, seed: int = 0):
        if not 0.0 <= drop_prob < 1.0:
            raise ValueError("drop_prob must be in [0, 1)")
        self.process_group = process_group
        self.num_layers = num_layers
        self.drop_prob = drop_prob
        self._rng = np.random.default_rng(seed)

    def next_plan(self) -> List[bool]:
        plan = np.zeros(self.num_layers, dtype=np.int64)
        if self.process_group.group_rank == 0:
            keep = self._rng.random(self.num_layers) >= self.drop_prob
            if not keep.any():
                keep[int(self._rng.integers(0, self.num_layers))] = True
            plan[...] = keep
        self.process_group.broadcast(Tensor(plan), src=0)
        return [bool(v) for v in plan]
