"""Gradient order prediction and rebucketing (paper §6.2.1).

DDP's reverse-``parameters()`` bucketing is only an approximation of the
true backward order.  The paper proposes tracing actual gradient-ready
order with autograd hooks and rebuilding the parameter-to-bucket mapping
accordingly — infrequently, because re-allocation is expensive — with
extra care when traces disagree across iterations.

``BackwardOrderTracer`` implements that proposal: it observes ready
order for a number of iterations, checks stability, and emits a new
bucket assignment ordered by observed readiness.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.bucket import BucketSpec, compute_bucket_assignment
from repro.utils.units import MB


def assignment_from_order(
    params: Sequence, order: Sequence[int], bucket_cap_mb: float = 25.0
) -> List[BucketSpec]:
    """Bucket layout packing parameters in the given ready order.

    ``order`` lists parameter indices first-to-fire first; indices
    absent from ``order`` are appended last.  Bucket 0 holds the
    first-firing parameters, so overlap is maximized for the observed
    backward order rather than the assumed reverse-definition order.
    """
    params_list = list(params)
    order = list(order)
    missing = [i for i in range(len(params_list)) if i not in set(order)]
    order = order + missing
    if sorted(order) != list(range(len(params_list))):
        raise ValueError("order must be a permutation of parameter indices")
    # compute_bucket_assignment buckets in *reverse* input order, so
    # feed it the reversed trace, then translate positions back.
    reversed_order = list(reversed(order))
    reordered = [params_list[i] for i in reversed_order]
    specs = compute_bucket_assignment(reordered, int(bucket_cap_mb * MB))
    translated: List[BucketSpec] = []
    for spec in specs:
        translated.append(
            BucketSpec(
                index=spec.index,
                param_indices=tuple(reversed_order[i] for i in spec.param_indices),
                offsets=spec.offsets,
                sizes=spec.sizes,
                device=spec.device,
                dtype=spec.dtype,
            )
        )
    return translated


class BackwardOrderTracer:
    """Observes gradient-ready order and proposes a bucket layout.

    Wire it to a reducer by calling :meth:`record` from each parameter's
    autograd hook (DDP does this automatically when order tracing is
    enabled), then call :meth:`suggest_assignment` after a few
    iterations.
    """

    def __init__(self, num_params: int, stable_iterations: int = 3):
        self.num_params = num_params
        self.stable_iterations = stable_iterations
        self._current: List[int] = []
        self._traces: List[tuple] = []

    def record(self, param_index: int) -> None:
        """Note that ``param_index``'s gradient just became ready."""
        self._current.append(param_index)
        if len(self._current) == self.num_params:
            self._traces.append(tuple(self._current))
            self._current = []

    def end_iteration(self) -> None:
        """Close a partial trace (some parameters were unused)."""
        if self._current:
            self._traces.append(tuple(self._current))
            self._current = []

    @property
    def completed_traces(self) -> int:
        return len(self._traces)

    def is_stable(self) -> bool:
        """True when the last ``stable_iterations`` traces agree exactly.

        Disparities among traces mean the model's backward order varies
        (dynamic graphs); rebucketing on an unstable trace would chase
        noise, which is the extra complexity the paper warns about.
        """
        if len(self._traces) < self.stable_iterations:
            return False
        window = self._traces[-self.stable_iterations :]
        return all(trace == window[0] for trace in window)

    def observed_order(self) -> Optional[tuple]:
        """The most recent complete trace, or None."""
        return self._traces[-1] if self._traces else None

    def suggest_assignment(
        self, params: Sequence, bucket_cap_mb: float = 25.0
    ) -> Optional[List[BucketSpec]]:
        """Bucket layout matching the traced backward order.

        Returns ``None`` unless the trace is stable.  The layout packs
        parameters in *observed ready order*, so bucket 0 fills first in
        real backward passes — maximizing overlap even when model
        definition order diverges from execution order.
        """
        if not self.is_stable():
            return None
        return assignment_from_order(params, self._traces[-1], bucket_cap_mb)
