"""Table 1: categorization of distributed training solutions.

Six schemes: S̲ynchronous-update vs A̲synchronous-update,
C̲ross-iteration vs I̲ntra-iteration, D̲ata-parallel vs M̲odel-parallel.
Reproduced verbatim from the paper so the benchmark harness can print
the table alongside the measured results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class TrainingSolution:
    name: str
    synchronous: bool
    asynchronous: bool
    cross_iteration: bool
    intra_iteration: bool
    data_parallel: bool
    model_parallel: bool

    def schemes(self) -> str:
        flags = [
            ("S", self.synchronous),
            ("A", self.asynchronous),
            ("C", self.cross_iteration),
            ("I", self.intra_iteration),
            ("D", self.data_parallel),
            ("M", self.model_parallel),
        ]
        return "".join(letter for letter, present in flags if present)


# Rows exactly as in the paper's Table 1.
TRAINING_SOLUTIONS: List[TrainingSolution] = [
    TrainingSolution("PT DDP", True, False, False, True, True, False),
    TrainingSolution("PT RPC", True, True, True, True, False, True),
    TrainingSolution("TF MultiWorkerMirrored", True, False, False, True, True, False),
    TrainingSolution("TF ParameterServer", False, True, True, False, True, True),
    TrainingSolution("Mesh TensorFlow", True, False, False, True, True, True),
    TrainingSolution("GPipe", True, False, True, False, False, True),
    TrainingSolution("Horovod", True, False, False, True, True, False),
    TrainingSolution("GradientFlow", True, False, False, True, True, False),
    TrainingSolution("SlowMo", False, True, True, False, True, False),
    TrainingSolution("PipeDream", True, True, True, False, True, True),
    TrainingSolution("ZeRO", True, False, False, True, True, True),
    TrainingSolution("Parallax", True, True, False, True, True, True),
    TrainingSolution("ByteScheduler", True, False, True, True, True, False),
    TrainingSolution("TicTac", True, False, True, True, True, False),
    TrainingSolution("PACE", True, False, False, True, True, False),
]

_COLUMNS = ("S", "A", "C", "I", "D", "M")


def render_table1() -> str:
    """The paper's Table 1 as fixed-width text."""
    width = max(len(s.name) for s in TRAINING_SOLUTIONS)
    header = "Scheme".ljust(width) + "  " + "  ".join(_COLUMNS)
    lines = [header, "-" * len(header)]
    for solution in TRAINING_SOLUTIONS:
        marks = solution.schemes()
        cells = "  ".join("x" if c in marks else " " for c in _COLUMNS)
        lines.append(solution.name.ljust(width) + "  " + cells)
    return "\n".join(lines)


def solutions_supporting(scheme: str) -> List[str]:
    """Names of solutions supporting a scheme letter (S/A/C/I/D/M)."""
    if scheme not in _COLUMNS:
        raise ValueError(f"scheme must be one of {_COLUMNS}")
    return [s.name for s in TRAINING_SOLUTIONS if scheme in s.schemes()]
