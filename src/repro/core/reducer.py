"""The gradient-reduction core (the ``reducer.cpp`` analog; paper §4.2).

Responsibilities, mirroring the paper's four components:

1. **Parameter-to-bucket mapping** — flat per-bucket buffers allocated
   on the same logical device as their parameters.
2. **Autograd hooks** — one post-hook per parameter's gradient
   accumulator.  Each hook copies the fresh gradient into its bucket
   slot and decrements the bucket's pending count; the hook that drops
   a count to zero marks the bucket ready.
3. **Bucket AllReduce** — ready buckets launch *asynchronously* and
   strictly **in bucket-index order** on every rank; bucket ``i+1``
   never launches before bucket ``i`` (Fig. 3(a) caveat).  The hook
   that readies the final bucket blocks until every AllReduce finishes,
   averages, and writes gradients back (Algorithm 1, lines 17–21).
4. **Globally unused parameters** — a local bitmap records which
   parameters produced gradients; one extra AllReduce merges bitmaps so
   that parameters unused on *every* rank keep their gradients intact
   (the optimizer-regression caveat of §3.2.3).  The bitmap is kept on
   CPU and staged through a device-resident copy for backends that
   reject CPU tensors (§4.2).
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.autograd.engine import AccumulateGrad
from repro.autograd.graph import collect_participating_accumulators
from repro.autograd.tensor import Tensor
from repro.comm.process_group import ReduceOp
from repro.core.bucket import BucketSpec, validate_assignment
from repro.debug.flight_recorder import collective_context
from repro.debug.levels import DEBUG
from repro.telemetry.metrics import registry_for
from repro.telemetry.recorder import IterationRecorder
from repro.telemetry.spans import TRACER
from repro.utils.logging import logger


class ReducerError(RuntimeError):
    """Raised on inconsistent reducer state (e.g. unfinished reduction)."""


class _Bucket:
    """Runtime state for one bucket: flat buffer plus readiness counters."""

    def __init__(self, spec: BucketSpec, dtype: np.dtype):
        self.spec = spec
        self.flat = np.zeros(spec.total_elements, dtype=dtype)
        # The tensor wrapper carries the device tag that backends like
        # NCCL check; it shares storage with ``flat``.
        self.tensor = Tensor(self.flat, device=spec.device)
        self.pending = len(spec.param_indices)
        self.ready = False
        self.launched = False
        self.work = None

    def reset(self) -> None:
        self.pending = len(self.spec.param_indices)
        self.ready = False
        self.launched = False
        self.work = None


# Type of an optional communication hook: receives (process_group,
# flat_bucket_tensor, world_size) and must leave the *averaged* gradient
# in the bucket when the returned work completes.  See ``comm_hooks``.
CommHook = Callable[[object, Tensor, int], object]


class Reducer:
    """Per-rank gradient reduction engine.

    Parameters
    ----------
    params:
        The model's parameters in ``model.parameters()`` order (all of
        them, trainable, shared across iterations).
    bucket_specs:
        Deterministic assignment from :func:`compute_bucket_assignment`;
        must be identical on every rank.
    process_group:
        Any object with ``allreduce(tensor, op, async_op)`` and ``size``.
    find_unused_parameters:
        Enables the forward-graph traversal and the bitmap AllReduce.
    overlap:
        When False, ready buckets are *not* launched eagerly from hooks;
        all communication happens after the last gradient, reproducing
        the "no overlap" baselines of Fig. 6.
    comm_hook:
        Optional gradient-compression hook (paper §6.2.3).
    """

    def __init__(
        self,
        params: Sequence[Tensor],
        bucket_specs: Sequence[BucketSpec],
        process_group,
        find_unused_parameters: bool = False,
        overlap: bool = True,
        comm_hook: Optional[CommHook] = None,
        order_tracer=None,
        param_names: Optional[Sequence[str]] = None,
    ):
        self.params: List[Tensor] = list(params)
        # Human-readable names (``module.named_parameters()`` order) so
        # error paths can say *which* parameter never produced a
        # gradient, not just its index.
        self.param_names: List[str] = (
            list(param_names)
            if param_names is not None
            else [f"param{i}" for i in range(len(self.params))]
        )
        validate_assignment(bucket_specs, len(self.params))
        self.process_group = process_group
        self.world_size = process_group.size
        self.find_unused_parameters = find_unused_parameters
        self.overlap = overlap
        self.comm_hook = comm_hook
        # Optional BackwardOrderTracer recording real gradient-ready
        # order for rebucketing (paper §6.2.1).
        self.order_tracer = order_tracer

        self.buckets = [
            _Bucket(spec, self.params[spec.param_indices[0]].dtype if spec.param_indices else np.float64)
            for spec in bucket_specs
        ]
        # param index -> (bucket position, slot position)
        self._locator = {}
        for position, bucket in enumerate(self.buckets):
            for slot, param_index in enumerate(bucket.spec.param_indices):
                self._locator[param_index] = (position, slot)

        self._accumulator_to_index = {}
        self._hook_handles = []
        for index, param in enumerate(self.params):
            acc = param.accumulator()
            self._accumulator_to_index[id(acc)] = index
            handle = acc.register_post_hook(self._autograd_hook)
            self._hook_handles.append(handle)

        # Persistent across no_sync iterations (paper §3.2.4): cleared
        # only when a bitmap AllReduce consumes it.
        self._local_used = np.zeros(len(self.params), dtype=np.int32)
        # Which parameters were marked ready this iteration — the error
        # path's evidence for naming unready parameters.
        self._grad_ready = np.zeros(len(self.params), dtype=bool)

        self._expect_hooks = False
        self._next_bucket = 0
        self._buckets_finished = 0
        self._finalized = True
        self._lock = threading.Lock()

        # Introspection counters used by tests and benchmarks.
        self.iterations_synced = 0
        self.rebuilt_bucket_count = 0
        # Wall-clock phase stats for the previous synchronized
        # iteration — a real-run analog of the paper's Fig. 6 breakdown.
        self.last_iteration_stats: Dict[str, float] = {}
        # Single timing source of truth: always-on coarse phase
        # timestamps; emits spans into the global tracer when telemetry
        # is enabled (see repro.telemetry.recorder).
        self.recorder = IterationRecorder(
            rank=getattr(process_group, "global_rank", None)
        )
        # Parameters marked ready-as-unused in the last prepared backward.
        self.last_unused_parameter_count = 0

    # ------------------------------------------------------------------
    # iteration lifecycle
    # ------------------------------------------------------------------
    def prepare_for_backward(self, outputs: Sequence[Tensor]) -> None:
        """Arm the reducer for the next backward pass (Algorithm 1 line 10).

        With ``find_unused_parameters`` the autograd graph is traversed
        from ``outputs`` and parameters outside it are marked ready
        immediately, contributing zeros, so their absence cannot hang
        the bucket (Fig. 3(b)).
        """
        if not self._finalized:
            raise ReducerError(
                "Expected to have finished gradient reduction in the prior "
                "iteration before starting a new one. This usually means some "
                "parameters did not receive gradients during backward. Enable "
                "find_unused_parameters=True if your model's graph changes "
                "between iterations." + self._unready_parameter_report()
            )
        for bucket in self.buckets:
            bucket.reset()
        self._grad_ready[...] = False
        self._next_bucket = 0
        self._buckets_finished = 0
        self._finalized = False
        self._expect_hooks = True
        self.last_unused_parameter_count = 0
        self.recorder.start_iteration(self.iterations_synced)

        if self.find_unused_parameters:
            participating = collect_participating_accumulators(outputs)
            participating_ids = {id(acc) for acc in participating}
            for index, param in enumerate(self.params):
                if id(param.accumulator()) not in participating_ids:
                    self._mark_ready(index, unused=True)

    def _autograd_hook(self, accumulator: AccumulateGrad) -> None:
        """Fired by the engine after a parameter's gradient is written."""
        index = self._accumulator_to_index.get(id(accumulator))
        if index is None:  # a hook left over from a dropped parameter set
            return
        # Participation is recorded even in no_sync iterations; the next
        # bitmap AllReduce consumes the accumulated record (§3.2.4).
        self._local_used[index] = 1
        if not self._expect_hooks:
            return
        if self.order_tracer is not None:
            self.order_tracer.record(index)
        if self.recorder.t_first_grad is None:
            self.recorder.mark_first_grad()
        if TRACER.enabled:
            registry_for(self.recorder.rank).counter("hook.fire_count").add(1)
        self._mark_ready(index, unused=False)

    def unready_parameters(self) -> List[dict]:
        """Parameters still missing from the current (unfinalized)
        reduction: ``[{"index", "name", "shape"}, ...]``."""
        if self._finalized:
            return []
        return [
            {
                "index": index,
                "name": self.param_names[index],
                "shape": tuple(self.params[index].shape),
            }
            for index in range(len(self.params))
            if not self._grad_ready[index]
        ]

    def _unready_parameter_report(self) -> str:
        """Name the unready parameters — locally always, per-rank when
        ``REPRO_DEBUG`` is on and peers published their own sets."""
        unready = self.unready_parameters()
        if not unready:
            return ""
        shown = ", ".join(
            f"{entry['name']} (index {entry['index']}, shape {entry['shape']})"
            for entry in unready[:10]
        )
        if len(unready) > 10:
            shown += f", ... and {len(unready) - 10} more"
        report = (
            f" Unready parameter(s) on this rank: [{shown}] out of "
            f"{len(self.params)}."
        )
        store = getattr(self.process_group, "store", None)
        if DEBUG.level and store is not None:
            group_id = getattr(self.process_group, "_group_id", 0)
            rank = getattr(self.process_group, "global_rank", self.recorder.rank)
            store.set(
                f"reducer_unready/{group_id}/rank{rank}",
                [entry["name"] for entry in unready],
            )
            peer_lines = []
            for peer in getattr(self.process_group, "ranks", ()):
                if peer == rank:
                    continue
                names = store.try_get(f"reducer_unready/{group_id}/rank{peer}")
                if names is not None:
                    peer_lines.append(f"rank {peer}: {names}")
            if peer_lines:
                report += " Peer ranks reported: " + "; ".join(peer_lines) + "."
        return report

    def _mark_ready(self, param_index: int, unused: bool) -> None:
        self._grad_ready[param_index] = True
        position, slot = self._locator[param_index]
        bucket = self.buckets[position]
        spec = bucket.spec
        offset = spec.offsets[slot]
        size = spec.sizes[slot]
        param = self.params[param_index]
        if unused:
            # Unused parameters contribute zeros to the reduced sum.
            bucket.flat[offset : offset + size] = 0.0
            self.last_unused_parameter_count += 1
        else:
            if param.grad is None:
                raise ReducerError(
                    f"hook fired for parameter {param_index} but .grad is None"
                )
            bucket.flat[offset : offset + size] = param.grad.data.reshape(-1)
        if bucket.pending <= 0:
            raise ReducerError(
                f"bucket {spec.index} over-counted ready parameters; a "
                f"parameter was marked ready twice in one iteration"
            )
        bucket.pending -= 1
        if bucket.pending == 0:
            bucket.ready = True
            self.recorder.bucket_ready(spec.index)
            if self.overlap:
                self._launch_ready_buckets_in_order()
            self._buckets_finished += 1
            if self._buckets_finished == len(self.buckets):
                if not self.overlap:
                    self._launch_ready_buckets_in_order()
                self._finalize_backward()

    def _launch_ready_buckets_in_order(self) -> None:
        """Launch AllReduce on every ready bucket at the order frontier.

        Buckets may become ready out of order; communication still obeys
        bucket-index order so contents match across ranks (Fig. 3(a)).
        """
        while self._next_bucket < len(self.buckets):
            bucket = self.buckets[self._next_bucket]
            if not bucket.ready:
                return
            self._launch(bucket)
            self._next_bucket += 1

    def _launch(self, bucket: _Bucket) -> None:
        if bucket.launched:
            return
        bucket.launched = True
        self.recorder.bucket_launched(bucket.spec.index, bucket.flat.nbytes)
        if TRACER.enabled:
            registry_for(self.recorder.rank).counter("bucket.launches").add(1)
        logger.debug(
            "launch allreduce bucket %d (%d elements)",
            bucket.spec.index,
            bucket.spec.total_elements,
        )
        # Label the collective with its bucket so flight-recorder entries
        # read "allreduce#12 [bucket 3]" in a desync report.
        label = (
            collective_context(f"bucket {bucket.spec.index}")
            if DEBUG.level
            else contextlib.nullcontext()
        )
        with label:
            if self.comm_hook is not None:
                bucket.work = self.comm_hook(
                    self.process_group, bucket.tensor, self.world_size
                )
            else:
                bucket.work = self.process_group.allreduce(
                    bucket.tensor, ReduceOp.SUM, async_op=True
                )

    def _finalize_backward(self) -> None:
        """Wait for communication, average, and write gradients back.

        Runs inside the autograd hook that readied the final bucket
        (Algorithm 1 line 21) — the engine thread blocks here while the
        process-group worker thread drains the queued AllReduces.
        """
        self.recorder.mark_all_grads()
        globally_used = None
        if self.find_unused_parameters:
            globally_used = self._allreduce_used_bitmap()

        for bucket in self.buckets:
            if bucket.work is not None:
                bucket.work.wait()
            if self.comm_hook is None:
                # Average: the collective summed gradients across ranks.
                bucket.flat /= self.world_size
            for slot, param_index in enumerate(bucket.spec.param_indices):
                if globally_used is not None and not globally_used[param_index]:
                    # Globally unused gradients must stay intact (§3.2.3).
                    continue
                param = self.params[param_index]
                offset = bucket.spec.offsets[slot]
                size = bucket.spec.sizes[slot]
                value = bucket.flat[offset : offset + size].reshape(param.shape)
                if param.grad is None:
                    param.grad = Tensor(value.copy())
                else:
                    param.grad.data[...] = value
        self._expect_hooks = False
        self._finalized = True
        self.iterations_synced += 1
        if self.order_tracer is not None:
            # Close partial traces (some parameters may not have fired).
            self.order_tracer.end_iteration()
        self.last_iteration_stats = self.recorder.finish(
            [(bucket.spec.index, bucket.work) for bucket in self.buckets]
        )
        logger.debug(
            "iteration %d finalized: exposed comm wait %.3f ms",
            self.iterations_synced,
            self.last_iteration_stats["comm_exposed_wait"] * 1e3,
        )

    def _allreduce_used_bitmap(self) -> np.ndarray:
        """Merge per-rank usage bitmaps; returns the global bitmap.

        The CPU bitmap is staged through a tensor tagged with the first
        parameter's device when the backend rejects CPU tensors — the
        paper's ProcessGroupNCCL workaround (§4.2).
        """
        bitmap = self._local_used.astype(np.int32, copy=True)
        if getattr(self.process_group, "supports_cpu_tensors", True):
            staging = Tensor(bitmap, device="cpu")
        else:
            device = getattr(self.params[0], "device", "cpu")
            staging = Tensor(bitmap, device=device)
        label = (
            collective_context("unused-param bitmap")
            if DEBUG.level
            else contextlib.nullcontext()
        )
        with label:
            work = self.process_group.allreduce(staging, ReduceOp.SUM, async_op=True)
        work.wait()
        # The communication consumed the accumulated local record.
        self._local_used[...] = 0
        return staging.data > 0

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def set_comm_hook(self, hook: Optional[CommHook]) -> None:
        """Install or clear a gradient-compression hook (§6.2.3)."""
        self.comm_hook = hook

    def rebuild_buckets(self, bucket_specs: Sequence[BucketSpec]) -> None:
        """Swap in a new bucket layout (order-prediction support, §6.2.1)."""
        if not self._finalized:
            raise ReducerError("cannot rebuild buckets mid-iteration")
        validate_assignment(bucket_specs, len(self.params))
        dtype = self.params[0].dtype if self.params else np.float64
        self.buckets = [_Bucket(spec, dtype) for spec in bucket_specs]
        self._locator = {}
        for position, bucket in enumerate(self.buckets):
            for slot, param_index in enumerate(bucket.spec.param_indices):
                self._locator[param_index] = (position, slot)
        self.rebuilt_bucket_count += 1
        if TRACER.enabled:
            registry_for(self.recorder.rank).counter("reducer.rebuilds").add(1)

    def detach_hooks(self) -> None:
        """Remove all autograd hooks (used when tearing DDP down)."""
        for handle in self._hook_handles:
            handle()
        self._hook_handles.clear()

    @property
    def finalized(self) -> bool:
        return self._finalized
