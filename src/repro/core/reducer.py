"""The gradient-reduction core (the ``reducer.cpp`` analog; paper §4.2).

Responsibilities, mirroring the paper's four components:

1. **Parameter-to-bucket mapping** — flat per-bucket buffers allocated
   on the same logical device as their parameters.
2. **Autograd hooks** — one post-hook per parameter's gradient
   accumulator.  By default (``gradient_as_bucket_view=True``) each
   parameter's ``.grad`` is a zero-copy numpy *view* of its bucket slot:
   the autograd engine writes gradients directly into bucket memory, so
   the hook only decrements the bucket's pending count — no gather copy
   on the hot path.  With views disabled, the hook copies the fresh
   gradient into its slot (the seed data path, kept as a measurable
   baseline).  The hook that drops a count to zero marks the bucket
   ready.
3. **Bucket AllReduce** — ready buckets launch *asynchronously* and
   strictly **in bucket-index order** on every rank; bucket ``i+1``
   never launches before bucket ``i`` (Fig. 3(a) caveat).  The hook
   that readies the final bucket blocks until every AllReduce finishes,
   averages, and writes gradients back (Algorithm 1, lines 17–21).
4. **Globally unused parameters** — a local bitmap records which
   parameters produced gradients; one extra AllReduce merges bitmaps so
   that parameters unused on *every* rank keep their gradients intact
   (the optimizer-regression caveat of §3.2.3).  The bitmap is kept on
   CPU and staged through a device-resident copy for backends that
   reject CPU tensors (§4.2).
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.autograd.engine import AccumulateGrad
from repro.autograd.graph import collect_participating_accumulators
from repro.autograd.tensor import Tensor
from repro.comm.process_group import ReduceOp
from repro.core.bucket import BucketSpec, validate_assignment
from repro.debug.flight_recorder import collective_context
from repro.debug.levels import DEBUG
from repro.telemetry.health import accounting as _health
from repro.telemetry.health.events import record_event as record_health_event
from repro.telemetry.metrics import registry_for
from repro.telemetry.recorder import IterationRecorder
from repro.telemetry.spans import TRACER
from repro.utils.logging import logger


class ReducerError(RuntimeError):
    """Raised on inconsistent reducer state (e.g. unfinished reduction)."""


class _Bucket:
    """Runtime state for one bucket: flat buffer plus readiness counters."""

    def __init__(self, spec: BucketSpec, dtype: np.dtype):
        self.spec = spec
        self.flat = np.zeros(spec.total_elements, dtype=dtype)
        # The tensor wrapper carries the device tag that backends like
        # NCCL check; it shares storage with ``flat``.
        self.tensor = Tensor(self.flat, device=spec.device)
        self.pending = len(spec.param_indices)
        self.ready = False
        self.launched = False
        self.work = None

    def reset(self) -> None:
        self.pending = len(self.spec.param_indices)
        self.ready = False
        self.launched = False
        self.work = None


# Type of an optional communication hook: receives (process_group,
# flat_bucket_tensor, world_size) and must leave the *averaged* gradient
# in the bucket when the returned work completes.  See ``comm_hooks``.
CommHook = Callable[[object, Tensor, int], object]


class Reducer:
    """Per-rank gradient reduction engine.

    Parameters
    ----------
    params:
        The model's parameters in ``model.parameters()`` order (all of
        them, trainable, shared across iterations).
    bucket_specs:
        Deterministic assignment from :func:`compute_bucket_assignment`;
        must be identical on every rank.
    process_group:
        Any object with ``allreduce(tensor, op, async_op)`` and ``size``.
    find_unused_parameters:
        Enables the forward-graph traversal and the bitmap AllReduce.
    overlap:
        When False, ready buckets are *not* launched eagerly from hooks;
        all communication happens after the last gradient, reproducing
        the "no overlap" baselines of Fig. 6.
    comm_hook:
        Optional gradient-compression hook (paper §6.2.3).
    gradient_as_bucket_view:
        When True (default), install each parameter's gradient as a
        zero-copy view of its bucket slot; the autograd engine then
        writes gradients directly into bucket memory and finalize needs
        no write-back copy either.  Views are adopted lazily (a
        parameter that never produces a gradient keeps ``grad is
        None``).  False reproduces the seed copy-in/copy-out path.
    max_in_flight_buckets:
        Optional cap on concurrently outstanding bucket AllReduces:
        after launching bucket ``i``, wait for bucket ``i - cap`` before
        launching further.  None (default) leaves all buckets in flight,
        which with a multi-stream process group runs them genuinely
        concurrently.
    """

    def __init__(
        self,
        params: Sequence[Tensor],
        bucket_specs: Sequence[BucketSpec],
        process_group,
        find_unused_parameters: bool = False,
        overlap: bool = True,
        comm_hook: Optional[CommHook] = None,
        order_tracer=None,
        param_names: Optional[Sequence[str]] = None,
        gradient_as_bucket_view: bool = True,
        max_in_flight_buckets: Optional[int] = None,
    ):
        self.params: List[Tensor] = list(params)
        # Human-readable names (``module.named_parameters()`` order) so
        # error paths can say *which* parameter never produced a
        # gradient, not just its index.
        self.param_names: List[str] = (
            list(param_names)
            if param_names is not None
            else [f"param{i}" for i in range(len(self.params))]
        )
        validate_assignment(bucket_specs, len(self.params))
        self.process_group = process_group
        self.world_size = process_group.size
        self.find_unused_parameters = find_unused_parameters
        self.overlap = overlap
        self.comm_hook = comm_hook
        self.gradient_as_bucket_view = gradient_as_bucket_view
        if max_in_flight_buckets is not None and max_in_flight_buckets < 1:
            raise ValueError("max_in_flight_buckets must be >= 1 or None")
        self.max_in_flight_buckets = max_in_flight_buckets
        # Optional BackwardOrderTracer recording real gradient-ready
        # order for rebucketing (paper §6.2.1).
        self.order_tracer = order_tracer

        # Introspection counters used by tests and benchmarks.
        #: Bucket buffers allocated over this reducer's lifetime; stays
        #: flat in steady state (the zero-layout-work acceptance check).
        self.layout_allocations = 0
        #: Gradients that had to be gathered into a bucket by copy.
        self.grad_copy_count = 0
        #: Gradients that were already resident in bucket memory when
        #: their hook fired (the zero-copy fast path).
        self.zero_copy_hits = 0
        #: rebuild_buckets calls that were no-ops (identical layout).
        self.noop_rebuild_count = 0

        self._install_layout(bucket_specs)

        self._accumulator_to_index = {}
        self._hook_handles = []
        for index, param in enumerate(self.params):
            acc = param.accumulator()
            self._accumulator_to_index[id(acc)] = index
            handle = acc.register_post_hook(self._autograd_hook)
            self._hook_handles.append(handle)

        # Persistent across no_sync iterations (paper §3.2.4): cleared
        # only when a bitmap AllReduce consumes it.
        self._local_used = np.zeros(len(self.params), dtype=np.int32)
        # Which parameters were marked ready this iteration — the error
        # path's evidence for naming unready parameters.
        self._grad_ready = np.zeros(len(self.params), dtype=bool)

        self._expect_hooks = False
        self._next_bucket = 0
        self._buckets_finished = 0
        self._finalized = True
        self._lock = threading.Lock()

        self.iterations_synced = 0
        self.rebuilt_bucket_count = 0
        # Wall-clock phase stats for the previous synchronized
        # iteration — a real-run analog of the paper's Fig. 6 breakdown.
        self.last_iteration_stats: Dict[str, float] = {}
        # Single timing source of truth: always-on coarse phase
        # timestamps; emits spans into the global tracer when telemetry
        # is enabled (see repro.telemetry.recorder).
        self.recorder = IterationRecorder(
            rank=getattr(process_group, "global_rank", None)
        )
        # Parameters marked ready-as-unused in the last prepared backward.
        self.last_unused_parameter_count = 0

    # ------------------------------------------------------------------
    # layout installation
    # ------------------------------------------------------------------
    def _install_layout(self, bucket_specs: Sequence[BucketSpec]) -> None:
        """Allocate bucket buffers and (optionally) gradient views.

        In view mode every parameter gets a Tensor whose ``.data`` is a
        reshaped slice of its bucket's flat buffer; the view is handed
        to the parameter's gradient accumulator for lazy adoption, and
        any live gradient value is migrated into the new storage so a
        rebuild never loses accumulated gradients (no_sync, §3.2.4).
        """
        self._bucket_specs = list(bucket_specs)
        self.buckets = [
            _Bucket(spec, self.params[spec.param_indices[0]].dtype if spec.param_indices else np.float64)
            for spec in bucket_specs
        ]
        self.layout_allocations += len(self.buckets)
        # param index -> (bucket position, slot position)
        self._locator = {}
        for position, bucket in enumerate(self.buckets):
            for slot, param_index in enumerate(bucket.spec.param_indices):
                self._locator[param_index] = (position, slot)
        # Per-parameter gradient views into bucket storage (None when
        # views are disabled).  Stash for unused-parameter slot contents
        # that must survive the zero-fill + AllReduce round trip.
        self._grad_views: List[Optional[Tensor]] = [None] * len(self.params)
        self._unused_stash: Dict[int, np.ndarray] = {}
        if not self.gradient_as_bucket_view:
            return
        for bucket in self.buckets:
            spec = bucket.spec
            for slot, param_index in enumerate(spec.param_indices):
                param = self.params[param_index]
                offset = spec.offsets[slot]
                size = spec.sizes[slot]
                window = bucket.flat[offset : offset + size]
                view = Tensor(
                    window.reshape(param.shape),
                    device=getattr(param, "device", spec.device),
                )
                self._grad_views[param_index] = view
                if param.grad is not None and param.grad is not view:
                    # Migrate the live gradient into the new storage.
                    view.data[...] = param.grad.data
                    param.grad = view
                param.accumulator().set_grad_view(view)

    # ------------------------------------------------------------------
    # iteration lifecycle
    # ------------------------------------------------------------------
    def prepare_for_backward(self, outputs: Sequence[Tensor]) -> None:
        """Arm the reducer for the next backward pass (Algorithm 1 line 10).

        With ``find_unused_parameters`` the autograd graph is traversed
        from ``outputs`` and parameters outside it are marked ready
        immediately, contributing zeros, so their absence cannot hang
        the bucket (Fig. 3(b)).
        """
        if not self._finalized:
            raise ReducerError(
                "Expected to have finished gradient reduction in the prior "
                "iteration before starting a new one. This usually means some "
                "parameters did not receive gradients during backward. Enable "
                "find_unused_parameters=True if your model's graph changes "
                "between iterations." + self._unready_parameter_report()
            )
        for bucket in self.buckets:
            bucket.reset()
        self._grad_ready[...] = False
        self._next_bucket = 0
        self._buckets_finished = 0
        self._finalized = False
        self._expect_hooks = True
        self.last_unused_parameter_count = 0
        self.recorder.start_iteration(self.iterations_synced)

        if self.find_unused_parameters:
            participating = collect_participating_accumulators(outputs)
            participating_ids = {id(acc) for acc in participating}
            for index, param in enumerate(self.params):
                if id(param.accumulator()) not in participating_ids:
                    self._mark_ready(index, unused=True)

    def _autograd_hook(self, accumulator: AccumulateGrad) -> None:
        """Fired by the engine after a parameter's gradient is written."""
        index = self._accumulator_to_index.get(id(accumulator))
        if index is None:  # a hook left over from a dropped parameter set
            return
        # Participation is recorded even in no_sync iterations; the next
        # bitmap AllReduce consumes the accumulated record (§3.2.4).
        self._local_used[index] = 1
        if not self._expect_hooks:
            return
        if self.order_tracer is not None:
            self.order_tracer.record(index)
        if self.recorder.t_first_grad is None:
            self.recorder.mark_first_grad()
        if TRACER.enabled:
            registry_for(self.recorder.rank).counter("hook.fire_count").add(1)
        self._mark_ready(index, unused=False)

    def unready_parameters(self) -> List[dict]:
        """Parameters still missing from the current (unfinalized)
        reduction: ``[{"index", "name", "shape"}, ...]``."""
        if self._finalized:
            return []
        return [
            {
                "index": index,
                "name": self.param_names[index],
                "shape": tuple(self.params[index].shape),
            }
            for index in range(len(self.params))
            if not self._grad_ready[index]
        ]

    def _unready_parameter_report(self) -> str:
        """Name the unready parameters — locally always, per-rank when
        ``REPRO_DEBUG`` is on and peers published their own sets."""
        unready = self.unready_parameters()
        if not unready:
            return ""
        shown = ", ".join(
            f"{entry['name']} (index {entry['index']}, shape {entry['shape']})"
            for entry in unready[:10]
        )
        if len(unready) > 10:
            shown += f", ... and {len(unready) - 10} more"
        report = (
            f" Unready parameter(s) on this rank: [{shown}] out of "
            f"{len(self.params)}."
        )
        store = getattr(self.process_group, "store", None)
        if DEBUG.level and store is not None:
            group_id = getattr(self.process_group, "_group_id", 0)
            rank = getattr(self.process_group, "global_rank", self.recorder.rank)
            store.set(
                f"reducer_unready/{group_id}/rank{rank}",
                [entry["name"] for entry in unready],
            )
            peer_lines = []
            for peer in getattr(self.process_group, "ranks", ()):
                if peer == rank:
                    continue
                names = store.try_get(f"reducer_unready/{group_id}/rank{peer}")
                if names is not None:
                    peer_lines.append(f"rank {peer}: {names}")
            if peer_lines:
                report += " Peer ranks reported: " + "; ".join(peer_lines) + "."
        return report

    def _mark_ready(self, param_index: int, unused: bool) -> None:
        self._grad_ready[param_index] = True
        position, slot = self._locator[param_index]
        bucket = self.buckets[position]
        spec = bucket.spec
        offset = spec.offsets[slot]
        size = spec.sizes[slot]
        param = self.params[param_index]
        view = self._grad_views[param_index]
        if unused:
            # Unused parameters contribute zeros to the reduced sum.  If
            # the parameter's gradient aliases the slot (an accumulated
            # value from earlier iterations lives there), stash it so
            # finalize can restore it when the parameter turns out to be
            # globally unused ("gradients stay intact", §3.2.3).
            if view is not None and param.grad is view:
                self._unused_stash[param_index] = bucket.flat[
                    offset : offset + size
                ].copy()
            bucket.flat[offset : offset + size] = 0.0
            self.last_unused_parameter_count += 1
        else:
            if param.grad is None:
                raise ReducerError(
                    f"hook fired for parameter {param_index} but .grad is None"
                )
            if view is not None and param.grad is view:
                # Zero-copy: the engine already wrote the gradient into
                # bucket memory through the installed view.
                self.zero_copy_hits += 1
            else:
                bucket.flat[offset : offset + size] = param.grad.data.reshape(-1)
                self.grad_copy_count += 1
        if bucket.pending <= 0:
            raise ReducerError(
                f"bucket {spec.index} over-counted ready parameters; a "
                f"parameter was marked ready twice in one iteration"
            )
        bucket.pending -= 1
        if bucket.pending == 0:
            bucket.ready = True
            self.recorder.bucket_ready(spec.index)
            if self.overlap:
                self._launch_ready_buckets_in_order()
            self._buckets_finished += 1
            if self._buckets_finished == len(self.buckets):
                if not self.overlap:
                    self._launch_ready_buckets_in_order()
                self._finalize_backward()

    def _launch_ready_buckets_in_order(self) -> None:
        """Launch AllReduce on every ready bucket at the order frontier.

        Buckets may become ready out of order; communication still obeys
        bucket-index order so contents match across ranks (Fig. 3(a)).
        """
        while self._next_bucket < len(self.buckets):
            bucket = self.buckets[self._next_bucket]
            if not bucket.ready:
                return
            self._launch(bucket)
            self._next_bucket += 1
            if self.max_in_flight_buckets is not None:
                # Throttle: block on the bucket that fell out of the
                # in-flight window before launching any further.
                trailing = self._next_bucket - 1 - self.max_in_flight_buckets
                if trailing >= 0 and self.buckets[trailing].work is not None:
                    self.buckets[trailing].work.wait()

    def _launch(self, bucket: _Bucket) -> None:
        if bucket.launched:
            return
        bucket.launched = True
        self.recorder.bucket_launched(bucket.spec.index, bucket.flat.nbytes)
        if TRACER.enabled:
            registry_for(self.recorder.rank).counter("bucket.launches").add(1)
        logger.debug(
            "launch allreduce bucket %d (%d elements)",
            bucket.spec.index,
            bucket.spec.total_elements,
        )
        # Label the collective with its bucket so flight-recorder entries
        # read "allreduce#12 [bucket 3]" in a desync report.
        label = (
            collective_context(f"bucket {bucket.spec.index}")
            if DEBUG.level
            else contextlib.nullcontext()
        )
        with label:
            if self.comm_hook is not None:
                bucket.work = self.comm_hook(
                    self.process_group, bucket.tensor, self.world_size
                )
            else:
                bucket.work = self.process_group.allreduce(
                    bucket.tensor, ReduceOp.SUM, async_op=True
                )
        # Tag the collective with its bucket so comm spans and flight
        # records attribute to a reducer bucket in the merged timeline.
        meta = getattr(bucket.work, "meta", None)
        if meta is not None:
            meta.setdefault("bucket", bucket.spec.index)
        if _health.collecting_enabled():
            record_health_event(
                self.recorder.rank,
                "bucket_launch",
                iteration=self.recorder.iteration,
                bucket=bucket.spec.index,
                seq=(meta or {}).get("seq"),
                group=(meta or {}).get("group"),
                nbytes=bucket.flat.nbytes,
            )

    def _finalize_backward(self) -> None:
        """Wait for communication, average, and write gradients back.

        Runs inside the autograd hook that readied the final bucket
        (Algorithm 1 line 21) — the engine thread blocks here while the
        process-group worker thread drains the queued AllReduces.
        """
        self.recorder.mark_all_grads()
        globally_used = None
        if self.find_unused_parameters:
            globally_used = self._allreduce_used_bitmap()

        for bucket in self.buckets:
            if bucket.work is not None:
                bucket.work.wait()
            if self.comm_hook is None:
                # Average: the collective summed gradients across ranks.
                bucket.flat /= self.world_size
            for slot, param_index in enumerate(bucket.spec.param_indices):
                param = self.params[param_index]
                view = self._grad_views[param_index]
                aliased = view is not None and param.grad is view
                offset = bucket.spec.offsets[slot]
                size = bucket.spec.sizes[slot]
                if globally_used is not None and not globally_used[param_index]:
                    # Globally unused gradients must stay intact (§3.2.3):
                    # a grad aliasing the (zeroed + reduced) slot gets its
                    # stashed value back; detached grads were never touched.
                    if aliased and param_index in self._unused_stash:
                        bucket.flat[offset : offset + size] = self._unused_stash[
                            param_index
                        ]
                    continue
                if aliased:
                    # Zero-copy: the averaged result is already visible
                    # through the view; nothing to write back.
                    continue
                value = bucket.flat[offset : offset + size].reshape(param.shape)
                if param.grad is None:
                    if view is not None:
                        # Adopt the view — the value already lives there.
                        param.grad = view
                    else:
                        param.grad = Tensor(value.copy())
                else:
                    param.grad.data[...] = value
        self._unused_stash.clear()
        self._expect_hooks = False
        self._finalized = True
        self.iterations_synced += 1
        if self.order_tracer is not None:
            # Close partial traces (some parameters may not have fired).
            self.order_tracer.end_iteration()
        self.last_iteration_stats = self.recorder.finish(
            [(bucket.spec.index, bucket.work) for bucket in self.buckets]
        )
        logger.debug(
            "iteration %d finalized: exposed comm wait %.3f ms",
            self.iterations_synced,
            self.last_iteration_stats["comm_exposed_wait"] * 1e3,
        )

    def _allreduce_used_bitmap(self) -> np.ndarray:
        """Merge per-rank usage bitmaps; returns the global bitmap.

        The CPU bitmap is staged through a tensor tagged with the first
        parameter's device when the backend rejects CPU tensors — the
        paper's ProcessGroupNCCL workaround (§4.2).
        """
        bitmap = self._local_used.astype(np.int32, copy=True)
        if getattr(self.process_group, "supports_cpu_tensors", True):
            staging = Tensor(bitmap, device="cpu")
        else:
            device = getattr(self.params[0], "device", "cpu")
            staging = Tensor(bitmap, device=device)
        label = (
            collective_context("unused-param bitmap")
            if DEBUG.level
            else contextlib.nullcontext()
        )
        with label:
            work = self.process_group.allreduce(staging, ReduceOp.SUM, async_op=True)
        work.wait()
        # The communication consumed the accumulated local record.
        self._local_used[...] = 0
        return staging.data > 0

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def set_comm_hook(self, hook: Optional[CommHook]) -> None:
        """Install or clear a gradient-compression hook (§6.2.3)."""
        self.comm_hook = hook

    def rebuild_buckets(self, bucket_specs: Sequence[BucketSpec]) -> None:
        """Swap in a new bucket layout (order-prediction support, §6.2.1).

        Rebuilding with a layout identical to the current one is a no-op
        (no reallocation, no view churn) — the steady state of PyTorch's
        ``Reducer._rebuild_buckets``, which fires at most once per
        training run unless the graph actually changes.
        """
        if not self._finalized:
            raise ReducerError("cannot rebuild buckets mid-iteration")
        validate_assignment(bucket_specs, len(self.params))
        self.rebuilt_bucket_count += 1
        if list(bucket_specs) == self._bucket_specs:
            # Identical layout: keep the live buffers and views.
            self.noop_rebuild_count += 1
            return
        self._install_layout(bucket_specs)
        if TRACER.enabled:
            registry_for(self.recorder.rank).counter("reducer.rebuilds").add(1)

    def detach_hooks(self) -> None:
        """Remove all autograd hooks and gradient views (DDP teardown).

        Gradients that currently alias bucket memory are detached into
        private copies so the module remains usable (and its gradients
        mutable) after the reducer — and its buffers — are dropped.
        """
        for handle in self._hook_handles:
            handle()
        self._hook_handles.clear()
        for index, param in enumerate(self.params):
            view = self._grad_views[index]
            if view is None:
                continue
            if param.grad is view:
                param.grad = Tensor(view.data.copy(), device=view.device)
            param.accumulator().set_grad_view(None)
        self._grad_views = [None] * len(self.params)

    @property
    def finalized(self) -> bool:
        return self._finalized
