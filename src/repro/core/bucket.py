"""Parameter-to-bucket assignment (paper §3.2.2–§3.2.3, §4.2).

DDP communicates gradients in *buckets*: flat buffers that coalesce many
small gradients into one AllReduce.  The assignment rules reproduced
here:

* Parameters are allocated to buckets in the **reverse** order of
  ``model.parameters()``, the paper's approximation of gradient-ready
  order in the backward pass.
* A bucket closes when adding the next parameter would exceed
  ``bucket_cap_bytes`` (the ``bucket_cap_mb`` knob, default 25 MB).  A
  single parameter larger than the cap gets a bucket of its own.
* All parameters in a bucket share a device and dtype ("buckets are
  always created on the same device as the parameters"); a change of
  either closes the current bucket.
* An optional smaller first-bucket cap lets communication start earlier
  (PyTorch uses 1 MB for the first bucket).
* The assignment is a pure function of (parameter shapes, devices,
  dtypes, caps) — identical on every rank, which is what keeps AllReduce
  contents aligned across processes (Fig. 3(a) caveat).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.utils.units import MB


@dataclass(frozen=True)
class BucketSpec:
    """One bucket's layout.

    ``param_indices`` are indices into the model's parameter list, in
    the order their gradients occupy the flat buffer.  ``offsets[i]`` is
    where parameter ``param_indices[i]`` starts, in elements.
    """

    index: int
    param_indices: tuple
    offsets: tuple
    sizes: tuple
    device: str
    dtype: str

    @property
    def total_elements(self) -> int:
        return sum(self.sizes)

    def total_bytes(self, element_size: int = 8) -> int:
        return self.total_elements * element_size

    def offset_of(self, param_index: int) -> int:
        return self.offsets[self.param_indices.index(param_index)]


def compute_bucket_assignment(
    params: Sequence,
    bucket_cap_bytes: int = 25 * MB,
    first_bucket_cap_bytes: int | None = None,
) -> List[BucketSpec]:
    """Assign ``params`` (in ``model.parameters()`` order) to buckets.

    Returns bucket specs ordered by expected readiness: bucket 0 holds
    the parameters *last* in the model, whose gradients the backward
    pass produces first.  Reduction must be launched in this order on
    every rank (paper §3.2.3).
    """
    if bucket_cap_bytes <= 0:
        # The 0 MB setting of the paper's Fig. 7/8: every gradient is
        # communicated on its own.
        bucket_cap_bytes = 1  # any positive parameter overflows it

    buckets: List[BucketSpec] = []
    current: List[int] = []
    current_bytes = 0
    current_key: tuple | None = None
    cap = first_bucket_cap_bytes if first_bucket_cap_bytes is not None else bucket_cap_bytes

    indexed = list(enumerate(params))

    def flush() -> None:
        nonlocal current, current_bytes, cap
        if not current:
            return
        sizes = tuple(params[i].numel() for i in current)
        offsets = []
        offset = 0
        for size in sizes:
            offsets.append(offset)
            offset += size
        device, dtype = current_key
        buckets.append(
            BucketSpec(
                index=len(buckets),
                param_indices=tuple(current),
                offsets=tuple(offsets),
                sizes=sizes,
                device=device,
                dtype=dtype,
            )
        )
        current = []
        current_bytes = 0
        cap = bucket_cap_bytes

    for param_index, param in reversed(indexed):
        key = (getattr(param, "device", "cpu"), str(param.dtype))
        nbytes = param.numel() * param.element_size()
        if current and (key != current_key or current_bytes + nbytes > cap):
            flush()
        current_key = key
        current.append(param_index)
        current_bytes += nbytes
    flush()
    return buckets


def layout_key(
    params: Sequence,
    bucket_cap_bytes: int,
    first_bucket_cap_bytes: int | None,
) -> tuple:
    """Cache key for a bucket layout.

    The assignment is a pure function of (shape, device, dtype) per
    parameter plus the caps, so two models with identical parameter
    signatures share one layout.  Parameter *values* are irrelevant.
    """
    return (
        tuple(
            (tuple(p.shape), getattr(p, "device", "cpu"), str(p.dtype))
            for p in params
        ),
        int(bucket_cap_bytes),
        None if first_bucket_cap_bytes is None else int(first_bucket_cap_bytes),
    )


class BucketLayoutCache:
    """Memoizes :func:`compute_bucket_assignment` across iterations.

    The analog of PyTorch's ``Reducer._rebuild_buckets`` steady state:
    after the first iteration, the layout is a lookup, not a
    recomputation.  A graph change (different parameter shapes/devices/
    dtypes or caps) misses the cache and recomputes; :meth:`invalidate`
    drops everything (used when a rebuild must be forced).

    ``BucketSpec`` is a frozen dataclass, so cached specs are safely
    shared between reducers.  Not thread-safe for concurrent mutation;
    DDP constructs and rebuilds on a single thread per rank, and the
    default instance is per-process.
    """

    def __init__(self) -> None:
        self._specs: Dict[tuple, List[BucketSpec]] = {}
        self.hits = 0
        self.misses = 0

    def get(
        self,
        params: Sequence,
        bucket_cap_bytes: int = 25 * MB,
        first_bucket_cap_bytes: int | None = None,
    ) -> List[BucketSpec]:
        key = layout_key(params, bucket_cap_bytes, first_bucket_cap_bytes)
        specs = self._specs.get(key)
        if specs is None:
            self.misses += 1
            specs = compute_bucket_assignment(
                params, bucket_cap_bytes, first_bucket_cap_bytes
            )
            self._specs[key] = specs
        else:
            self.hits += 1
        return specs

    def invalidate(self) -> None:
        """Drop every cached layout (e.g. to force recomputation)."""
        self._specs.clear()

    def __len__(self) -> int:
        return len(self._specs)

    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses, "entries": len(self)}


#: Process-wide layout cache used by :func:`cached_bucket_assignment`.
GLOBAL_LAYOUT_CACHE = BucketLayoutCache()


def cached_bucket_assignment(
    params: Sequence,
    bucket_cap_bytes: int = 25 * MB,
    first_bucket_cap_bytes: int | None = None,
    cache: BucketLayoutCache | None = None,
) -> List[BucketSpec]:
    """Memoized :func:`compute_bucket_assignment` (see BucketLayoutCache)."""
    cache = cache if cache is not None else GLOBAL_LAYOUT_CACHE
    return cache.get(params, bucket_cap_bytes, first_bucket_cap_bytes)


def describe_assignment(buckets: Sequence[BucketSpec]) -> str:
    """Human-readable bucket table for logging and docs."""
    lines = ["bucket  params  elements  device  dtype"]
    for bucket in buckets:
        lines.append(
            f"{bucket.index:>6}  {len(bucket.param_indices):>6}  "
            f"{bucket.total_elements:>8}  {bucket.device:>6}  {bucket.dtype}"
        )
    return "\n".join(lines)


def validate_assignment(buckets: Sequence[BucketSpec], num_params: int) -> None:
    """Raise if the assignment is not a partition of all parameters."""
    seen: Dict[int, int] = {}
    for bucket in buckets:
        if len(bucket.param_indices) != len(bucket.offsets):
            raise ValueError(f"bucket {bucket.index} has inconsistent layout")
        for param_index in bucket.param_indices:
            if param_index in seen:
                raise ValueError(
                    f"parameter {param_index} assigned to buckets "
                    f"{seen[param_index]} and {bucket.index}"
                )
            seen[param_index] = bucket.index
    missing = set(range(num_params)) - set(seen)
    if missing:
        raise ValueError(f"parameters never bucketed: {sorted(missing)}")
