"""``DistributedDataParallel``: the user-facing module (paper §3.1, §4.1).

Non-intrusive: wrap the local model and keep the training loop
unchanged::

    net = nn.Linear(10, 10)
    net = DistributedDataParallel(net)         # the only changed line
    opt = optim.SGD(net.parameters(), lr=0.01)

    out = net(inp)                             # forward (interception)
    loss_fn(out, exp).backward()               # hooks reduce gradients
    opt.step()                                 # identical on every rank

Interceptive: the constructor inspects the model (broadcasts state,
installs hooks); ``forward`` wraps the local model's forward (buffer
broadcast, unused-parameter discovery); autograd hooks drive bucketed,
overlapped AllReduce during backward.
"""

from __future__ import annotations

import contextlib
from typing import Optional

from repro.autograd.tensor import Tensor
from repro.comm.distributed import get_context
from repro.core.bucket import cached_bucket_assignment
from repro.core.reducer import CommHook, Reducer
from repro.debug.flight_recorder import collective_context
from repro.debug.levels import DEBUG, DETAIL, INFO, debug_level_name
from repro.nn.module import Module
from repro.telemetry import spans as _spans
from repro.utils.units import MB


class DistributedDataParallel(Module):
    """Data parallel training wrapper, mathematically equivalent to
    local training (identical start state + identical averaged
    gradients each iteration ⇒ lockstep replicas; paper §3).

    Parameters
    ----------
    module:
        The local model.  All replicas must construct it with identical
        parameter values *or* rely on the constructor broadcast, which
        overwrites every rank with rank 0's state.
    process_group:
        Group to AllReduce over; defaults to the rank's default group.
    bucket_cap_mb:
        Bucket size knob (default 25 MB, the paper's default).  ``0``
        communicates each gradient individually (Fig. 7/8 baseline).
    find_unused_parameters:
        Traverse the autograd graph each forward to proactively mark
        absent parameters ready (required for models whose graph varies
        per iteration; costs one extra bitmap AllReduce).
    broadcast_buffers:
        Broadcast model buffers (e.g. BatchNorm running stats) from
        rank 0 before each synchronized forward (paper §4.1).
    overlap:
        Launch bucket AllReduce eagerly from hooks (True, the paper's
        design) or only after the full backward (False; the Fig. 6
        "no overlap" baseline).
    first_bucket_cap_mb:
        Optional smaller cap for the first bucket so communication can
        start earlier.
    gradient_as_bucket_view:
        When True (default), parameters' ``.grad`` tensors are zero-copy
        views of the reducer's flat bucket buffers: backward writes
        gradients directly into communication memory and no gather or
        write-back copies happen on the hot path.  Set False to get the
        seed copy-in/copy-out path (same numerics, more memory traffic).
    max_in_flight_buckets:
        Optional cap on concurrently outstanding bucket AllReduces (see
        :class:`~repro.core.reducer.Reducer`); pair with a process group
        constructed with ``num_streams > 1`` to actually run several
        buckets' collectives concurrently.
    autotune:
        Attach a :class:`repro.autotune.Autotuner` that retunes
        ``bucket_cap_mb`` / ``chunk_bytes`` / ``num_streams`` / the
        collective algorithm (and, opted in, the comm hook) live from
        measured iteration times.  Every rank must pass the same value
        — the tuner issues one tiny agreement collective per window.
        See ``docs/autotuning.md``.
    autotune_options:
        Keyword options forwarded to the :class:`~repro.autotune.Autotuner`
        constructor (``window_iters``, ``tune_comm_hook``, ``seed``, ...);
        must be identical on every rank.
    """

    def __init__(
        self,
        module: Module,
        process_group=None,
        bucket_cap_mb: float = 25.0,
        find_unused_parameters: bool = False,
        broadcast_buffers: bool = True,
        overlap: bool = True,
        comm_hook: Optional[CommHook] = None,
        first_bucket_cap_mb: Optional[float] = None,
        trace_backward_order: bool = False,
        rebucket_after_iterations: int = 5,
        gradient_as_bucket_view: bool = True,
        max_in_flight_buckets: Optional[int] = None,
        autotune: bool = False,
        autotune_options: Optional[dict] = None,
    ):
        super().__init__()
        self.module = module
        if process_group is None:
            ctx = get_context()
            if ctx.default_group is None:
                raise RuntimeError(
                    "no default process group; call init_process_group() first "
                    "or pass process_group="
                )
            process_group = ctx.default_group
        self.process_group = process_group
        self.broadcast_buffers = broadcast_buffers
        self.find_unused_parameters = find_unused_parameters
        self.bucket_cap_mb = bucket_cap_mb

        self._params = list(module.parameters())
        if not self._params:
            raise ValueError("DistributedDataParallel requires a model with parameters")
        self._param_names = [name for name, _ in module.named_parameters()]

        # (0) REPRO_DEBUG=INFO: verify every replica wrapped the same
        # architecture *before* broadcasting, so a rank that built a
        # different model fails with a named parameter diff instead of a
        # shape error (or silent corruption) deep inside the broadcast.
        if DEBUG.level >= INFO:
            self._verify_replica_structure()

        # (1) Replicas must start from identical state: broadcast
        # parameters and buffers from rank 0 (Algorithm 1 lines 2-3).
        self._broadcast_module_state()

        # (0b) REPRO_DEBUG=DETAIL: after the broadcast every replica must
        # hold bit-identical parameter values; checksum and compare.
        if DEBUG.level >= DETAIL:
            self._verify_replica_values()

        # (2) Bucket assignment in reverse parameters() order.  The
        # layout is memoized process-wide: re-wrapping a model with the
        # same parameter signature and caps reuses the cached specs.
        bucket_specs = cached_bucket_assignment(
            self._params,
            bucket_cap_bytes=int(bucket_cap_mb * MB),
            first_bucket_cap_bytes=(
                int(first_bucket_cap_mb * MB) if first_bucket_cap_mb is not None else None
            ),
        )

        # (3) The reducer installs one autograd hook per parameter.
        tracer = None
        if trace_backward_order:
            from repro.core.order_prediction import BackwardOrderTracer

            tracer = BackwardOrderTracer(
                len(self._params), stable_iterations=min(3, rebucket_after_iterations)
            )
        self.reducer = Reducer(
            self._params,
            bucket_specs,
            process_group,
            find_unused_parameters=find_unused_parameters,
            overlap=overlap,
            comm_hook=comm_hook,
            order_tracer=tracer,
            param_names=self._param_names,
            gradient_as_bucket_view=gradient_as_bucket_view,
            max_in_flight_buckets=max_in_flight_buckets,
        )
        self._rebucket_after = rebucket_after_iterations
        self._rebucket_done = not trace_backward_order

        self._autotuner = None
        if autotune:
            from repro.autotune.service import Autotuner

            self._autotuner = Autotuner(self, **(autotune_options or {}))

        self._sync_enabled = True
        # Whether gradients were reduced in the previous backward, which
        # decides if buffers must be re-broadcast (paper §4.1).
        self._did_sync_last_backward = False

    # ------------------------------------------------------------------
    def _broadcast_module_state(self) -> None:
        label = (
            collective_context("ddp init broadcast")
            if DEBUG.level
            else contextlib.nullcontext()
        )
        with label:
            for param in self._params:
                self.process_group.broadcast(param, src=0)
            for buffer in self.module.buffers():
                self.process_group.broadcast(buffer, src=0)

    # ------------------------------------------------------------------
    # REPRO_DEBUG replica consistency checks (TORCH_DISTRIBUTED_DEBUG
    # analog): exchange model fingerprints through the rendezvous store
    # and diff against the group leader, naming the offending parameter.
    # ------------------------------------------------------------------
    def _debug_exchange(self, kind: str, payload):
        """Publish ``payload`` and return the group leader's copy, or
        ``None`` when the group has no store (e.g. test fakes)."""
        group = self.process_group
        store = getattr(group, "store", None)
        ranks = getattr(group, "ranks", None)
        if store is None or not ranks:
            return None
        gid = getattr(group, "_group_id", "pg")
        my_rank = group.global_rank
        # Per-rank construction counter aligns the nth DDP wrap on every
        # rank, so several models per run don't cross wires.
        nth = store.add(f"ddpchk/{gid}/{kind}/count/rank{my_rank}", 1)
        key = f"ddpchk/{gid}/{kind}/{nth}"
        store.set(f"{key}/rank{my_rank}", payload)
        leader = ranks[0]
        if my_rank == leader:
            return payload
        return store.get(f"{key}/rank{leader}", timeout=group.timeout)

    def _verify_replica_structure(self) -> None:
        mine = [
            {
                "name": name,
                "shape": tuple(param.shape),
                "dtype": str(param.data.dtype),
            }
            for name, param in zip(self._param_names, self._params)
        ]
        leaders = self._debug_exchange("struct", mine)
        if leaders is None or leaders == mine:
            return
        rank = self.process_group.global_rank
        leader = self.process_group.ranks[0]
        problems = []
        if len(mine) != len(leaders):
            problems.append(
                f"parameter count differs: rank {rank} has {len(mine)}, "
                f"rank {leader} has {len(leaders)}"
            )
        for ours, theirs in zip(mine, leaders):
            if ours != theirs:
                problems.append(
                    f"{ours['name']}: rank {rank} has "
                    f"{ours['shape']}/{ours['dtype']}, rank {leader} has "
                    f"{theirs['shape']}/{theirs['dtype']} ({theirs['name']})"
                )
        raise RuntimeError(
            f"DDP replica structure mismatch (REPRO_DEBUG="
            f"{debug_level_name()}): rank {rank} wrapped a different model "
            f"than rank {leader}:\n  " + "\n  ".join(problems[:10])
        )

    def _verify_replica_values(self) -> None:
        mine = [float(param.data.sum()) for param in self._params]
        leaders = self._debug_exchange("values", mine)
        if leaders is None:
            return
        bad = [
            f"{self._param_names[i]}: checksum {ours!r} != leader's {theirs!r}"
            for i, (ours, theirs) in enumerate(zip(mine, leaders))
            if ours != theirs
        ]
        if bad:
            rank = self.process_group.global_rank
            raise RuntimeError(
                f"DDP replica value mismatch after state broadcast "
                f"(REPRO_DEBUG={debug_level_name()}) on rank {rank}:\n  "
                + "\n  ".join(bad[:10])
            )

    def _broadcast_buffers_now(self) -> None:
        for buffer in self.module.buffers():
            self.process_group.broadcast(buffer, src=0)

    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def no_sync(self):
        """Skip gradient synchronization inside the block (paper §3.2.4).

        Gradients accumulate locally; the first backward outside the
        block reduces the accumulated values, and locally-recorded
        parameter usage keeps accumulating in the bitmap meanwhile.
        """
        previous = self._sync_enabled
        self._sync_enabled = False
        try:
            yield
        finally:
            self._sync_enabled = previous

    @property
    def will_sync(self) -> bool:
        return self._sync_enabled

    def _maybe_rebucket_from_trace(self) -> None:
        """Backward-order prediction (paper §6.2.1): once enough stable
        traces exist, rank 0 broadcasts its observed order (the authority
        strategy of §6.2.2) and every rank rebuilds identical buckets."""
        import numpy as np

        from repro.core.order_prediction import assignment_from_order

        tracer = self.reducer.order_tracer
        order = np.full(len(self._params), -1, dtype=np.int64)
        if self.process_group.group_rank == 0 and tracer.is_stable():
            observed = list(tracer.observed_order())
            observed += [i for i in range(len(self._params)) if i not in set(observed)]
            order[...] = observed
        self.process_group.broadcast(order, src=0)
        self._rebucket_done = True
        if order[0] < 0:
            # Rank 0's traces disagreed across iterations (a dynamic
            # graph); rebucketing would chase noise, so keep the
            # reverse-definition layout.
            return
        specs = assignment_from_order(
            self._params, [int(i) for i in order], self.bucket_cap_mb
        )
        self.reducer.rebuild_buckets(specs)

    def forward(self, *inputs, **kwargs):
        if self._sync_enabled:
            # Autotune boundary: the reducer is finalized and all Work
            # waited, so config changes (relayouts, stream resizes) are
            # safe; runs before any of this iteration's collectives so
            # every rank applies them at the same sequence point.
            if self._autotuner is not None:
                self._autotuner.on_iteration()
            if (
                not self._rebucket_done
                and self.reducer.iterations_synced >= self._rebucket_after
            ):
                self._maybe_rebucket_from_trace()
            # Buffers changed since the last synchronized iteration must
            # be re-aligned to rank 0 before this forward (§4.1).
            if self.broadcast_buffers and any(True for _ in self.module.buffers()):
                self._broadcast_buffers_now()
        with _spans.span(
            "ddp.forward",
            iteration=self.reducer.iterations_synced,
            sync=self._sync_enabled,
        ):
            out = self.module(*inputs, **kwargs)
        if self._sync_enabled:
            self.reducer.prepare_for_backward(_flatten_outputs(out))
            self._did_sync_last_backward = True
        else:
            self._did_sync_last_backward = False
        return out

    # ------------------------------------------------------------------
    # transparency: delegate common Module surfaces to the wrapped model
    # ------------------------------------------------------------------
    def state_dict(self):
        return self.module.state_dict()

    def load_state_dict(self, state) -> None:
        self.module.load_state_dict(state)

    def train(self, mode: bool = True):
        super().train(mode)
        return self

    def register_comm_hook(self, hook: Optional[CommHook]) -> None:
        """Install a gradient-compression communication hook (§6.2.3)."""
        self.reducer.set_comm_hook(hook)

    def set_bucket_cap_mb(
        self, bucket_cap_mb: float, first_bucket_cap_mb: Optional[float] = None
    ) -> None:
        """Relayout gradient buckets to a new cap, live.

        Goes through the no-op-aware ``rebuild_buckets`` (an unchanged
        layout keeps the existing buffers; a changed one migrates live
        gradient values into the new views).  **Collective discipline**:
        every rank must call this between iterations at the same point
        — the bucket layout defines the AllReduce sequence.  This is
        the autotuner's relayout entry point.
        """
        specs = cached_bucket_assignment(
            self._params,
            bucket_cap_bytes=int(bucket_cap_mb * MB),
            first_bucket_cap_bytes=(
                int(first_bucket_cap_mb * MB)
                if first_bucket_cap_mb is not None
                else None
            ),
        )
        self.reducer.rebuild_buckets(specs)
        self.bucket_cap_mb = bucket_cap_mb

    @property
    def autotuner(self):
        """The attached :class:`~repro.autotune.Autotuner` (or None)."""
        return self._autotuner

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def ddp_stats(self) -> dict:
        """Iteration statistics report — the analog of PyTorch DDP's
        ``get_ddp_logging_data()``.

        Always available (the reducer's coarse phase clock stays on even
        with telemetry disabled).  Per-bucket AllReduce latencies and the
        overlap ratio describe the *last synchronized* backward:

        * ``bucket_sizes_bytes`` / ``bucket_param_indices`` — the live
          bucket layout (reflects any order-prediction rebuild).
        * ``unused_parameter_count`` — parameters marked ready-as-unused
          in the last prepared backward (0 unless
          ``find_unused_parameters`` found absentees).
        * ``comm_compute_overlap_ratio`` — fraction of total bucket
          AllReduce wall time hidden inside the backward-compute window
          (1.0 = fully overlapped, 0.0 = fully exposed; paper Fig. 4).
        * ``per_bucket_allreduce_latency_s`` — measured execution time
          of each bucket's collective on the communication worker.
        """
        reducer = self.reducer
        detail = reducer.recorder.last_detail
        bucket_latencies = {
            entry["bucket"]: entry["allreduce_latency_s"]
            for entry in detail.get("buckets", ())
        }
        return {
            "world_size": self.process_group.size,
            "rank": self.process_group.group_rank,
            "backend": self.process_group.backend,
            "bucket_cap_mb": self.bucket_cap_mb,
            "num_buckets": len(reducer.buckets),
            "bucket_sizes_bytes": [b.flat.nbytes for b in reducer.buckets],
            "bucket_param_indices": [
                list(b.spec.param_indices) for b in reducer.buckets
            ],
            "rebuilt_bucket_count": reducer.rebuilt_bucket_count,
            "gradient_as_bucket_view": reducer.gradient_as_bucket_view,
            "grad_copy_count": reducer.grad_copy_count,
            "zero_copy_hits": reducer.zero_copy_hits,
            "layout_allocations": reducer.layout_allocations,
            "noop_rebuild_count": reducer.noop_rebuild_count,
            "iterations_synced": reducer.iterations_synced,
            "find_unused_parameters": self.find_unused_parameters,
            "unused_parameter_count": reducer.last_unused_parameter_count,
            "overlap_enabled": reducer.overlap,
            "comm_compute_overlap_ratio": detail.get(
                "comm_compute_overlap_ratio", 0.0
            ),
            "comm_total_s": detail.get("comm_total_s", 0.0),
            "comm_hidden_s": detail.get("comm_hidden_s", 0.0),
            "per_bucket_allreduce_latency_s": [
                bucket_latencies.get(b.spec.index, 0.0) for b in reducer.buckets
            ],
            "last_iteration": dict(reducer.last_iteration_stats),
            "debug": self._debug_stats(),
            "resilience": self._resilience_stats(),
            "profile": self._profile_stats(detail),
            "health": self._health_stats(detail),
            "autotune": (
                self._autotuner.report() if self._autotuner is not None else None
            ),
            "checkpoint": self._checkpoint_stats(),
        }

    def _checkpoint_stats(self) -> Optional[dict]:
        """Live :class:`~repro.checkpoint.engine.CheckpointEngine`
        counters for this rank (saves, async stall, replication traffic
        and lag), or None when no engine is registered."""
        from repro.checkpoint.engine import stats_for

        return stats_for(self.process_group.group_rank)

    def _health_stats(self, detail: dict) -> dict:
        """Comm-health section: per-collective efficiency summaries for
        this rank (achieved bus bandwidth, chunk-pipeline utilization,
        cost-model efficiency, receive stalls) plus the anomaly engine's
        live cross-rank diagnoses.  The overlap ratio is served from the
        always-on recorder clock; the rest needs telemetry enabled."""
        from repro.telemetry.health import health_report

        return health_report(
            rank=self.process_group.global_rank, last_detail=detail
        )

    def _profile_stats(self, detail: dict) -> Optional[dict]:
        """Critical-path attribution of the last synchronized iteration:
        overlap ratio, exposed-comm time, and the top-3 blame buckets
        (None before the first sync).  Built from the recorder's coarse
        clock, so it works with telemetry disabled."""
        from repro.telemetry.observatory import profile_from_detail

        profile = profile_from_detail(detail, rank=self.process_group.global_rank)
        return profile.summary(top=3) if profile is not None else None

    def _resilience_stats(self) -> Optional[dict]:
        """Transport retry/dedup/corruption counters, when the group runs
        over a :class:`~repro.resilience.ReliableTransportHub` (None on
        the plain hub)."""
        hub = getattr(self.process_group, "hub", None)
        probe = getattr(hub, "resilience_stats", None)
        return probe() if callable(probe) else None

    def _debug_stats(self) -> dict:
        """REPRO_DEBUG layer state: flight-recorder depth and watchdog
        status for this rank's process group (all zeros/None when OFF)."""
        group = self.process_group
        recorder = getattr(group, "flight_recorder", None)
        watchdog = getattr(group, "_watchdog", None)
        return {
            "level": debug_level_name(),
            "flight_recorder_depth": recorder.depth() if recorder else 0,
            "watchdog": watchdog.status() if watchdog else None,
        }

    def check_stragglers(self, threshold: float = 1.5):
        """Exchange the last backward-compute time across ranks and flag
        outliers (a **collective** — every rank must call it at the same
        point).  Returns a :class:`repro.telemetry.StragglerReport`."""
        from repro.telemetry.straggler import detect_stragglers

        phases = self.reducer.recorder.last_detail.get("phases", {})
        local = float(phases.get("backward_compute", 0.0))
        return detect_stragglers(self.process_group, local, threshold=threshold)

    def __repr__(self) -> str:
        return (
            f"DistributedDataParallel(world={self.process_group.size}, "
            f"bucket_cap={self.bucket_cap_mb}MB, "
            f"buckets={len(self.reducer.buckets)})\n  {self.module!r}"
        )

    def summary(self) -> str:
        """Human-readable configuration + bucket layout report."""
        from repro.core.bucket import describe_assignment
        from repro.utils.units import format_bytes

        total_params = sum(p.numel() for p in self._params)
        grad_bytes = sum(p.numel() * p.element_size() for p in self._params)
        lines = [
            "DistributedDataParallel summary",
            f"  world size:          {self.process_group.size}",
            f"  backend:             {self.process_group.backend}",
            f"  parameters:          {total_params:,} in {len(self._params)} tensors",
            f"  gradient volume:     {format_bytes(grad_bytes)} per iteration",
            f"  bucket cap:          {self.bucket_cap_mb} MB "
            f"({len(self.reducer.buckets)} buckets)",
            f"  find unused params:  {self.find_unused_parameters}",
            f"  broadcast buffers:   {self.broadcast_buffers}",
            f"  iterations synced:   {self.reducer.iterations_synced}",
            "",
            describe_assignment([b.spec for b in self.reducer.buckets]),
        ]
        return "\n".join(lines)


def _flatten_outputs(out) -> list:
    """Collect all Tensors from arbitrarily nested forward outputs."""
    tensors: list = []

    def visit(value) -> None:
        if isinstance(value, Tensor):
            tensors.append(value)
        elif isinstance(value, (list, tuple)):
            for item in value:
                visit(item)
        elif isinstance(value, dict):
            for item in value.values():
                visit(item)

    visit(out)
    return tensors
