"""Library logging.

A single ``repro`` logger, silent by default.  Set ``REPRO_LOG=debug``
(or ``info``) in the environment, or call :func:`enable_logging`, to
see reducer events (bucket launches, finalization, rebucketing) —
the first thing to look at when a distributed run hangs.

Every record carries a ``%(rank)s`` field resolved from the rank
contextvar (:mod:`repro.utils.rank`) that ``run_distributed`` binds at
rank spawn and each process group binds on its communication worker —
so records attribute to the *actual* rank rather than whatever the
thread happens to be named.  Records emitted outside any rank context
show ``-``.
"""

from __future__ import annotations

import logging
import os

logger = logging.getLogger("repro")
logger.addHandler(logging.NullHandler())


class RankFilter(logging.Filter):
    """Inject ``record.rank`` from the calling thread's rank contextvar."""

    def filter(self, record: logging.LogRecord) -> bool:
        from repro.utils.rank import get_current_rank

        rank = get_current_rank()
        record.rank = "-" if rank is None else rank
        return True


_FORMAT = "[repro %(levelname).1s rank=%(rank)s] %(message)s"


def enable_logging(level: str = "debug") -> logging.Logger:
    """Attach a stderr handler with rank-aware formatting.

    Idempotent: repeated calls update the level of the existing handler
    instead of stacking duplicates (each would double every line).
    """
    handler = next(
        (h for h in logger.handlers if getattr(h, "_repro_handler", False)), None
    )
    if handler is None:
        handler = logging.StreamHandler()
        handler._repro_handler = True
        handler.setFormatter(logging.Formatter(_FORMAT))
        handler.addFilter(RankFilter())
        logger.addHandler(handler)
    logger.setLevel(getattr(logging, level.upper()))
    return logger


_warned_keys: set = set()
_warned_lock = __import__("threading").Lock()


def warn_once(key: str, message: str, *args, level: int = logging.WARNING) -> bool:
    """Log ``message`` at most once per ``key`` for the process lifetime.

    Used by periodic machinery (the debug watchdog's poll loop, shutdown
    paths that several owners may drive) where a recurring condition
    should surface exactly once instead of flooding stderr.  Returns
    True if the message was emitted.
    """
    with _warned_lock:
        if key in _warned_keys:
            return False
        _warned_keys.add(key)
    logger.log(level, message, *args)
    return True


_env_level = os.environ.get("REPRO_LOG")
if _env_level:
    enable_logging(_env_level)
