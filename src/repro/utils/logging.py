"""Library logging.

A single ``repro`` logger, silent by default.  Set ``REPRO_LOG=debug``
(or ``info``) in the environment, or call :func:`enable_logging`, to
see reducer events (bucket launches, finalization, rebucketing) —
the first thing to look at when a distributed run hangs.
"""

from __future__ import annotations

import logging
import os

logger = logging.getLogger("repro")
logger.addHandler(logging.NullHandler())


def enable_logging(level: str = "debug") -> logging.Logger:
    """Attach a stderr handler with rank-aware formatting."""
    handler = logging.StreamHandler()
    handler.setFormatter(
        logging.Formatter("[repro %(levelname).1s %(threadName)s] %(message)s")
    )
    logger.handlers = [h for h in logger.handlers if isinstance(h, logging.NullHandler)]
    logger.addHandler(handler)
    logger.setLevel(getattr(logging, level.upper()))
    return logger


_env_level = os.environ.get("REPRO_LOG")
if _env_level:
    enable_logging(_env_level)
