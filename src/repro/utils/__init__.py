"""Shared utilities: seeding, sizes, and small helpers."""

from repro.utils.seed import manual_seed, get_rng, fork_rng
from repro.utils.units import MB, KB, format_bytes, format_seconds
from repro.utils.checkpoint import save_checkpoint, load_checkpoint

__all__ = [
    "manual_seed",
    "get_rng",
    "fork_rng",
    "MB",
    "KB",
    "format_bytes",
    "format_seconds",
    "save_checkpoint",
    "load_checkpoint",
]
