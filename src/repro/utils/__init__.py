"""Shared utilities: seeding, sizes, rank identity, and small helpers."""

from repro.utils.seed import manual_seed, get_rng, fork_rng
from repro.utils.units import MB, KB, format_bytes, format_seconds
from repro.utils.checkpoint import (
    save_checkpoint,
    load_checkpoint,
    save_training_checkpoint,
    load_training_checkpoint,
)
from repro.utils.logging import enable_logging, logger
from repro.utils.rank import get_current_rank, set_current_rank

__all__ = [
    "manual_seed",
    "get_rng",
    "fork_rng",
    "MB",
    "KB",
    "format_bytes",
    "format_seconds",
    "save_checkpoint",
    "load_checkpoint",
    "enable_logging",
    "logger",
    "get_current_rank",
    "set_current_rank",
]
