"""Rank identity propagation.

Each logical rank in this library is a thread (see
``repro.comm.distributed.run_distributed``), and each rank additionally
owns communication worker threads.  Knowing "which rank am I on?" from
arbitrary library code — log formatting, telemetry attribution — must
therefore not rely on thread names.  A :mod:`contextvars` variable is
set at rank spawn (and at communication-worker startup) and read
wherever rank identity is needed.

``contextvars`` gives every thread its own value by default, so ranks
never observe each other's identity, and code running outside any rank
context simply sees ``None``.
"""

from __future__ import annotations

import contextvars
from typing import Optional

_current_rank: contextvars.ContextVar[Optional[int]] = contextvars.ContextVar(
    "repro_current_rank", default=None
)


def set_current_rank(rank: Optional[int]):
    """Bind this thread's rank identity; returns a reset token."""
    return _current_rank.set(rank)


def get_current_rank() -> Optional[int]:
    """The rank bound to the calling thread, or ``None`` outside ranks."""
    return _current_rank.get()


def reset_current_rank(token) -> None:
    """Undo a previous :func:`set_current_rank` (for nested harnesses)."""
    _current_rank.reset(token)
