"""Deterministic random-number management.

Distributed data parallel correctness hinges on every rank drawing the
*same* initial parameters, so the library routes every random draw through
a process-wide :class:`numpy.random.Generator` that callers can re-seed.
Per-rank randomness (e.g. dropout masks that must differ across ranks) is
obtained with :func:`fork_rng`.
"""

from __future__ import annotations

import contextlib
import threading

import numpy as np

_state = threading.local()

_DEFAULT_SEED = 0


def manual_seed(seed: int) -> None:
    """Seed the calling thread's generator (each rank thread seeds its own)."""
    _state.rng = np.random.default_rng(seed)


def get_rng() -> np.random.Generator:
    """Return the calling thread's generator, creating a default-seeded one."""
    rng = getattr(_state, "rng", None)
    if rng is None:
        rng = np.random.default_rng(_DEFAULT_SEED)
        _state.rng = rng
    return rng


@contextlib.contextmanager
def fork_rng(seed: int):
    """Temporarily replace the thread's generator with a fresh-seeded one."""
    previous = getattr(_state, "rng", None)
    _state.rng = np.random.default_rng(seed)
    try:
        yield _state.rng
    finally:
        _state.rng = previous
