"""Model/optimizer checkpointing.

In data parallel training, replicas are identical by construction, so
checkpointing is a rank-0-only concern: save on rank 0, load everywhere
(or load before wrapping with DDP and let the constructor broadcast).
"""

from __future__ import annotations

import os
from typing import Dict

import numpy as np


def save_checkpoint(path: str, module, extra: Dict | None = None) -> None:
    """Write a model's state_dict (plus optional scalar metadata) as npz."""
    state = module.state_dict()
    payload = {f"state/{name}": value for name, value in state.items()}
    for key, value in (extra or {}).items():
        payload[f"extra/{key}"] = np.asarray(value)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **payload)


def load_checkpoint(path: str, module) -> Dict:
    """Load a checkpoint into ``module``; returns the extra metadata."""
    with np.load(path) as data:
        state = {
            key[len("state/"):]: data[key]
            for key in data.files
            if key.startswith("state/")
        }
        extra = {
            key[len("extra/"):]: data[key]
            for key in data.files
            if key.startswith("extra/")
        }
    module.load_state_dict(state)
    return extra
