"""Model/optimizer checkpointing.

In data parallel training, replicas are identical by construction, so
checkpointing is a rank-0-only concern: save on rank 0, load everywhere
(or load before wrapping with DDP and let the constructor broadcast).

:func:`save_training_checkpoint` extends the plain state_dict snapshot
with optimizer state and the iteration counter — the restart unit the
elastic supervisor (:mod:`repro.resilience`) restores surviving ranks
from after a shrink.  Writes are atomic (tmp file + ``os.replace``) so
a rank dying mid-save can never leave a half-written checkpoint behind,
and every file carries :mod:`repro.checkpoint.format`'s CRC trailer so
a *torn* write — a crash after the rename, a disk that lied — is
rejected at load time with :class:`~repro.checkpoint.format.ChecksumError`
instead of unpickling garbage.  Files written before the trailer existed
remain loadable (the trailer is appended after an ordinary ``.npz``, and
its absence is accepted); structurally damaged legacy files also raise
:class:`ChecksumError`, never a bare ``BadZipFile``.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.checkpoint.format import (
    ChecksumError,
    load_verified_npz,
    npz_bytes,
    write_verified,
)

__all__ = [
    "ChecksumError",
    "save_checkpoint",
    "load_checkpoint",
    "save_training_checkpoint",
    "load_training_checkpoint",
    "parse_training_payload",
    "install_training_payload",
    "training_payload",
]


def _atomic_savez(path: str, payload: Dict, fault_hook=None, rank: int = 0) -> None:
    write_verified(path, npz_bytes(payload), fault_hook=fault_hook, rank=rank)


def save_checkpoint(path: str, module, extra: Dict | None = None) -> None:
    """Write a model's state_dict (plus optional scalar metadata) as npz."""
    state = module.state_dict()
    payload = {f"state/{name}": value for name, value in state.items()}
    for key, value in (extra or {}).items():
        payload[f"extra/{key}"] = np.asarray(value)
    _atomic_savez(path, payload)


def load_checkpoint(path: str, module) -> Dict:
    """Load a checkpoint into ``module``; returns the extra metadata.

    Raises :class:`ChecksumError` on a torn or corrupt file.
    """
    data = load_verified_npz(path)
    state = {
        key[len("state/"):]: value
        for key, value in data.items()
        if key.startswith("state/")
    }
    extra = {
        key[len("extra/"):]: value
        for key, value in data.items()
        if key.startswith("extra/")
    }
    module.load_state_dict(state)
    return extra


def training_payload(
    module, optimizer=None, iteration: int = 0, extra: Dict | None = None,
    copy: bool = False,
) -> Dict[str, np.ndarray]:
    """Build the flat ``state/ opt/ meta/ extra/`` array mapping of a
    training checkpoint.  ``copy=True`` detaches every array from live
    training state (the checkpoint engine's snapshot step)."""
    payload = {
        f"state/{name}": (np.array(value, copy=True) if copy else value)
        for name, value in module.state_dict().items()
    }
    if optimizer is not None:
        opt_dict = optimizer.state_dict()
        for index, per_param in opt_dict["state"].items():
            for key, value in per_param.items():
                payload[f"opt/{index}/{key}"] = (
                    np.array(value, copy=True) if copy else np.asarray(value)
                )
        if "num_params" in opt_dict:
            # Guards positional restore: loading into an optimizer with
            # a different parameter count fails loudly, not misaligned.
            payload["meta/opt_num_params"] = np.asarray(int(opt_dict["num_params"]))
    payload["meta/iteration"] = np.asarray(int(iteration))
    for key, value in (extra or {}).items():
        payload[f"extra/{key}"] = np.asarray(value)
    return payload


def save_training_checkpoint(
    path: str,
    module,
    optimizer=None,
    iteration: int = 0,
    extra: Dict | None = None,
) -> None:
    """Atomically write model + optimizer state + iteration counter.

    The optimizer's per-parameter state (momentum buffers, Adam
    moments) is flattened as ``opt/{index}/{key}`` arrays; restoring it
    is what keeps a resumed run on the same optimization trajectory.
    """
    _atomic_savez(path, training_payload(module, optimizer, iteration, extra))


def parse_training_payload(
    data: Dict[str, np.ndarray],
) -> Tuple[Dict, Dict[int, Dict], int, Optional[int], Dict]:
    """Split a flat checkpoint array mapping into its sections:
    ``(model_state, opt_state_by_index, iteration, opt_num_params, extra)``."""
    state: Dict = {}
    opt_state: Dict[int, Dict] = {}
    extra: Dict = {}
    iteration = 0
    opt_num_params = None
    for key, value in data.items():
        if key.startswith("state/"):
            state[key[len("state/"):]] = value
        elif key.startswith("opt/"):
            _, index, name = key.split("/", 2)
            opt_state.setdefault(int(index), {})[name] = value
        elif key == "meta/iteration":
            iteration = int(value)
        elif key == "meta/opt_num_params":
            opt_num_params = int(value)
        elif key.startswith("extra/"):
            extra[key[len("extra/"):]] = value
    return state, opt_state, iteration, opt_num_params, extra


def install_training_payload(
    data: Dict[str, np.ndarray], module, optimizer=None
) -> Dict:
    """Install a parsed checkpoint mapping into ``module``/``optimizer``;
    returns ``{"iteration": int, "extra": dict}``.  Shared by
    :func:`load_training_checkpoint` and the checkpoint engine's
    replica-restore path (which gets its bytes off the wire)."""
    state, opt_state, iteration, opt_num_params, extra = parse_training_payload(data)
    module.load_state_dict(state)
    if optimizer is not None:
        opt_dict: Dict = {"state": opt_state}
        if opt_num_params is not None:
            opt_dict["num_params"] = opt_num_params
        optimizer.load_state_dict(opt_dict)
    return {"iteration": iteration, "extra": extra}


def load_training_checkpoint(path: str, module, optimizer=None) -> Dict:
    """Restore a :func:`save_training_checkpoint` file.

    Loads model state into ``module`` and (when given) optimizer state
    into ``optimizer``; returns ``{"iteration": int, "extra": dict}``.
    A partially written or corrupted file raises :class:`ChecksumError`
    before any state is touched.
    """
    return install_training_payload(load_verified_npz(path), module, optimizer)
