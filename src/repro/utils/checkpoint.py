"""Model/optimizer checkpointing.

In data parallel training, replicas are identical by construction, so
checkpointing is a rank-0-only concern: save on rank 0, load everywhere
(or load before wrapping with DDP and let the constructor broadcast).

:func:`save_training_checkpoint` extends the plain state_dict snapshot
with optimizer state and the iteration counter — the restart unit the
elastic supervisor (:mod:`repro.resilience`) restores surviving ranks
from after a shrink.  Writes are atomic (tmp file + ``os.replace``) so
a rank dying mid-save can never leave a half-written checkpoint behind.
"""

from __future__ import annotations

import os
from typing import Dict

import numpy as np


def _atomic_savez(path: str, payload: Dict) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp = path + ".tmp"
    np.savez(tmp, **payload)
    # np.savez appends .npz to paths without the suffix.
    produced = tmp if os.path.exists(tmp) else tmp + ".npz"
    os.replace(produced, path)


def save_checkpoint(path: str, module, extra: Dict | None = None) -> None:
    """Write a model's state_dict (plus optional scalar metadata) as npz."""
    state = module.state_dict()
    payload = {f"state/{name}": value for name, value in state.items()}
    for key, value in (extra or {}).items():
        payload[f"extra/{key}"] = np.asarray(value)
    _atomic_savez(path, payload)


def load_checkpoint(path: str, module) -> Dict:
    """Load a checkpoint into ``module``; returns the extra metadata."""
    with np.load(path) as data:
        state = {
            key[len("state/"):]: data[key]
            for key in data.files
            if key.startswith("state/")
        }
        extra = {
            key[len("extra/"):]: data[key]
            for key in data.files
            if key.startswith("extra/")
        }
    module.load_state_dict(state)
    return extra


def save_training_checkpoint(
    path: str,
    module,
    optimizer=None,
    iteration: int = 0,
    extra: Dict | None = None,
) -> None:
    """Atomically write model + optimizer state + iteration counter.

    The optimizer's per-parameter state (momentum buffers, Adam
    moments) is flattened as ``opt/{index}/{key}`` arrays; restoring it
    is what keeps a resumed run on the same optimization trajectory.
    """
    payload = {
        f"state/{name}": value for name, value in module.state_dict().items()
    }
    if optimizer is not None:
        opt_dict = optimizer.state_dict()
        for index, per_param in opt_dict["state"].items():
            for key, value in per_param.items():
                payload[f"opt/{index}/{key}"] = np.asarray(value)
        if "num_params" in opt_dict:
            # Guards positional restore: loading into an optimizer with
            # a different parameter count fails loudly, not misaligned.
            payload["meta/opt_num_params"] = np.asarray(int(opt_dict["num_params"]))
    payload["meta/iteration"] = np.asarray(int(iteration))
    for key, value in (extra or {}).items():
        payload[f"extra/{key}"] = np.asarray(value)
    _atomic_savez(path, payload)


def load_training_checkpoint(path: str, module, optimizer=None) -> Dict:
    """Restore a :func:`save_training_checkpoint` file.

    Loads model state into ``module`` and (when given) optimizer state
    into ``optimizer``; returns ``{"iteration": int, "extra": dict}``.
    """
    with np.load(path) as data:
        state = {}
        opt_state: Dict[int, Dict] = {}
        extra = {}
        iteration = 0
        opt_num_params = None
        for key in data.files:
            if key.startswith("state/"):
                state[key[len("state/"):]] = data[key]
            elif key.startswith("opt/"):
                _, index, name = key.split("/", 2)
                opt_state.setdefault(int(index), {})[name] = data[key]
            elif key == "meta/iteration":
                iteration = int(data[key])
            elif key == "meta/opt_num_params":
                opt_num_params = int(data[key])
            elif key.startswith("extra/"):
                extra[key[len("extra/"):]] = data[key]
    module.load_state_dict(state)
    if optimizer is not None:
        opt_dict: Dict = {"state": opt_state}
        if opt_num_params is not None:
            opt_dict["num_params"] = opt_num_params
        optimizer.load_state_dict(opt_dict)
    return {"iteration": iteration, "extra": extra}
