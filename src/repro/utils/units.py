"""Byte/time unit helpers used by bucketing and the cost models."""

from __future__ import annotations

KB = 1024
MB = 1024 * 1024

_FLOAT32_BYTES = 4


def params_to_bytes(num_params: int, dtype_bytes: int = _FLOAT32_BYTES) -> int:
    """Size in bytes of ``num_params`` elements of the given element width."""
    return num_params * dtype_bytes


def bytes_to_params(num_bytes: float, dtype_bytes: int = _FLOAT32_BYTES) -> float:
    """Number of fp32-sized elements that fit in ``num_bytes``."""
    return num_bytes / dtype_bytes


def format_bytes(num_bytes: float) -> str:
    """Human-readable byte count (e.g. ``25.0MB``)."""
    value = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB"):
        if abs(value) < 1024.0 or unit == "GB":
            return f"{value:.1f}{unit}"
        value /= 1024.0
    return f"{value:.1f}GB"


def format_seconds(seconds: float) -> str:
    """Human-readable duration (``430.0us``, ``12.3ms``, ``1.27s``)."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"
