"""Per-``ProcessGroup`` hang watchdog.

Real NCCL desyncs surface as an opaque hang: one rank launched a
collective its peers never joined, so its communication worker blocks
until the timeout kills the job with no indication of *who* diverged.
The watchdog turns that into a diagnosis:

1. Each rank's watchdog thread polls its group's in-flight collective.
   When one exceeds the hang threshold (a fraction of the group timeout,
   so the report lands *before* the bare transport timeout), the first
   detecting rank raises an **alarm** in the rendezvous store.
2. Every rank's watchdog answers an alarm by publishing its flight
   recorder snapshot for the group (last scheduled/completed collective,
   in-flight op, transport blockage, tail of recent records).
3. The detecting rank gathers the snapshots, builds a
   :class:`~repro.debug.desync.DesyncReport` naming culprit / laggard /
   missing ranks, fails the stuck ``Work`` with the report attached, and
   closes the transport hub so every blocked worker wakes and the run
   terminates instead of stranding threads.

Ranks that already shut down leave a parting snapshot in the store
(see ``ProcessGroup.shutdown``), so "rank 1 exited after completing
allreduce#7" is distinguishable from "rank 1 never responded".
"""

from __future__ import annotations

import threading
import time
from typing import Optional

import traceback

from repro.debug.desync import build_desync_report
from repro.utils.logging import logger, warn_once


class HangWatchdog:
    """Monitors one rank's membership in one process group."""

    def __init__(
        self,
        group,
        hang_threshold: Optional[float] = None,
        poll_interval: Optional[float] = None,
        grace: Optional[float] = None,
    ):
        self.group = group
        self.hang_threshold = (
            hang_threshold if hang_threshold is not None else 0.75 * group.timeout
        )
        self.poll_interval = (
            poll_interval
            if poll_interval is not None
            else max(0.02, self.hang_threshold / 50.0)
        )
        self.grace = (
            grace
            if grace is not None
            else min(2.0, max(0.25, self.hang_threshold / 2.0))
        )
        self.alarms_raised = 0
        self.alarms_answered = 0
        self.last_report = None
        self._answered_alarm = None
        self._reported: set = set()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop,
            name=f"pg{group._group_id}-rank{group.global_rank}-watchdog",
            daemon=True,
        )

    # -- store keys -----------------------------------------------------
    @property
    def _prefix(self) -> str:
        return f"pgdebug/{self.group._group_id}"

    def _state_key(self, rank: int) -> str:
        return f"{self._prefix}/state/rank{rank}"

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        self._thread.start()

    def stop(self, timeout: float = 1.0) -> None:
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=timeout)

    def is_alive(self) -> bool:
        return self._thread.is_alive()

    def status(self) -> dict:
        """Watchdog state for ``ddp_stats()`` and diagnostics."""
        return {
            "active": self._thread.is_alive(),
            "hang_threshold_s": self.hang_threshold,
            "alarms_raised": self.alarms_raised,
            "alarms_answered": self.alarms_answered,
            "last_report": (
                self.last_report.stuck_description() if self.last_report else None
            ),
        }

    # -- state publication ---------------------------------------------
    def publish_state(self, status: str = "running") -> None:
        """Publish this rank's flight-recorder snapshot for the group."""
        group = self.group
        snapshot = group.flight_recorder.group_snapshot(group._group_id)
        snapshot["status"] = status
        blocked = getattr(group.hub, "blocked_receivers", None)
        if blocked is not None:
            snapshot["transport"] = [
                entry for entry in blocked() if entry["rank"] == group.global_rank
            ]
        group.store.set(self._state_key(group.global_rank), snapshot)

    # -- main loop ------------------------------------------------------
    def _loop(self) -> None:
        group = self.group
        while not self._stop.wait(self.poll_interval):
            try:
                alarm = group.store.try_get(f"{self._prefix}/alarm")
                if alarm is not None and alarm["id"] != self._answered_alarm:
                    self._answered_alarm = alarm["id"]
                    self.alarms_answered += 1
                    self.publish_state()
                inflight = group._inflight
                if inflight is None:
                    continue
                work, since = inflight
                if (
                    id(work) not in self._reported
                    and time.perf_counter() - since > self.hang_threshold
                ):
                    self._reported.add(id(work))
                    self._handle_hang(work)
            except Exception as exc:  # never let diagnostics kill the run
                warn_once(
                    f"watchdog-{group._group_id}-{group.global_rank}-"
                    f"{type(exc).__name__}",
                    "watchdog iteration failed: %s",
                    traceback.format_exc(),
                )

    def _handle_hang(self, work) -> None:
        group = self.group
        # One reporter per group; later detectors just publish state so
        # the reporter's gather sees them.
        if group.store.add(f"{self._prefix}/alarm_guard", 1) != 1:
            self.publish_state()
            return
        alarm_id = f"rank{group.global_rank}:{work.description}"
        group.store.set(
            f"{self._prefix}/alarm",
            {"id": alarm_id, "rank": group.global_rank,
             "collective": work.description},
        )
        self._answered_alarm = alarm_id
        self.publish_state()

        record = getattr(work, "_debug_record", None)
        if record is not None:
            stuck = record.as_dict()
        else:
            meta = work.meta or {}
            stuck = {"op": meta.get("op", work.description),
                     "seq": meta.get("seq", -1),
                     "group_id": group._group_id, "state": "started",
                     "shape": None, "dtype": None,
                     "nbytes": meta.get("bytes")}

        # Give peers' watchdogs a grace window to answer the alarm; ranks
        # that shut down already left a parting snapshot.
        deadline = time.perf_counter() + self.grace
        member_keys = {r: self._state_key(r) for r in group.ranks}
        while time.perf_counter() < deadline:
            if all(group.store.try_get(k) is not None for k in member_keys.values()):
                break
            time.sleep(self.poll_interval)
        rank_states = {
            r: group.store.try_get(key) for r, key in member_keys.items()
        }

        report = build_desync_report(
            group._group_id, group.global_rank, stuck,
            self.hang_threshold, rank_states,
        )
        self.last_report = report
        self.alarms_raised += 1
        rendered = report.render()
        logger.error("%s", rendered)

        from repro.comm.process_group import CollectiveTimeoutError

        work._complete(
            CollectiveTimeoutError(
                f"collective {work.description!r} hung past the watchdog "
                f"threshold ({self.hang_threshold:.1f}s of the "
                f"{group.timeout:.1f}s group timeout)\n{rendered}"
            )
        )
        # The stuck collective can never complete; close the hub so every
        # blocked communication worker wakes and the run fails fast with
        # the report above instead of a bare timeout.
        group.hub.close()
