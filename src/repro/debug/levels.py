"""The ``REPRO_DEBUG`` gate: OFF / INFO / DETAIL.

Mirrors ``TORCH_DISTRIBUTED_DEBUG``: the debug layer is compiled around
one integer read (``DEBUG.level``) so the hot collective path pays a
single attribute check while debugging is off.

* ``OFF`` (default) — zero recording, zero extra threads.
* ``INFO`` — flight recorder on, hang watchdog on, DDP construction
  verifies parameter shapes/dtypes across ranks, reducer errors name
  unready parameters.
* ``DETAIL`` — everything above, plus per-rank signature publication
  (cross-rank fingerprint diffs on mismatch) and a post-broadcast
  parameter *value* check at DDP construction.
"""

from __future__ import annotations

import os

OFF = 0
INFO = 1
DETAIL = 2

_LEVEL_NAMES = {OFF: "OFF", INFO: "INFO", DETAIL: "DETAIL"}
_NAME_LEVELS = {
    "OFF": OFF, "0": OFF, "": OFF, "FALSE": OFF, "NO": OFF,
    "INFO": INFO, "1": INFO, "ON": INFO, "TRUE": INFO,
    "DETAIL": DETAIL, "2": DETAIL,
}


class _DebugState:
    """Process-wide debug level; ``DEBUG.level`` is the one-branch gate."""

    __slots__ = ("level",)

    def __init__(self, level: int = OFF):
        self.level = level


def _parse(value) -> int:
    if isinstance(value, int):
        if value not in _LEVEL_NAMES:
            raise ValueError(f"debug level must be 0/1/2, got {value}")
        return value
    name = str(value).strip().upper()
    if name not in _NAME_LEVELS:
        raise ValueError(
            f"invalid REPRO_DEBUG value {value!r}; expected OFF, INFO, or DETAIL"
        )
    return _NAME_LEVELS[name]


def _parse_env() -> int:
    raw = os.environ.get("REPRO_DEBUG", "")
    try:
        return _parse(raw)
    except ValueError:
        import warnings

        warnings.warn(
            f"ignoring invalid REPRO_DEBUG={raw!r} (expected OFF|INFO|DETAIL)",
            stacklevel=2,
        )
        return OFF


DEBUG = _DebugState(_parse_env())


def set_debug_level(level) -> int:
    """Set the debug level from ``"OFF"|"INFO"|"DETAIL"`` or 0/1/2."""
    DEBUG.level = _parse(level)
    return DEBUG.level


def get_debug_level() -> int:
    return DEBUG.level


def debug_level_name() -> str:
    return _LEVEL_NAMES[DEBUG.level]
