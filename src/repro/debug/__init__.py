"""Distributed debug layer: flight recorder, hang watchdog, desync diff.

The paper's headline failure mode (§3.2.3, Fig. 3(a)) — ranks issuing
collectives in mismatched order — surfaces in production as an opaque
NCCL hang.  This package turns that hang into a diagnosis:

* :mod:`~repro.debug.flight_recorder` — per-rank bounded ring buffer of
  every collective's lifecycle (seq, op, group, payload fingerprint,
  caller context, scheduled/started/completed timestamps), with JSON
  dump and a cross-rank "last N collectives per rank" table.
* :mod:`~repro.debug.watchdog` — per-``ProcessGroup`` thread that, when
  a collective exceeds the hang threshold, gathers every rank's flight
  recorder tail through the rendezvous store and fails the run with a
  :class:`~repro.debug.desync.DesyncReport` naming culprit, laggard,
  and missing ranks.
* :mod:`~repro.debug.desync` — rich collective fingerprints and the
  field-level cross-rank diff rendered on ``CollectiveMismatchError``.

Everything is gated by ``REPRO_DEBUG=OFF|INFO|DETAIL`` (default OFF; see
:mod:`~repro.debug.levels`): while OFF the comm layer pays one integer
check per collective and records nothing.

    REPRO_DEBUG=INFO python train.py          # or:
    from repro import debug
    debug.set_debug_level("DETAIL")

See ``docs/observability.md`` ("Debugging desyncs and hangs") for the
dump format and a worked Fig. 3(a) diagnosis.
"""

from __future__ import annotations

import os

from repro.debug.desync import (
    DesyncReport,
    build_desync_report,
    describe_fingerprint,
    diff_fingerprints,
    fingerprint,
    render_mismatch,
)
from repro.debug.flight_recorder import (
    CollectiveRecord,
    FlightRecorder,
    all_recorders,
    clear_recorders,
    collective_context,
    current_collective_context,
    dump_all,
    dump_json,
    recorder_for,
    render_cross_rank,
)
from repro.debug.levels import (
    DEBUG,
    DETAIL,
    INFO,
    OFF,
    debug_level_name,
    get_debug_level,
    set_debug_level,
)
from repro.debug.watchdog import HangWatchdog

__all__ = [
    "CollectiveRecord",
    "DEBUG",
    "DETAIL",
    "DesyncReport",
    "FlightRecorder",
    "HangWatchdog",
    "INFO",
    "OFF",
    "all_recorders",
    "build_desync_report",
    "clear_recorders",
    "collective_context",
    "current_collective_context",
    "debug_level_name",
    "describe_fingerprint",
    "diff_fingerprints",
    "dump_all",
    "dump_json",
    "fingerprint",
    "get_debug_level",
    "recorder_for",
    "render_cross_rank",
    "render_mismatch",
    "set_debug_level",
]

# Debugging without log output is half a tool: when REPRO_DEBUG is on
# and the user did not configure logging explicitly, surface watchdog
# and mismatch reports on stderr.
if DEBUG.level and not os.environ.get("REPRO_LOG"):
    from repro.utils.logging import enable_logging

    enable_logging("info")
