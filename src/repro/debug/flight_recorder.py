"""Per-rank collective flight recorder.

The analog of NCCL's / TorchTitan's flight recorder: a bounded ring
buffer that records every collective's lifecycle on the rank that issued
it — sequence number, op, group id, payload fingerprint (shape, dtype,
nbytes, reduce op / src / root), the caller context (e.g. which reducer
bucket launched it), and scheduled → started → completed timestamps.

When a run desyncs, the recorders are the evidence: merge every rank's
dump and the "last N collectives per rank" table shows exactly which
rank stopped issuing collectives, at which sequence number, and what it
was doing instead.

Recording is gated by ``REPRO_DEBUG`` (see :mod:`repro.debug.levels`):
with the level at ``OFF`` no recorder is ever attached and no record is
written.
"""

from __future__ import annotations

import contextlib
import contextvars
import json
import threading
import time
from collections import deque
from typing import Dict, List, Optional

#: Records retained per rank before the ring drops the oldest.
DEFAULT_CAPACITY = 256

# Lifecycle states.
SCHEDULED = "scheduled"
STARTED = "started"
COMPLETED = "completed"
FAILED = "failed"

#: Caller-context label (e.g. "bucket 3") attached to records scheduled
#: while the context manager below is active.  A contextvar so reducer
#: code can label collectives without widening the ProcessGroup API.
_collective_context: contextvars.ContextVar[Optional[str]] = contextvars.ContextVar(
    "repro_collective_context", default=None
)


@contextlib.contextmanager
def collective_context(label: str):
    """Label collectives scheduled inside the block (``context`` field)."""
    token = _collective_context.set(label)
    try:
        yield
    finally:
        _collective_context.reset(token)


def current_collective_context() -> Optional[str]:
    return _collective_context.get()


class CollectiveRecord:
    """One collective's lifecycle as seen by the issuing rank."""

    __slots__ = (
        "seq", "op", "group_id", "shape", "dtype", "nbytes", "extra",
        "context", "state", "t_sched", "t_start", "t_end", "error",
    )

    def __init__(self, seq, op, group_id, shape, dtype, nbytes, extra, context):
        self.seq = seq
        self.op = op
        self.group_id = group_id
        self.shape = shape
        self.dtype = dtype
        self.nbytes = nbytes
        self.extra = extra
        self.context = context
        self.state = SCHEDULED
        self.t_sched = time.perf_counter()
        self.t_start: Optional[float] = None
        self.t_end: Optional[float] = None
        self.error: Optional[str] = None

    def describe(self) -> str:
        return f"{self.op}#{self.seq}@pg{self.group_id}"

    def as_dict(self) -> dict:
        return {
            "seq": self.seq,
            "op": self.op,
            "group_id": self.group_id,
            "shape": list(self.shape) if self.shape is not None else None,
            "dtype": self.dtype,
            "nbytes": self.nbytes,
            "extra": dict(self.extra) if self.extra else {},
            "context": self.context,
            "state": self.state,
            "t_sched": self.t_sched,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "error": self.error,
        }

    def __repr__(self) -> str:
        return f"<CollectiveRecord {self.describe()} {self.state}>"


class FlightRecorder:
    """Bounded ring of :class:`CollectiveRecord` for one rank.

    The issuing (caller) thread records ``scheduled``; the communication
    worker records ``started`` and ``completed``/``failed`` — one short
    lock guards the ring.
    """

    def __init__(self, rank: int, capacity: int = DEFAULT_CAPACITY):
        self.rank = rank
        self.capacity = capacity
        self.dropped = 0
        self._lock = threading.Lock()
        self._ring: deque = deque(maxlen=capacity)

    # -- recording ------------------------------------------------------
    def record_scheduled(
        self,
        seq: int,
        op: str,
        group_id,
        shape=None,
        dtype=None,
        nbytes=None,
        extra: Optional[dict] = None,
        context: Optional[str] = None,
    ) -> CollectiveRecord:
        record = CollectiveRecord(seq, op, group_id, shape, dtype, nbytes,
                                  extra, context)
        with self._lock:
            if len(self._ring) == self.capacity:
                self.dropped += 1
            self._ring.append(record)
        return record

    def mark_started(self, record: CollectiveRecord) -> None:
        record.t_start = time.perf_counter()
        record.state = STARTED

    def mark_completed(self, record: CollectiveRecord,
                       error: Optional[BaseException] = None) -> None:
        """Close a record (first completion wins, like ``Work``).

        A record already failed — e.g. by a caller-side ``Work.wait``
        timeout or the hang watchdog — keeps its richer error even if
        the communication worker later reports in.
        """
        if record.state in (COMPLETED, FAILED):
            return
        record.t_end = time.perf_counter()
        if error is None:
            record.state = COMPLETED
        else:
            record.state = FAILED
            record.error = f"{type(error).__name__}: {error}"

    # -- introspection --------------------------------------------------
    def depth(self) -> int:
        with self._lock:
            return len(self._ring)

    def records(self, group_id=None) -> List[CollectiveRecord]:
        with self._lock:
            records = list(self._ring)
        if group_id is not None:
            records = [r for r in records if r.group_id == group_id]
        return records

    def tail(self, n: int = 10, group_id=None) -> List[dict]:
        return [r.as_dict() for r in self.records(group_id)[-n:]]

    def last_completed(self, group_id=None) -> Optional[CollectiveRecord]:
        for record in reversed(self.records(group_id)):
            if record.state == COMPLETED:
                return record
        return None

    def last_scheduled(self, group_id=None) -> Optional[CollectiveRecord]:
        records = self.records(group_id)
        return records[-1] if records else None

    def inflight(self, group_id=None) -> Optional[CollectiveRecord]:
        """The oldest scheduled-or-started record not yet finished."""
        for record in self.records(group_id):
            if record.state in (SCHEDULED, STARTED):
                return record
        return None

    def group_snapshot(self, group_id, tail: int = 8) -> dict:
        """The cross-rank exchange unit: this rank's view of one group."""
        last_completed = self.last_completed(group_id)
        last_scheduled = self.last_scheduled(group_id)
        inflight = self.inflight(group_id)
        return {
            "rank": self.rank,
            "status": "running",
            "last_completed": last_completed.as_dict() if last_completed else None,
            "last_scheduled": last_scheduled.as_dict() if last_scheduled else None,
            "inflight": inflight.as_dict() if inflight else None,
            "tail": self.tail(tail, group_id),
        }

    def dump(self) -> dict:
        return {
            "rank": self.rank,
            "capacity": self.capacity,
            "dropped": self.dropped,
            "records": [r.as_dict() for r in self.records()],
        }

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self.dropped = 0


def mark_record_failed(record: CollectiveRecord, error: BaseException) -> None:
    """Fail a record from outside its recorder (first terminal state wins).

    Used by caller-side ``Work.wait`` timeouts, which hold the record
    but not the recorder: the entry must not be left dangling in the
    ``started`` state when the caller has already given up on it.
    """
    if record.state in (COMPLETED, FAILED):
        return
    record.t_end = time.perf_counter()
    record.state = FAILED
    record.error = f"{type(error).__name__}: {error}"


# ----------------------------------------------------------------------
# per-rank registry
# ----------------------------------------------------------------------
_registry_lock = threading.Lock()
_recorders: Dict[int, FlightRecorder] = {}


def recorder_for(rank: int, capacity: int = DEFAULT_CAPACITY) -> FlightRecorder:
    """This rank's flight recorder (created on first use)."""
    with _registry_lock:
        recorder = _recorders.get(rank)
        if recorder is None:
            recorder = FlightRecorder(rank, capacity)
            _recorders[rank] = recorder
        return recorder


def all_recorders() -> Dict[int, FlightRecorder]:
    with _registry_lock:
        return dict(_recorders)


def clear_recorders() -> None:
    with _registry_lock:
        _recorders.clear()


def dump_all() -> List[dict]:
    """Every rank's dump, sorted by rank (JSON-serializable)."""
    return [rec.dump() for _, rec in sorted(all_recorders().items())]


def dump_json(path: Optional[str] = None, indent: int = 2) -> str:
    """Serialize every recorder; optionally write the JSON to ``path``."""
    text = json.dumps({"flight_recorders": dump_all()}, indent=indent)
    if path is not None:
        with open(path, "w") as fh:
            fh.write(text)
    return text


def _fmt_record(record: dict) -> str:
    shape = tuple(record["shape"]) if record.get("shape") else "-"
    age = ""
    if record.get("t_end") is not None and record.get("t_sched") is not None:
        age = f" {1e3 * (record['t_end'] - record['t_sched']):.2f}ms"
    context = f" [{record['context']}]" if record.get("context") else ""
    error = f" !{record['error']}" if record.get("error") else ""
    return (
        f"pg{record['group_id']} #{record['seq']:<4} {record['op']:<14} "
        f"{record['state']:<9} shape={shape} dtype={record.get('dtype') or '-'} "
        f"nbytes={record.get('nbytes') if record.get('nbytes') is not None else '-'}"
        f"{age}{context}{error}"
    )


def render_cross_rank(dumps: List[dict], last_n: int = 10) -> str:
    """Merge per-rank dumps into a "last N collectives per rank" table.

    ``dumps`` is a list of :meth:`FlightRecorder.dump` dicts (e.g. from
    :func:`dump_all`, or gathered from the store by the watchdog).
    """
    lines = ["collective flight recorder — last %d per rank" % last_n]
    for dump in sorted(dumps, key=lambda d: d["rank"]):
        records = dump.get("records", [])
        dropped = dump.get("dropped", 0)
        suffix = f" ({dropped} older dropped)" if dropped else ""
        lines.append(f"rank {dump['rank']}: {len(records)} recorded{suffix}")
        for record in records[-last_n:]:
            lines.append("  " + _fmt_record(record))
        if not records:
            lines.append("  (no collectives recorded)")
    return "\n".join(lines)
