"""Cross-rank desync diagnosis: fingerprints, diffs, and hang reports.

Two symptom classes from paper §3.2.3 / Fig. 3(a) are diagnosed here:

* **Mismatch** — ranks issued *different* collectives at the same
  sequence number.  :func:`fingerprint` captures everything that must
  agree (op, shape, dtype, nbytes, reduce op / src / root) and
  :func:`render_mismatch` shows the field-level diff, per rank when
  ``REPRO_DEBUG=DETAIL`` published every rank's signature.
* **Desync hang** — some rank stopped issuing collectives, so a peer's
  collective can never complete.  :func:`build_desync_report` merges the
  per-rank flight-recorder snapshots the watchdog gathered through the
  store and names the culprit ranks (never scheduled the stuck
  collective), the laggards (furthest-behind completions), and the
  missing (never responded — crashed or exited).
"""

from __future__ import annotations

from typing import Dict, List, Optional


def fingerprint(op: str, array=None, **extra) -> dict:
    """The full signature every rank must agree on for one collective."""
    fp = {"op": op, "shape": None, "dtype": None, "nbytes": None}
    if array is not None:
        fp["shape"] = tuple(array.shape)
        fp["dtype"] = str(array.dtype)
        fp["nbytes"] = int(array.nbytes)
    fp.update(extra)
    return fp


def describe_fingerprint(fp: Optional[dict]) -> str:
    if not fp:
        return "<none>"
    parts = [f"{key}={fp[key]}" for key in sorted(fp) if key != "op"
             if fp[key] is not None]
    return f"{fp.get('op', '?')}({', '.join(parts)})"


def diff_fingerprints(mine: dict, theirs: dict) -> List[str]:
    """Field-level differences, e.g. ``["shape: (3,) != (4,)"]``."""
    diffs = []
    for key in sorted(set(mine) | set(theirs)):
        a, b = mine.get(key), theirs.get(key)
        if a != b:
            diffs.append(f"{key}: {a} != {b}")
    return diffs


def render_mismatch(
    group_id,
    seq: int,
    rank: int,
    mine: dict,
    leader_rank: int,
    leader: dict,
    peer_signatures: Optional[Dict[int, dict]] = None,
) -> str:
    """Human-readable cross-rank diff for a ``CollectiveMismatchError``."""
    lines = [
        f"collective #{seq} mismatch in group {group_id}: ranks disagree on "
        f"what to launch (paper Fig. 3(a) — all ranks must issue collectives "
        f"in the same order with matching type/shape/dtype).",
        f"  rank {rank} issued:        {describe_fingerprint(mine)}",
        f"  leader rank {leader_rank} issued: {describe_fingerprint(leader)}",
    ]
    diffs = diff_fingerprints(mine, leader)
    if diffs:
        lines.append("  differing fields: " + "; ".join(diffs))
    if peer_signatures:
        lines.append("  per-rank signatures at this sequence:")
        for peer, sig in sorted(peer_signatures.items()):
            marker = " <- differs" if sig != leader else ""
            lines.append(f"    rank {peer}: {describe_fingerprint(sig)}{marker}")
    return "\n".join(lines)


class DesyncReport:
    """The watchdog's verdict on a hung collective."""

    def __init__(
        self,
        group_id,
        detected_by: int,
        stuck: dict,
        timeout: float,
        rank_states: Dict[int, Optional[dict]],
    ):
        self.group_id = group_id
        self.detected_by = detected_by
        self.stuck = stuck  # the detecting rank's in-flight record dict
        self.timeout = timeout
        self.rank_states = rank_states
        self.missing: List[int] = sorted(
            r for r, state in rank_states.items() if state is None
        )
        stuck_seq = stuck.get("seq", 0)
        self.culprits: List[int] = sorted(
            r
            for r, state in rank_states.items()
            if state is None
            or state.get("last_scheduled") is None
            or state["last_scheduled"]["seq"] < stuck_seq
        )
        completed_seqs = {
            r: (state["last_completed"]["seq"]
                if state and state.get("last_completed") else -1)
            for r, state in rank_states.items()
        }
        behind = min(completed_seqs.values()) if completed_seqs else -1
        self.laggards: List[int] = sorted(
            r for r, seq in completed_seqs.items() if seq == behind
        )

    def stuck_description(self) -> str:
        return (
            f"{self.stuck.get('op', '?')}#{self.stuck.get('seq', '?')}"
            f"@pg{self.group_id}"
        )

    def render(self) -> str:
        from repro.debug.flight_recorder import _fmt_record

        lines = [
            f"cross-rank desync detected in group {self.group_id} by rank "
            f"{self.detected_by}: collective {self.stuck_description()} did "
            f"not complete within {self.timeout:.1f}s.",
            f"  stuck collective: {_fmt_record(self.stuck)}",
            f"  culprit rank(s) {self.culprits or '<none identified>'} never "
            f"scheduled it; laggard rank(s) {self.laggards} are furthest "
            f"behind.",
        ]
        if self.missing:
            lines.append(
                f"  rank(s) {self.missing} published no state (crashed, "
                f"exited, or running with REPRO_DEBUG=OFF)."
            )
        lines.append("  per-rank state:")
        for rank, state in sorted(self.rank_states.items()):
            if state is None:
                lines.append(f"    rank {rank}: <no response>")
                continue
            last = state.get("last_completed")
            last_desc = (
                f"{last['op']}#{last['seq']}" if last else "<none>"
            )
            inflight = state.get("inflight")
            inflight_desc = (
                f", in flight {inflight['op']}#{inflight['seq']}"
                + (f" [{inflight['context']}]" if inflight.get("context") else "")
                if inflight
                else ""
            )
            status = state.get("status", "running")
            lines.append(
                f"    rank {rank} ({status}): last completed {last_desc}"
                f"{inflight_desc}"
            )
            for blocked in state.get("transport", ()):
                lines.append(
                    f"      transport: blocked {blocked['blocked_s']:.1f}s in "
                    f"recv from rank {blocked['waiting_on']} "
                    f"(tag {blocked['tag']})"
                )
            for record in state.get("tail", ())[-4:]:
                lines.append("      " + _fmt_record(record))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<DesyncReport group={self.group_id} stuck="
            f"{self.stuck_description()} culprits={self.culprits}>"
        )


def build_desync_report(
    group_id,
    detected_by: int,
    stuck: dict,
    timeout: float,
    rank_states: Dict[int, Optional[dict]],
) -> DesyncReport:
    return DesyncReport(group_id, detected_by, stuck, timeout, rank_states)
