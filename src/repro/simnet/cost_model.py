"""Alpha–beta cost models for collective operations.

Ring AllReduce on ``p`` ranks moves each byte ``2(p-1)/p`` times through
the bottleneck link and pays ``2(p-1)`` per-hop latencies; every
operation additionally pays a fixed launch overhead and a *bandwidth
ramp* — small messages cannot reach peak bandwidth, modeled as a
constant extra ``ramp_bytes / bandwidth`` per operation.  The ramp is
what produces both Fig. 2 saturation shapes: Gloo's tiny ramp+huge
overhead saturate the sweep near 500 K parameters per AllReduce, while
NCCL keeps improving visibly through the whole sweep.

Backend personalities (calibrated against Figs. 2, 6–9, 12):

* **NCCL** — GPU tensors; ~40 GB/s effective intra-server (NVLink),
  ~2.6 GB/s effective per-stream across servers; microsecond overheads.
* **Gloo** — CPU tensors over TCP; ~1–1.3 GB/s, 10× launch overhead,
  plus a host-side reduction cost per byte.

``link_capacity_*`` bounds the *aggregate* bandwidth several concurrent
process groups can extract: one NCCL stream cannot saturate the link
(the §5.4 observation that makes round-robin groups profitable), but
capacity is finite, so rr5 barely beats rr3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.simnet.topology import ClusterSpec

FLOAT32_BYTES = 4


@dataclass
class CollectiveCostModel:
    """Alpha–beta model of a communication backend on a cluster."""

    name: str = "generic"
    #: Fixed per-operation launch cost (driver path), seconds.
    launch_overhead: float = 10e-6
    #: Effective per-stream bandwidth when all ranks share a server.
    intra_bandwidth: float = 40e9
    #: Effective per-stream bandwidth once the group spans servers.
    inter_bandwidth: float = 10e9
    #: Per-hop latency within / across servers, seconds.
    intra_hop_latency: float = 1.5e-6
    inter_hop_latency: float = 5e-6
    #: Bandwidth ramp: extra bytes-equivalent paid per message.
    ramp_bytes: float = 1.0e6
    #: Aggregate link capacity available to concurrent streams.
    link_capacity_intra: float = 100e9
    link_capacity_inter: float = 10e9
    #: Floor on any single transfer (protocol minimum), seconds.
    min_message_time: float = 1e-6
    cluster: ClusterSpec = field(default_factory=ClusterSpec)

    # ------------------------------------------------------------------
    def _spans_servers(self, world_size: int) -> bool:
        return world_size > self.cluster.gpus_per_server

    def bottleneck_bandwidth(self, world_size: int) -> float:
        return self.inter_bandwidth if self._spans_servers(world_size) else self.intra_bandwidth

    def hop_latency(self, world_size: int) -> float:
        return self.inter_hop_latency if self._spans_servers(world_size) else self.intra_hop_latency

    def link_capacity(self, world_size: int) -> float:
        return self.link_capacity_inter if self._spans_servers(world_size) else self.link_capacity_intra

    def stream_penalty(self, num_streams: int, world_size: int) -> float:
        """Slowdown per stream when ``num_streams`` share the link.

        ``k`` streams want ``k × per-stream`` bandwidth; beyond the link
        capacity each slows proportionally, bounding aggregate
        throughput at the capacity.
        """
        if num_streams <= 1:
            return 1.0
        wanted = num_streams * self.bottleneck_bandwidth(world_size)
        capacity = self.link_capacity(world_size)
        return max(1.0, wanted / capacity)

    # ------------------------------------------------------------------
    def allreduce_time(
        self, nbytes: float, world_size: int, bandwidth_factor: float = 1.0
    ) -> float:
        """One ring AllReduce of ``nbytes`` over ``world_size`` ranks.

        ``bandwidth_factor`` scales effective bandwidth downward to
        model a degraded environment (``simnet.entitlement``).
        """
        if nbytes <= 0:
            return 0.0
        if world_size <= 1:
            return self.launch_overhead
        p = world_size
        bandwidth = self.bottleneck_bandwidth(p) * bandwidth_factor
        transfer = (2.0 * (p - 1) / p * nbytes + self.ramp_bytes) / bandwidth
        hops = 2.0 * (p - 1)
        return self.launch_overhead + hops * self.hop_latency(p) + max(
            transfer, self.min_message_time
        )

    def hierarchical_allreduce_time(
        self, nbytes: float, world_size: int, bandwidth_factor: float = 1.0
    ) -> float:
        """Two-level AllReduce: intra-server tree + leader ring + bcast.

        The paper's related work (BlueConnect, Blink) decomposes
        AllReduce along the network hierarchy; this projects that
        algorithm on the same cluster for comparison with the flat ring.
        """
        if nbytes <= 0 or world_size <= 1:
            return self.allreduce_time(nbytes, world_size, bandwidth_factor)
        per_server = self.cluster.gpus_per_server
        if world_size <= per_server:
            return self.allreduce_time(nbytes, world_size, bandwidth_factor)
        servers = -(-world_size // per_server)
        intra_rounds = max(1, (per_server - 1).bit_length())
        intra = 2 * intra_rounds * (
            self.intra_hop_latency + (nbytes + self.ramp_bytes) / self.intra_bandwidth
        )
        inter_bw = self.inter_bandwidth * bandwidth_factor
        inter = (
            2.0 * (servers - 1) * self.inter_hop_latency
            + (2.0 * (servers - 1) / servers * nbytes + self.ramp_bytes) / inter_bw
        )
        return self.launch_overhead + intra + inter

    def parameter_server_time(
        self, nbytes: float, num_workers: int, bandwidth_factor: float = 1.0
    ) -> float:
        """Sync parameter-server round: every worker's gradient crosses
        the server's link in (push), and parameters cross out (pull).
        The server NIC serializes 2 × W × nbytes (the §2.3 bottleneck)."""
        if nbytes <= 0 or num_workers < 1:
            return 0.0
        bandwidth = self.bottleneck_bandwidth(num_workers + 1) * bandwidth_factor
        transfer = 2.0 * num_workers * (nbytes + self.ramp_bytes) / bandwidth
        return self.launch_overhead + 2 * num_workers * self.hop_latency(
            num_workers + 1
        ) + transfer

    def broadcast_time(self, nbytes: float, world_size: int) -> float:
        """Binomial-tree broadcast: log2(p) rounds of the full payload."""
        if world_size <= 1 or nbytes <= 0:
            return 0.0
        rounds = max(1, (world_size - 1).bit_length())
        bandwidth = self.bottleneck_bandwidth(world_size)
        return self.launch_overhead + rounds * (
            self.hop_latency(world_size)
            + max((nbytes + self.ramp_bytes) / bandwidth, self.min_message_time)
        )

    def allgather_time(self, nbytes: float, world_size: int) -> float:
        if world_size <= 1 or nbytes <= 0:
            return 0.0
        p = world_size
        bandwidth = self.bottleneck_bandwidth(p)
        transfer = ((p - 1) * nbytes + self.ramp_bytes) / bandwidth
        return self.launch_overhead + (p - 1) * self.hop_latency(p) + transfer

    # ------------------------------------------------------------------
    def async_batch_time(self, op_bytes: float, num_ops: int, world_size: int) -> float:
        """Total time for ``num_ops`` AllReduces launched asynchronously.

        This is the Fig. 2(a,b) measurement: launch all, block on all.
        Transfers pipeline on the link, so steady-state bandwidth is
        paid once for the total payload, while launch overhead, hop
        latency, and the ramp are paid per operation.
        """
        if num_ops <= 0:
            return 0.0
        if world_size <= 1:
            return num_ops * self.launch_overhead
        p = world_size
        bandwidth = self.bottleneck_bandwidth(p)
        total_bytes = op_bytes * num_ops
        transfer = 2.0 * (p - 1) / p * total_bytes / bandwidth
        per_op = (
            self.launch_overhead
            + 2.0 * (p - 1) * self.hop_latency(p)
            + self.ramp_bytes / bandwidth
        )
        return num_ops * per_op + transfer

    def sweep_total_time(
        self, total_params: int, params_per_op: int, world_size: int = 2
    ) -> float:
        """Fig. 2(a,b): AllReduce ``total_params`` fp32 values in slices
        of ``params_per_op`` each."""
        num_ops = max(1, round(total_params / params_per_op))
        return self.async_batch_time(params_per_op * FLOAT32_BYTES, num_ops, world_size)


class NcclCostModel(CollectiveCostModel):
    """NCCL over NVLink (intra-server) and the rack network (inter)."""

    def __init__(self, cluster: Optional[ClusterSpec] = None):
        super().__init__(
            name="nccl",
            launch_overhead=12e-6,
            intra_bandwidth=40e9,
            inter_bandwidth=2.6e9,
            intra_hop_latency=1.2e-6,
            inter_hop_latency=5e-6,
            ramp_bytes=1.5e6,
            link_capacity_intra=120e9,
            link_capacity_inter=9e9,
            min_message_time=2e-6,
            cluster=cluster or ClusterSpec(),
        )


class GlooCostModel(CollectiveCostModel):
    """Gloo on CPU tensors over TCP: high overheads, low bandwidth.

    Adds a host-side reduction cost per byte — on Gloo the summation
    runs on CPU cores, the second reason large tensors stop helping
    (Fig. 2(b)'s plateau past ~500 K parameters).
    """

    def __init__(self, cluster: Optional[ClusterSpec] = None):
        super().__init__(
            name="gloo",
            launch_overhead=160e-6,
            intra_bandwidth=1.3e9,
            inter_bandwidth=1.0e9,
            intra_hop_latency=20e-6,
            inter_hop_latency=30e-6,
            ramp_bytes=0.4e6,
            link_capacity_intra=2.4e9,
            link_capacity_inter=1.8e9,
            min_message_time=20e-6,
            cluster=cluster or ClusterSpec(),
        )
        self.cpu_reduce_bandwidth = 6e9  # bytes/s of local summation
        # Beyond the cache-friendly regime the host-side reduction slows
        # down superlinearly; this is why huge Gloo buckets stop paying
        # (the Fig. 7(b)/(d) preference for small buckets on Gloo).
        self.cpu_cache_friendly_bytes = 8e6

    def _cpu_reduce_time(self, nbytes: float) -> float:
        factor = 1.0 + min(nbytes / self.cpu_cache_friendly_bytes, 4.0)
        return nbytes / self.cpu_reduce_bandwidth * factor

    def allreduce_time(
        self, nbytes: float, world_size: int, bandwidth_factor: float = 1.0
    ) -> float:
        base = super().allreduce_time(nbytes, world_size, bandwidth_factor)
        if world_size <= 1 or nbytes <= 0:
            return base
        return base + self._cpu_reduce_time(nbytes)

    def async_batch_time(self, op_bytes: float, num_ops: int, world_size: int) -> float:
        base = super().async_batch_time(op_bytes, num_ops, world_size)
        if world_size <= 1:
            return base
        return base + num_ops * self._cpu_reduce_time(op_bytes)


def cost_model_for(backend: str, cluster: Optional[ClusterSpec] = None) -> CollectiveCostModel:
    """Cost model matching a ``ProcessGroup`` backend name."""
    backend = backend.lower()
    if backend == "nccl":
        return NcclCostModel(cluster)
    if backend == "gloo":
        return GlooCostModel(cluster)
    raise ValueError(f"no cost model for backend {backend!r}")
