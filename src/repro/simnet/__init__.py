"""Hardware and network simulation substrate.

The paper's latency numbers come from V100 servers with NVLink,
100 Gb/s NICs, and the NCCL/Gloo libraries.  This package models that
hardware analytically:

* :mod:`~repro.simnet.topology` — the 8-GPU server interconnect of
  Fig. 5 (NV1/NV2/NODE link tiers) and multi-machine cluster specs.
* :mod:`~repro.simnet.cost_model` — alpha–beta collective cost models
  with NCCL and Gloo personalities, calibrated so the Fig. 2(a,b)
  curves reproduce (NCCL keeps improving past 20 M parameters per
  AllReduce; Gloo saturates near 500 K).
* :mod:`~repro.simnet.device` — GPU/CPU backward-compute profiles
  calibrated to Fig. 2(c,d) (ResNet152: ~250 ms GPU, ~6 s CPU).
* :mod:`~repro.simnet.entitlement` — the shared-entitlement environment
  of §5.3: heterogeneous, occasionally congested machines at larger
  scales (including the paper's observed 128→256 GPU slowdown jump and
  the anomalous 16-GPU BERT run).
"""

from repro.simnet.topology import (
    LinkType,
    ServerTopology,
    ClusterSpec,
    dgx1_topology,
)
from repro.simnet.cost_model import (
    CollectiveCostModel,
    NcclCostModel,
    GlooCostModel,
    cost_model_for,
)
from repro.simnet.device import DeviceProfile, GPU_V100, CPU_SERVER
from repro.simnet.entitlement import SharedEntitlement

__all__ = [
    "LinkType",
    "ServerTopology",
    "ClusterSpec",
    "dgx1_topology",
    "CollectiveCostModel",
    "NcclCostModel",
    "GlooCostModel",
    "cost_model_for",
    "DeviceProfile",
    "GPU_V100",
    "CPU_SERVER",
    "SharedEntitlement",
]
