"""The shared-entitlement environment (paper §5, §5.3).

Experiments beyond 32 GPUs ran on a large *shared* cluster: jobs land on
different machines, links may be slow or congested, and stragglers grow
with scale.  The paper explicitly attributes two artifacts to this
environment:

* a sudden latency jump for every NCCL experiment when scaling from 128
  to 256 GPUs ("caused by slow or congested links among some of those
  256 nodes"), and
* an anomalously slow 16-GPU BERT run (Fig. 9(c)).

``SharedEntitlement`` encodes that environment as deterministic
per-scale bandwidth/straggler factors so benchmark runs are
reproducible.  Exclusive-cluster experiments (≤32 GPUs on the 4-server
rack) use ``ideal()``, which applies no degradation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np


@dataclass
class SharedEntitlement:
    """Deterministic model of the shared cluster's misbehavior.

    ``bandwidth_factor(world)`` scales effective inter-server bandwidth
    (1.0 = healthy); ``straggler_factor(world)`` multiplies iteration
    latency to model the slowest participant.
    """

    #: Baseline bandwidth health per world size; intermediate sizes
    #: interpolate geometrically.  The 256 entry reproduces the paper's
    #: observed 128 -> 256 congestion jump.
    bandwidth_profile: Dict[int, float] = field(
        default_factory=lambda: {
            1: 1.0,
            8: 1.0,
            16: 0.95,
            32: 0.90,
            64: 0.80,
            128: 0.68,
            256: 0.60,
        }
    )
    #: Extra per-world-size anomalies (e.g. the slow 16-GPU BERT job).
    anomalies: Dict[int, float] = field(default_factory=dict)
    #: Straggler growth: latency multiplier ~ 1 + coeff * log2(world).
    straggler_coefficient: float = 0.012
    seed: int = 2020

    @classmethod
    def ideal(cls) -> "SharedEntitlement":
        """The exclusive 32-GPU cluster: no degradation, no stragglers."""
        return cls(
            bandwidth_profile={1: 1.0},
            anomalies={},
            straggler_coefficient=0.0,
        )

    def bandwidth_factor(self, world_size: int) -> float:
        profile = sorted(self.bandwidth_profile.items())
        factor = profile[0][1]
        previous_size, previous_factor = profile[0]
        for size, value in profile:
            if world_size >= size:
                previous_size, previous_factor = size, value
                factor = value
            else:
                # Geometric interpolation between calibration points.
                span = np.log2(size) - np.log2(previous_size)
                pos = (np.log2(world_size) - np.log2(previous_size)) / span
                factor = float(previous_factor * (value / previous_factor) ** pos)
                break
        anomaly = self.anomalies.get(world_size, 1.0)
        return factor * anomaly

    def straggler_factor(self, world_size: int) -> float:
        if world_size <= 1 or self.straggler_coefficient == 0.0:
            return 1.0
        return 1.0 + self.straggler_coefficient * float(np.log2(world_size))

    def iteration_noise(self, world_size: int, iteration: int) -> float:
        """Deterministic multiplicative per-iteration noise (outliers grow
        with scale, as in the wider whiskers of Fig. 8)."""
        rng = np.random.default_rng((self.seed, world_size, iteration))
        sigma = 0.01 + 0.004 * np.log2(max(world_size, 2))
        return float(np.exp(rng.normal(0.0, sigma)))
