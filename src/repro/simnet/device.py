"""Compute-device profiles (paper Fig. 2(c,d)).

A :class:`DeviceProfile` scales a model's calibrated V100 compute
anchors onto a device.  Calibration anchors from the paper:

* ResNet152 (~60 M parameters) backward: ~250 ms on a V100-class GPU,
  ~6 s on server CPUs (Fig. 2(c,d)) — hence the CPU profile is 24×
  slower.
* Backward ≈ 2× forward cost (two GEMMs per layer in backward versus
  one in forward).

Per-parameter backward time is distributed proportionally to element
counts (a serviceable FLOP proxy for the conv/linear layers that
dominate), with deterministic per-run jitter producing the
measured-range bands of Fig. 2(c,d).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DeviceProfile:
    """Throughput description of one compute device.

    ``speed_factor`` divides the model's V100-calibrated compute times:
    1.0 is a V100, 1/24 is the paper's CPU server.
    """

    name: str
    speed_factor: float = 1.0
    #: Fixed per-tensor kernel-launch overhead, seconds.
    per_tensor_overhead: float = 4e-6
    #: Relative std-dev of run-to-run jitter.
    jitter: float = 0.04

    def backward_time(self, model) -> float:
        """Total backward compute for a ``ModelProfile``."""
        return (
            model.v100_backward_seconds / self.speed_factor
            + model.num_tensors * self.per_tensor_overhead
        )

    def forward_time(self, model) -> float:
        return (
            model.v100_forward_seconds / self.speed_factor
            + model.num_tensors * self.per_tensor_overhead * 0.5
        )

    def optimizer_time(self, model) -> float:
        """SGD-style update: memory-bound pass over all parameters."""
        return 0.05 * model.v100_backward_seconds / self.speed_factor


GPU_V100 = DeviceProfile(name="V100", speed_factor=1.0, per_tensor_overhead=4e-6, jitter=0.04)

# Fig. 2(d): the same ResNet152 backward takes ~6 s on host CPUs (24x).
CPU_SERVER = DeviceProfile(
    name="cpu-server", speed_factor=1.0 / 24.0, per_tensor_overhead=8e-6, jitter=0.08
)
