"""GPU interconnect topology (paper Fig. 5).

The evaluation cluster: 4 servers in one rack, each with 8 Tesla V100s
in an NVLink hybrid cube-mesh, connected by Mellanox ConnectX-4
100 Gb/s NICs.  ``dgx1_topology`` reproduces the Fig. 5 connection
matrix: each GPU reaches some peers over double NVLink (NV2), some over
single NVLink (NV1), and the rest through the host (NODE).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple


class LinkType(enum.Enum):
    """Interconnect tiers, fastest to slowest."""

    NV2 = "NV2"  # two bonded NVLink lanes
    NV1 = "NV1"  # one NVLink lane
    NODE = "NODE"  # PCIe + host bridge within a server
    NIC = "NIC"  # network card between servers
    SELF = "X"


#: Unidirectional bandwidth per link type, bytes/second.
LINK_BANDWIDTH: Dict[LinkType, float] = {
    LinkType.NV2: 50e9,
    LinkType.NV1: 25e9,
    LinkType.NODE: 10e9,
    LinkType.NIC: 12.5e9,  # 100 Gb/s
    LinkType.SELF: float("inf"),
}

#: Per-hop latency, seconds.
LINK_LATENCY: Dict[LinkType, float] = {
    LinkType.NV2: 1.5e-6,
    LinkType.NV1: 2.0e-6,
    LinkType.NODE: 4.0e-6,
    LinkType.NIC: 12.0e-6,
    LinkType.SELF: 0.0,
}


@dataclass(frozen=True)
class ServerTopology:
    """Connection matrix between the GPUs of one server."""

    num_gpus: int
    links: Tuple[Tuple[LinkType, ...], ...]

    def link(self, a: int, b: int) -> LinkType:
        return self.links[a][b]

    def bandwidth(self, a: int, b: int) -> float:
        return LINK_BANDWIDTH[self.link(a, b)]

    def ring_bandwidth(self, ring: List[int]) -> float:
        """Bottleneck bandwidth of a ring visiting ``ring`` in order."""
        if len(ring) <= 1:
            return float("inf")
        hops = zip(ring, ring[1:] + ring[:1])
        return min(self.bandwidth(a, b) for a, b in hops)

    def render(self) -> str:
        """Fig. 5-style text matrix."""
        header = "     " + " ".join(f"GPU{j}" for j in range(self.num_gpus))
        rows = [header]
        for i in range(self.num_gpus):
            cells = " ".join(f"{self.links[i][j].value:>4}" for j in range(self.num_gpus))
            rows.append(f"GPU{i} {cells}")
        return "\n".join(rows)


def dgx1_topology() -> ServerTopology:
    """The 8-GPU hybrid cube-mesh of the paper's servers (Fig. 5).

    Two quads (0–3 and 4–7); within each quad a mix of NV1/NV2 links,
    one NVLink per GPU crossing to the peer quad, remaining pairs
    communicating through the host (NODE).
    """
    n = 8
    matrix = [[LinkType.NODE] * n for _ in range(n)]
    for i in range(n):
        matrix[i][i] = LinkType.SELF

    def connect(a: int, b: int, link: LinkType) -> None:
        matrix[a][b] = link
        matrix[b][a] = link

    # Intra-quad rings with doubled links on the ring edges.
    for base in (0, 4):
        connect(base + 0, base + 1, LinkType.NV1)
        connect(base + 1, base + 2, LinkType.NV2)
        connect(base + 2, base + 3, LinkType.NV1)
        connect(base + 3, base + 0, LinkType.NV2)
        connect(base + 0, base + 2, LinkType.NV1)
        connect(base + 1, base + 3, LinkType.NV1)
    # Cross-quad NVLinks (the cube edges).
    connect(0, 4, LinkType.NV2)
    connect(1, 5, LinkType.NV1)
    connect(2, 6, LinkType.NV2)
    connect(3, 7, LinkType.NV1)
    return ServerTopology(n, tuple(tuple(row) for row in matrix))


@dataclass(frozen=True)
class ClusterSpec:
    """A multi-server cluster, as in the paper's exclusive 32-GPU setup."""

    num_servers: int = 4
    gpus_per_server: int = 8
    server: ServerTopology = None  # type: ignore[assignment]
    nic_bandwidth: float = LINK_BANDWIDTH[LinkType.NIC]

    def __post_init__(self):
        if self.server is None:
            object.__setattr__(self, "server", dgx1_topology())

    @property
    def total_gpus(self) -> int:
        return self.num_servers * self.gpus_per_server

    def placement(self, world_size: int) -> List[Tuple[int, int]]:
        """(server, local gpu) for each rank, packing servers first."""
        if world_size > self.total_gpus:
            raise ValueError(
                f"world size {world_size} exceeds cluster capacity {self.total_gpus}"
            )
        return [
            (rank // self.gpus_per_server, rank % self.gpus_per_server)
            for rank in range(world_size)
        ]

    def spans_servers(self, world_size: int) -> bool:
        return world_size > self.gpus_per_server

    def ring_bottleneck_bandwidth(self, world_size: int) -> float:
        """Bottleneck bandwidth of the natural rank-order ring.

        Within one server this is the NVLink ring bottleneck; as soon as
        the ring crosses a server boundary the NIC dominates — the
        paper's §6.1 resource-allocation lesson.
        """
        if world_size <= 1:
            return float("inf")
        if not self.spans_servers(world_size):
            # NCCL searches for NVLink-only rings; on the cube-mesh the
            # 8-GPU ring 0-1-2-3-7-6-5-4 stays on NVLink throughout.
            if world_size == self.server.num_gpus == 8:
                ring = [0, 1, 2, 3, 7, 6, 5, 4]
            else:
                ring = list(range(world_size))
            return self.server.ring_bandwidth(ring)
        return self.nic_bandwidth

    def hop_latency(self, world_size: int) -> float:
        """Per-hop latency of the bottleneck link class in the ring."""
        if world_size <= 1:
            return 0.0
        if not self.spans_servers(world_size):
            return LINK_LATENCY[LinkType.NV1]
        return LINK_LATENCY[LinkType.NIC]
