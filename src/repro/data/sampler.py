"""Index samplers, including the distributed shard sampler."""

from __future__ import annotations

from typing import Iterator, Sized

import numpy as np


class SequentialSampler:
    def __init__(self, data_source: Sized):
        self.data_source = data_source

    def __iter__(self) -> Iterator[int]:
        return iter(range(len(self.data_source)))

    def __len__(self) -> int:
        return len(self.data_source)


class RandomSampler:
    """Shuffles with a per-instance seeded generator (epoch-stable)."""

    def __init__(self, data_source: Sized, seed: int = 0):
        self.data_source = data_source
        self.seed = seed
        self.epoch = 0

    def set_epoch(self, epoch: int) -> None:
        self.epoch = epoch

    def __iter__(self) -> Iterator[int]:
        rng = np.random.default_rng((self.seed, self.epoch))
        return iter(rng.permutation(len(self.data_source)).tolist())

    def __len__(self) -> int:
        return len(self.data_source)


class DistributedSampler:
    """Partitions indices across ranks, one disjoint shard each.

    All ranks shuffle with the same (seed, epoch) so their shards are
    disjoint and jointly cover the dataset; ``set_epoch`` reshuffles per
    epoch exactly as in ``torch.utils.data.DistributedSampler``.  The
    dataset is padded by wrapping around so every rank sees the same
    number of samples — a DDP requirement, since a rank with fewer
    batches would leave the others hanging in AllReduce.
    """

    def __init__(
        self,
        data_source: Sized,
        num_replicas: int,
        rank: int,
        shuffle: bool = True,
        seed: int = 0,
    ):
        if not 0 <= rank < num_replicas:
            raise ValueError(f"rank {rank} out of range for {num_replicas} replicas")
        self.data_source = data_source
        self.num_replicas = num_replicas
        self.rank = rank
        self.shuffle = shuffle
        self.seed = seed
        self.epoch = 0
        self.num_samples = -(-len(data_source) // num_replicas)  # ceil
        self.total_size = self.num_samples * num_replicas

    def set_epoch(self, epoch: int) -> None:
        self.epoch = epoch

    def __iter__(self) -> Iterator[int]:
        n = len(self.data_source)
        if self.shuffle:
            rng = np.random.default_rng((self.seed, self.epoch))
            indices = rng.permutation(n).tolist()
        else:
            indices = list(range(n))
        # Pad by wrap-around (possibly several times for tiny datasets)
        # so the split is even.
        if self.total_size > n:
            repeats = -(-self.total_size // n)
            indices = (indices * repeats)[: self.total_size]
        shard = indices[self.rank : self.total_size : self.num_replicas]
        assert len(shard) == self.num_samples
        return iter(shard)

    def __len__(self) -> int:
        return self.num_samples
