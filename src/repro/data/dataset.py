"""Dataset abstractions."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


class Dataset:
    """Map-style dataset: ``__len__`` plus integer ``__getitem__``."""

    def __len__(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def __getitem__(self, index: int):  # pragma: no cover - abstract
        raise NotImplementedError


class TensorDataset(Dataset):
    """Zips equally sized arrays into (x, y, ...) samples."""

    def __init__(self, *arrays: np.ndarray):
        if not arrays:
            raise ValueError("TensorDataset needs at least one array")
        length = len(arrays[0])
        for array in arrays:
            if len(array) != length:
                raise ValueError("all arrays must have the same first dimension")
        self.arrays: Tuple[np.ndarray, ...] = tuple(np.asarray(a) for a in arrays)

    def __len__(self) -> int:
        return len(self.arrays[0])

    def __getitem__(self, index: int):
        items = tuple(array[index] for array in self.arrays)
        return items if len(items) > 1 else items[0]
