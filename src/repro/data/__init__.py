"""Datasets, samplers, and loading.

``DistributedSampler`` partitions a dataset across ranks — what keeps
model replicas seeing disjoint input shards, the other half of data
parallel training besides gradient synchronization.
"""

from repro.data.dataset import Dataset, TensorDataset
from repro.data.sampler import DistributedSampler, SequentialSampler, RandomSampler
from repro.data.dataloader import DataLoader
from repro.data.synthetic import (
    make_regression,
    make_classification,
    synthetic_mnist,
)

__all__ = [
    "Dataset",
    "TensorDataset",
    "DistributedSampler",
    "SequentialSampler",
    "RandomSampler",
    "DataLoader",
    "make_regression",
    "make_classification",
    "synthetic_mnist",
]
