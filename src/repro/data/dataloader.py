"""Minimal batching data loader."""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.autograd.tensor import Tensor
from repro.data.dataset import Dataset
from repro.data.sampler import SequentialSampler


class DataLoader:
    """Batches dataset samples into stacked Tensors.

    Float arrays become ``Tensor``s; integer arrays stay numpy (label
    convention, matching how the losses accept targets).
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int = 1,
        sampler=None,
        drop_last: bool = False,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.dataset = dataset
        self.batch_size = batch_size
        self.sampler = sampler if sampler is not None else SequentialSampler(dataset)
        self.drop_last = drop_last

    def __iter__(self) -> Iterator:
        batch_indices = []
        for index in self.sampler:
            batch_indices.append(index)
            if len(batch_indices) == self.batch_size:
                yield self._collate(batch_indices)
                batch_indices = []
        if batch_indices and not self.drop_last:
            yield self._collate(batch_indices)

    def __len__(self) -> int:
        n = len(self.sampler)
        if self.drop_last:
            return n // self.batch_size
        return -(-n // self.batch_size)

    def _collate(self, indices):
        samples = [self.dataset[i] for i in indices]
        first = samples[0]
        if not isinstance(first, tuple):
            return _stack([s for s in samples])
        columns = list(zip(*samples))
        return tuple(_stack(list(column)) for column in columns)


def _stack(items):
    stacked = np.stack([np.asarray(item) for item in items])
    if stacked.dtype.kind == "f":
        return Tensor(stacked)
    return stacked
