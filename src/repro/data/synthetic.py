"""Synthetic datasets.

The paper's latency experiments use "randomly generated synthetic inputs
and labels" (§5) — provided here by :func:`make_regression` and
:func:`make_classification`.  The convergence experiment (Fig. 11) uses
MNIST; :func:`synthetic_mnist` substitutes a procedurally generated
28×28 ten-class digit-like dataset that exercises the identical training
loop (documented in DESIGN.md).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.data.dataset import TensorDataset


def make_regression(
    num_samples: int, num_features: int, num_outputs: int = 1, noise: float = 0.1, seed: int = 0
) -> TensorDataset:
    """Linear-plus-noise regression data."""
    rng = np.random.default_rng(seed)
    true_w = rng.standard_normal((num_features, num_outputs))
    x = rng.standard_normal((num_samples, num_features))
    y = x @ true_w + noise * rng.standard_normal((num_samples, num_outputs))
    return TensorDataset(x, y)


def make_classification(
    num_samples: int, num_features: int, num_classes: int, separation: float = 2.0, seed: int = 0
) -> TensorDataset:
    """Gaussian blobs, one per class."""
    rng = np.random.default_rng(seed)
    centers = separation * rng.standard_normal((num_classes, num_features))
    labels = rng.integers(0, num_classes, num_samples)
    x = centers[labels] + rng.standard_normal((num_samples, num_features))
    return TensorDataset(x, labels.astype(np.int64))


def _digit_prototypes(size: int, seed: int) -> np.ndarray:
    """Ten smooth, distinct 2-D intensity patterns standing in for digits."""
    rng = np.random.default_rng(seed)
    yy, xx = np.mgrid[0:size, 0:size] / (size - 1)
    prototypes = np.zeros((10, size, size))
    for digit in range(10):
        canvas = np.zeros((size, size))
        # Each class is a unique constellation of soft strokes/blobs.
        for _ in range(3 + digit % 3):
            cx, cy = rng.uniform(0.15, 0.85, 2)
            sx, sy = rng.uniform(0.05, 0.22, 2)
            angle = rng.uniform(0, np.pi)
            dx = (xx - cx) * np.cos(angle) + (yy - cy) * np.sin(angle)
            dy = -(xx - cx) * np.sin(angle) + (yy - cy) * np.cos(angle)
            canvas += np.exp(-(dx**2 / (2 * sx**2) + dy**2 / (2 * sy**2)))
        canvas /= canvas.max()
        prototypes[digit] = canvas
    return prototypes


def synthetic_mnist(
    num_samples: int = 2048, size: int = 28, noise: float = 0.25, seed: int = 0
) -> TensorDataset:
    """A ten-class 28×28 image dataset with MNIST-like difficulty.

    Samples are class prototypes plus pixel noise and ±2-pixel random
    translation, normalized to zero mean / unit variance like standard
    MNIST preprocessing.  Returns (images [N,1,28,28] float, labels int).
    """
    rng = np.random.default_rng(seed)
    prototypes = _digit_prototypes(size, seed=seed + 1)
    labels = rng.integers(0, 10, num_samples)
    images = np.empty((num_samples, 1, size, size))
    for i, label in enumerate(labels):
        img = prototypes[label]
        shift_y, shift_x = rng.integers(-2, 3, 2)
        img = np.roll(np.roll(img, shift_y, axis=0), shift_x, axis=1)
        img = img + noise * rng.standard_normal((size, size))
        images[i, 0] = img
    images = (images - images.mean()) / (images.std() + 1e-8)
    return TensorDataset(images, labels.astype(np.int64))
