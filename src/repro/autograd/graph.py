"""Autograd graph traversal utilities.

DDP's forward pass must discover which parameters *participate* in the
current iteration's graph (paper Algorithm 1, line 10): it walks the tape
from the forward outputs and collects every reachable ``AccumulateGrad``
node.  Parameters whose accumulators are unreachable would otherwise hang
the backward pass, because their hooks never fire (Fig. 3(b)).
"""

from __future__ import annotations

from typing import Iterable, List, Set

from repro.autograd.engine import AccumulateGrad


def collect_participating_accumulators(outputs: Iterable) -> Set[AccumulateGrad]:
    """All ``AccumulateGrad`` nodes reachable from ``outputs`` tensors."""
    found: Set[AccumulateGrad] = set()
    seen: Set[int] = set()
    stack: List[object] = []
    for out in outputs:
        node = getattr(out, "grad_fn", None)
        if node is None and getattr(out, "requires_grad", False) and out.is_leaf:
            found.add(out.accumulator())
        elif node is not None:
            stack.append(node)
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if isinstance(node, AccumulateGrad):
            found.add(node)
            continue
        for edge in node.next_edges:
            if edge is not None and id(edge) not in seen:
                stack.append(edge)
    return found


def graph_node_count(outputs: Iterable) -> int:
    """Number of distinct tape nodes reachable from ``outputs`` (diagnostics)."""
    seen: Set[int] = set()
    stack = [out.grad_fn for out in outputs if getattr(out, "grad_fn", None) is not None]
    while stack:
        node = stack.pop()
        if id(node) in seen or node is None:
            continue
        seen.add(id(node))
        if isinstance(node, AccumulateGrad):
            continue
        stack.extend(edge for edge in node.next_edges if edge is not None)
    return len(seen)
