"""Differentiable primitive operations.

Every public function here builds (at most) one tape node via
``Function.apply``.  Higher-level layers (``repro.nn``) compose these
primitives, which keeps each backward rule small and independently
testable against numeric differentiation.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.autograd.function import Context, Function, unbroadcast
from repro.autograd.tensor import Tensor

# ---------------------------------------------------------------------
# elementwise arithmetic
# ---------------------------------------------------------------------


class Add(Function):
    @staticmethod
    def forward(ctx: Context, a, b):
        ctx.a_shape, ctx.b_shape = a.shape, b.shape
        return a + b

    @staticmethod
    def backward(ctx: Context, grad):
        return unbroadcast(grad, ctx.a_shape), unbroadcast(grad, ctx.b_shape)


class Sub(Function):
    @staticmethod
    def forward(ctx: Context, a, b):
        ctx.a_shape, ctx.b_shape = a.shape, b.shape
        return a - b

    @staticmethod
    def backward(ctx: Context, grad):
        return unbroadcast(grad, ctx.a_shape), unbroadcast(-grad, ctx.b_shape)


class Mul(Function):
    @staticmethod
    def forward(ctx: Context, a, b):
        ctx.save_for_backward(a, b)
        return a * b

    @staticmethod
    def backward(ctx: Context, grad):
        a, b = ctx.saved
        return unbroadcast(grad * b, a.shape), unbroadcast(grad * a, b.shape)


class Div(Function):
    @staticmethod
    def forward(ctx: Context, a, b):
        ctx.save_for_backward(a, b)
        return a / b

    @staticmethod
    def backward(ctx: Context, grad):
        a, b = ctx.saved
        grad_a = unbroadcast(grad / b, a.shape)
        grad_b = unbroadcast(-grad * a / (b * b), b.shape)
        return grad_a, grad_b


class Neg(Function):
    @staticmethod
    def forward(ctx: Context, a):
        return -a

    @staticmethod
    def backward(ctx: Context, grad):
        return (-grad,)


class Pow(Function):
    @staticmethod
    def forward(ctx: Context, a, exponent: float):
        ctx.save_for_backward(a)
        ctx.exponent = exponent
        return a**exponent

    @staticmethod
    def backward(ctx: Context, grad):
        (a,) = ctx.saved
        return (grad * ctx.exponent * a ** (ctx.exponent - 1), None)


class Clone(Function):
    @staticmethod
    def forward(ctx: Context, a):
        return a.copy()

    @staticmethod
    def backward(ctx: Context, grad):
        return (grad,)


# ---------------------------------------------------------------------
# transcendental / activation
# ---------------------------------------------------------------------


class Exp(Function):
    @staticmethod
    def forward(ctx: Context, a):
        out = np.exp(a)
        ctx.save_for_backward(out)
        return out

    @staticmethod
    def backward(ctx: Context, grad):
        (out,) = ctx.saved
        return (grad * out,)


class Log(Function):
    @staticmethod
    def forward(ctx: Context, a):
        ctx.save_for_backward(a)
        return np.log(a)

    @staticmethod
    def backward(ctx: Context, grad):
        (a,) = ctx.saved
        return (grad / a,)


class Tanh(Function):
    @staticmethod
    def forward(ctx: Context, a):
        out = np.tanh(a)
        ctx.save_for_backward(out)
        return out

    @staticmethod
    def backward(ctx: Context, grad):
        (out,) = ctx.saved
        return (grad * (1.0 - out * out),)


class Sigmoid(Function):
    @staticmethod
    def forward(ctx: Context, a):
        out = 1.0 / (1.0 + np.exp(-a))
        ctx.save_for_backward(out)
        return out

    @staticmethod
    def backward(ctx: Context, grad):
        (out,) = ctx.saved
        return (grad * out * (1.0 - out),)


class Relu(Function):
    @staticmethod
    def forward(ctx: Context, a):
        mask = a > 0
        ctx.save_for_backward(mask)
        return a * mask

    @staticmethod
    def backward(ctx: Context, grad):
        (mask,) = ctx.saved
        return (grad * mask,)


class Abs(Function):
    @staticmethod
    def forward(ctx: Context, a):
        ctx.save_for_backward(np.sign(a))
        return np.abs(a)

    @staticmethod
    def backward(ctx: Context, grad):
        (sign,) = ctx.saved
        return (grad * sign,)


class Sqrt(Function):
    @staticmethod
    def forward(ctx: Context, a):
        out = np.sqrt(a)
        ctx.save_for_backward(out)
        return out

    @staticmethod
    def backward(ctx: Context, grad):
        (out,) = ctx.saved
        return (grad / (2.0 * out),)


class Clamp(Function):
    """Clip values into [low, high]; gradient is 1 inside, 0 outside."""

    @staticmethod
    def forward(ctx: Context, a, low=None, high=None):
        mask = np.ones_like(a, dtype=bool)
        if low is not None:
            mask &= a >= low
        if high is not None:
            mask &= a <= high
        ctx.save_for_backward(mask)
        return np.clip(a, low, high)

    @staticmethod
    def backward(ctx: Context, grad):
        (mask,) = ctx.saved
        return (grad * mask, None, None)


class Stack(Function):
    @staticmethod
    def forward(ctx: Context, *arrays, axis: int = 0):
        ctx.axis = axis
        return np.stack(arrays, axis=axis)

    @staticmethod
    def backward(ctx: Context, grad):
        pieces = np.moveaxis(grad, ctx.axis, 0)
        return tuple(pieces[i] for i in range(pieces.shape[0]))


class Min(Function):
    @staticmethod
    def forward(ctx: Context, a, axis=None, keepdims: bool = False):
        out = a.min(axis=axis, keepdims=keepdims)
        ctx.save_for_backward(a, out)
        ctx.axis = axis
        ctx.keepdims = keepdims
        return out

    @staticmethod
    def backward(ctx: Context, grad):
        a, out = ctx.saved
        out_b = _expand_reduced(out, a.shape, ctx.axis, ctx.keepdims)
        grad_b = _expand_reduced(grad, a.shape, ctx.axis, ctx.keepdims)
        mask = (a == out_b).astype(np.float64)
        counts = mask.sum(axis=ctx.axis, keepdims=True) if ctx.axis is not None else mask.sum()
        return (grad_b * mask / counts, None, None)


class Gelu(Function):
    """Gaussian error linear unit (tanh approximation, as in BERT)."""

    _C = np.sqrt(2.0 / np.pi)

    @staticmethod
    def forward(ctx: Context, a):
        inner = Gelu._C * (a + 0.044715 * a**3)
        t = np.tanh(inner)
        ctx.save_for_backward(a, t)
        return 0.5 * a * (1.0 + t)

    @staticmethod
    def backward(ctx: Context, grad):
        a, t = ctx.saved
        d_inner = Gelu._C * (1.0 + 3 * 0.044715 * a**2)
        local = 0.5 * (1.0 + t) + 0.5 * a * (1.0 - t * t) * d_inner
        return (grad * local,)


# ---------------------------------------------------------------------
# linear algebra
# ---------------------------------------------------------------------


class MatMul(Function):
    @staticmethod
    def forward(ctx: Context, a, b):
        ctx.save_for_backward(a, b)
        return a @ b

    @staticmethod
    def backward(ctx: Context, grad):
        a, b = ctx.saved
        grad_a = grad @ np.swapaxes(b, -1, -2)
        grad_b = np.swapaxes(a, -1, -2) @ grad
        # Batched matmul broadcasts leading dims; fold them back.
        grad_a = unbroadcast(grad_a, a.shape)
        grad_b = unbroadcast(grad_b, b.shape)
        return grad_a, grad_b


class Transpose(Function):
    @staticmethod
    def forward(ctx: Context, a, axis0: int, axis1: int):
        ctx.axes = (axis0, axis1)
        return np.swapaxes(a, axis0, axis1)

    @staticmethod
    def backward(ctx: Context, grad):
        axis0, axis1 = ctx.axes
        return (np.swapaxes(grad, axis0, axis1), None, None)


class Reshape(Function):
    @staticmethod
    def forward(ctx: Context, a, shape: tuple):
        ctx.shape = a.shape
        return a.reshape(shape)

    @staticmethod
    def backward(ctx: Context, grad):
        return (grad.reshape(ctx.shape), None)


class GetItem(Function):
    """Indexing/slicing; backward scatter-adds, so fancy indexing with
    repeated indices (e.g. embedding lookups) accumulates correctly."""

    @staticmethod
    def forward(ctx: Context, a, index):
        ctx.shape = a.shape
        ctx.index = index
        return a[index]

    @staticmethod
    def backward(ctx: Context, grad):
        out = np.zeros(ctx.shape, dtype=np.float64)
        np.add.at(out, ctx.index, grad)
        return (out, None)


class Concat(Function):
    @staticmethod
    def forward(ctx: Context, *arrays, axis: int = 0):
        ctx.axis = axis
        ctx.sizes = [a.shape[axis] for a in arrays]
        return np.concatenate(arrays, axis=axis)

    @staticmethod
    def backward(ctx: Context, grad):
        splits = np.cumsum(ctx.sizes)[:-1]
        return tuple(np.split(grad, splits, axis=ctx.axis))


# ---------------------------------------------------------------------
# reductions
# ---------------------------------------------------------------------


class Sum(Function):
    @staticmethod
    def forward(ctx: Context, a, axis=None, keepdims: bool = False):
        ctx.shape = a.shape
        ctx.axis = axis
        ctx.keepdims = keepdims
        return a.sum(axis=axis, keepdims=keepdims)

    @staticmethod
    def backward(ctx: Context, grad):
        grad = _expand_reduced(grad, ctx.shape, ctx.axis, ctx.keepdims)
        return (np.broadcast_to(grad, ctx.shape).copy(), None, None)


class Mean(Function):
    @staticmethod
    def forward(ctx: Context, a, axis=None, keepdims: bool = False):
        ctx.shape = a.shape
        ctx.axis = axis
        ctx.keepdims = keepdims
        ctx.count = a.size if axis is None else np.prod(
            [a.shape[ax] for ax in _normalize_axis(axis, a.ndim)]
        )
        return a.mean(axis=axis, keepdims=keepdims)

    @staticmethod
    def backward(ctx: Context, grad):
        grad = _expand_reduced(grad, ctx.shape, ctx.axis, ctx.keepdims)
        out = np.broadcast_to(grad, ctx.shape) / ctx.count
        return (out.copy(), None, None)


class Max(Function):
    @staticmethod
    def forward(ctx: Context, a, axis=None, keepdims: bool = False):
        out = a.max(axis=axis, keepdims=keepdims)
        ctx.save_for_backward(a, out)
        ctx.axis = axis
        ctx.keepdims = keepdims
        return out

    @staticmethod
    def backward(ctx: Context, grad):
        a, out = ctx.saved
        out_b = _expand_reduced(out, a.shape, ctx.axis, ctx.keepdims)
        grad_b = _expand_reduced(grad, a.shape, ctx.axis, ctx.keepdims)
        mask = (a == out_b).astype(np.float64)
        # Split gradient evenly among ties, matching numeric-gradient tests.
        counts = mask.sum(axis=ctx.axis, keepdims=True) if ctx.axis is not None else mask.sum()
        return (grad_b * mask / counts, None, None)


class LogSoftmax(Function):
    @staticmethod
    def forward(ctx: Context, a, axis: int = -1):
        shifted = a - a.max(axis=axis, keepdims=True)
        logsumexp = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out = shifted - logsumexp
        ctx.save_for_backward(out)
        ctx.axis = axis
        return out

    @staticmethod
    def backward(ctx: Context, grad):
        (out,) = ctx.saved
        softmax = np.exp(out)
        return (grad - softmax * grad.sum(axis=ctx.axis, keepdims=True), None)


class Softmax(Function):
    @staticmethod
    def forward(ctx: Context, a, axis: int = -1):
        shifted = a - a.max(axis=axis, keepdims=True)
        e = np.exp(shifted)
        out = e / e.sum(axis=axis, keepdims=True)
        ctx.save_for_backward(out)
        ctx.axis = axis
        return out

    @staticmethod
    def backward(ctx: Context, grad):
        (out,) = ctx.saved
        dot = (grad * out).sum(axis=ctx.axis, keepdims=True)
        return (out * (grad - dot), None)


# ---------------------------------------------------------------------
# convolution / pooling (im2col based)
# ---------------------------------------------------------------------


class Conv2d(Function):
    """2-D cross-correlation over NCHW inputs via im2col.

    Weight layout is ``(out_channels, in_channels, kh, kw)``; stride and
    zero padding are symmetric.
    """

    @staticmethod
    def forward(ctx: Context, x, weight, stride: int = 1, padding: int = 0):
        n, c, h, w = x.shape
        oc, ic, kh, kw = weight.shape
        if ic != c:
            raise ValueError(f"conv2d channel mismatch: input {c}, weight {ic}")
        cols, out_h, out_w = _im2col(x, kh, kw, stride, padding)
        w_mat = weight.reshape(oc, -1)
        out = (cols @ w_mat.T).reshape(n, out_h, out_w, oc).transpose(0, 3, 1, 2)
        ctx.save_for_backward(cols, weight)
        ctx.x_shape = x.shape
        ctx.stride = stride
        ctx.padding = padding
        return np.ascontiguousarray(out)

    @staticmethod
    def backward(ctx: Context, grad):
        cols, weight = ctx.saved
        n, c, h, w = ctx.x_shape
        oc, ic, kh, kw = weight.shape
        grad_mat = grad.transpose(0, 2, 3, 1).reshape(-1, oc)
        grad_weight = (grad_mat.T @ cols).reshape(weight.shape)
        grad_cols = grad_mat @ weight.reshape(oc, -1)
        grad_x = _col2im(
            grad_cols, ctx.x_shape, kh, kw, ctx.stride, ctx.padding
        )
        return grad_x, grad_weight, None, None


class MaxPool2d(Function):
    @staticmethod
    def forward(ctx: Context, x, kernel: int = 2, stride: Optional[int] = None):
        stride = stride or kernel
        n, c, h, w = x.shape
        out_h = (h - kernel) // stride + 1
        out_w = (w - kernel) // stride + 1
        windows = np.lib.stride_tricks.sliding_window_view(x, (kernel, kernel), axis=(2, 3))
        windows = windows[:, :, ::stride, ::stride, :, :]
        flat = windows.reshape(n, c, out_h, out_w, -1)
        argmax = flat.argmax(axis=-1)
        out = np.take_along_axis(flat, argmax[..., None], axis=-1)[..., 0]
        ctx.argmax = argmax
        ctx.x_shape = x.shape
        ctx.kernel = kernel
        ctx.stride = stride
        return np.ascontiguousarray(out)

    @staticmethod
    def backward(ctx: Context, grad):
        n, c, h, w = ctx.x_shape
        kernel, stride = ctx.kernel, ctx.stride
        out_h, out_w = grad.shape[2], grad.shape[3]
        grad_x = np.zeros(ctx.x_shape, dtype=np.float64)
        ki = ctx.argmax // kernel
        kj = ctx.argmax % kernel
        ii = (np.arange(out_h)[None, None, :, None] * stride) + ki
        jj = (np.arange(out_w)[None, None, None, :] * stride) + kj
        nn = np.arange(n)[:, None, None, None]
        cc = np.arange(c)[None, :, None, None]
        np.add.at(grad_x, (nn, cc, ii, jj), grad)
        return (grad_x, None, None)


class AvgPool2d(Function):
    @staticmethod
    def forward(ctx: Context, x, kernel: int = 2, stride: Optional[int] = None):
        stride = stride or kernel
        n, c, h, w = x.shape
        out_h = (h - kernel) // stride + 1
        out_w = (w - kernel) // stride + 1
        windows = np.lib.stride_tricks.sliding_window_view(x, (kernel, kernel), axis=(2, 3))
        windows = windows[:, :, ::stride, ::stride, :, :]
        out = windows.mean(axis=(-1, -2))
        ctx.x_shape = x.shape
        ctx.kernel = kernel
        ctx.stride = stride
        return np.ascontiguousarray(out)

    @staticmethod
    def backward(ctx: Context, grad):
        kernel, stride = ctx.kernel, ctx.stride
        n, c, h, w = ctx.x_shape
        out_h, out_w = grad.shape[2], grad.shape[3]
        grad_x = np.zeros(ctx.x_shape, dtype=np.float64)
        share = grad / (kernel * kernel)
        for ki in range(kernel):
            for kj in range(kernel):
                grad_x[:, :, ki : ki + out_h * stride : stride, kj : kj + out_w * stride : stride] += share
        return (grad_x, None, None)


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int, padding: int):
    n, c, h, w = x.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    ph, pw = x.shape[2], x.shape[3]
    out_h = (ph - kh) // stride + 1
    out_w = (pw - kw) // stride + 1
    windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride, :, :]
    # (N, out_h, out_w, C*kh*kw)
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * out_h * out_w, c * kh * kw)
    return np.ascontiguousarray(cols), out_h, out_w


def _col2im(cols: np.ndarray, x_shape: tuple, kh: int, kw: int, stride: int, padding: int):
    n, c, h, w = x_shape
    ph, pw = h + 2 * padding, w + 2 * padding
    out_h = (ph - kh) // stride + 1
    out_w = (pw - kw) // stride + 1
    padded = np.zeros((n, c, ph, pw), dtype=np.float64)
    cols = cols.reshape(n, out_h, out_w, c, kh, kw).transpose(0, 3, 1, 2, 4, 5)
    for ki in range(kh):
        for kj in range(kw):
            padded[:, :, ki : ki + out_h * stride : stride, kj : kj + out_w * stride : stride] += cols[
                :, :, :, :, ki, kj
            ]
    if padding:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


# ---------------------------------------------------------------------
# public functional wrappers
# ---------------------------------------------------------------------


def add(a, b):
    return Add.apply(a, b)


def sub(a, b):
    return Sub.apply(a, b)


def mul(a, b):
    return Mul.apply(a, b)


def div(a, b):
    return Div.apply(a, b)


def neg(a):
    return Neg.apply(a)


def pow(a, exponent):  # noqa: A001 - mirrors torch naming
    return Pow.apply(a, exponent)


def clone(a):
    return Clone.apply(a)


def exp(a):
    return Exp.apply(a)


def log(a):
    return Log.apply(a)


def tanh(a):
    return Tanh.apply(a)


def sigmoid(a):
    return Sigmoid.apply(a)


def relu(a):
    return Relu.apply(a)


def gelu(a):
    return Gelu.apply(a)


def abs(a):  # noqa: A001 - mirrors torch naming
    return Abs.apply(a)


def sqrt(a):
    return Sqrt.apply(a)


def clamp(a, low=None, high=None):
    return Clamp.apply(a, low=low, high=high)


def stack(tensors, axis: int = 0):
    return Stack.apply(*tensors, axis=axis)


def min(a, axis=None, keepdims: bool = False):  # noqa: A001
    return Min.apply(a, axis=axis, keepdims=keepdims)


def split(a, sections: int, axis: int = 0):
    """Split into ``sections`` equal parts along ``axis`` (gradient flows
    through the underlying slicing)."""
    length = a.shape[axis]
    if length % sections:
        raise ValueError(f"cannot split axis of size {length} into {sections} parts")
    step = length // sections
    index: list = [slice(None)] * a.ndim
    parts = []
    for start in range(0, length, step):
        index[axis] = slice(start, start + step)
        parts.append(getitem(a, tuple(index)))
    return parts


def matmul(a, b):
    return MatMul.apply(a, b)


def transpose(a, axis0: int, axis1: int):
    return Transpose.apply(a, axis0, axis1)


def reshape(a, shape: tuple):
    return Reshape.apply(a, shape)


def getitem(a, index):
    return GetItem.apply(a, index)


def cat(tensors, axis: int = 0):
    return Concat.apply(*tensors, axis=axis)


def sum(a, axis=None, keepdims: bool = False):  # noqa: A001
    return Sum.apply(a, axis=axis, keepdims=keepdims)


def mean(a, axis=None, keepdims: bool = False):
    return Mean.apply(a, axis=axis, keepdims=keepdims)


def max(a, axis=None, keepdims: bool = False):  # noqa: A001
    return Max.apply(a, axis=axis, keepdims=keepdims)


def log_softmax(a, axis: int = -1):
    return LogSoftmax.apply(a, axis=axis)


def softmax(a, axis: int = -1):
    return Softmax.apply(a, axis=axis)


def conv2d(x, weight, stride: int = 1, padding: int = 0):
    return Conv2d.apply(x, weight, stride=stride, padding=padding)


def max_pool2d(x, kernel: int = 2, stride: Optional[int] = None):
    return MaxPool2d.apply(x, kernel=kernel, stride=stride)


def avg_pool2d(x, kernel: int = 2, stride: Optional[int] = None):
    return AvgPool2d.apply(x, kernel=kernel, stride=stride)


# ---------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------


def _normalize_axis(axis, ndim: int) -> Tuple[int, ...]:
    if axis is None:
        return tuple(range(ndim))
    if isinstance(axis, int):
        axis = (axis,)
    return tuple(ax % ndim for ax in axis)


def _expand_reduced(grad: np.ndarray, shape: tuple, axis, keepdims: bool) -> np.ndarray:
    """Reinsert reduced axes so ``grad`` broadcasts against ``shape``."""
    grad = np.asarray(grad)
    if axis is None or keepdims:
        return grad.reshape([1] * len(shape)) if axis is None and not keepdims else grad
    for ax in sorted(_normalize_axis(axis, len(shape))):
        grad = np.expand_dims(grad, ax)
    return grad
