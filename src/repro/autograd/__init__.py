"""A dynamic, define-by-run automatic differentiation engine.

This package is the substrate that stands in for PyTorch's tensor library
and autograd engine.  It reproduces exactly the surfaces that
``DistributedDataParallel`` depends on:

* ``Tensor`` — an n-dimensional array with ``requires_grad`` / ``.grad``.
* A dynamic autograd *tape*: every forward pass builds a fresh graph, so
  iterations may touch different sub-graphs (the "pluralized graphs"
  caveat of the paper, Fig. 3(b)).
* ``AccumulateGrad`` nodes on leaf tensors that accept **post-hooks**,
  fired after the gradient has been written — the entry point the DDP
  reducer uses to detect gradient readiness (paper §3.2.3, §4.2).
* Graph traversal from output tensors to discover which parameters
  participate in a given iteration (paper Algorithm 1, line 10).
"""

from repro.autograd.tensor import Tensor, tensor, zeros, ones, randn, full, arange
from repro.autograd.engine import (
    AccumulateGrad,
    backward,
    no_grad,
    is_grad_enabled,
)
from repro.autograd.graph import collect_participating_accumulators
from repro.autograd.gradcheck import gradcheck, numeric_gradient, GradcheckError
from repro.autograd import ops

__all__ = [
    "Tensor",
    "tensor",
    "zeros",
    "ones",
    "randn",
    "full",
    "arange",
    "AccumulateGrad",
    "backward",
    "no_grad",
    "is_grad_enabled",
    "collect_participating_accumulators",
    "gradcheck",
    "numeric_gradient",
    "GradcheckError",
    "ops",
]
