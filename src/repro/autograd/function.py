"""Differentiable function nodes for the autograd tape.

Each primitive operation subclasses :class:`Function` and implements a pair
of static methods, ``forward`` and ``backward``.  ``Function.apply`` runs
the forward computation on raw numpy arrays and, when gradients are
enabled and at least one input requires them, records a node on the tape.

The recorded node keeps ``next_edges``: one entry per input, pointing at
either the producing node (for interior tensors), the input's
``AccumulateGrad`` node (for leaf tensors that require grad), or ``None``
(for inputs that do not need gradients).  The backward engine walks these
edges in reverse topological order.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np


class Context:
    """Scratch space a Function's forward leaves for its backward.

    ``save_for_backward`` stores arrays; arbitrary attributes may also be
    assigned (e.g. ``ctx.shape = x.shape``) exactly as in PyTorch.
    """

    __slots__ = ("saved", "__dict__")

    def __init__(self) -> None:
        self.saved: tuple = ()

    def save_for_backward(self, *arrays: Any) -> None:
        self.saved = arrays


class Function:
    """Base class for differentiable primitives.

    Subclasses implement::

        @staticmethod
        def forward(ctx, *array_inputs) -> np.ndarray

        @staticmethod
        def backward(ctx, grad_output) -> tuple[Optional[np.ndarray], ...]

    ``backward`` must return one gradient (or ``None``) per tensor input
    of ``forward``, in order.
    """

    def __init__(self, ctx: Context, next_edges: Sequence[Optional[object]]):
        self.ctx = ctx
        self.next_edges = list(next_edges)
        # Sequence number lets the engine break ties deterministically and
        # lets tooling reconstruct execution order (used by the backward
        # order tracer of §6.2.1).
        self.seq_nr = _next_seq()

    # -- subclass API -------------------------------------------------
    @staticmethod
    def forward(ctx: Context, *inputs: Any) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    @staticmethod
    def backward(ctx: Context, grad_output: np.ndarray):  # pragma: no cover
        raise NotImplementedError

    # -- machinery ----------------------------------------------------
    @classmethod
    def apply(cls, *inputs: Any, **kwargs: Any):
        """Run forward, and record a tape node when gradients are needed."""
        from repro.autograd.engine import is_grad_enabled
        from repro.autograd.tensor import Tensor

        tensor_inputs = [inp for inp in inputs if isinstance(inp, Tensor)]
        raw = [inp.data if isinstance(inp, Tensor) else inp for inp in inputs]

        ctx = Context()
        out_data = cls.forward(ctx, *raw, **kwargs)

        needs_grad = is_grad_enabled() and any(
            t.requires_grad for t in tensor_inputs
        )
        out = Tensor(out_data, requires_grad=needs_grad)
        if needs_grad:
            edges: list[Optional[object]] = []
            for inp in inputs:
                if isinstance(inp, Tensor) and inp.requires_grad:
                    edges.append(inp._grad_edge())
                else:
                    edges.append(None)
            node = cls(ctx, edges)
            node.input_count = len(inputs)
            out.grad_fn = node
        return out

    def name(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.name()} seq={self.seq_nr}>"


import itertools

# itertools.count.__next__ is atomic under CPython, so concurrent
# forward passes (DataParallel's replica threads) get unique sequence
# numbers without a lock.
_seq_counter = itertools.count(1)


def _next_seq() -> int:
    return next(_seq_counter)


def unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after numpy broadcasting.

    Broadcasting in the forward pass means the backward pass must sum the
    gradient over every broadcast dimension, otherwise gradient shapes
    drift away from parameter shapes.
    """
    if grad.shape == shape:
        return grad
    # Sum away leading dims that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dims that were 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)
