"""The backward engine and the ``AccumulateGrad`` hook point.

The engine executes the tape in reverse topological order from the root.
Leaf tensors terminate in :class:`AccumulateGrad` nodes; after a leaf's
gradient is written, the node fires its registered **post-hooks**.  This
is the exact mechanism PyTorch's DDP reducer plugs into (paper §3.2.3):
one post-hook per parameter, each hook decrementing its bucket's pending
count and launching an AllReduce when the bucket becomes ready.

Only the sub-graph reachable from the backward root executes, so leaves
not touched by an iteration never fire their hooks — reproducing the
"pluralized graphs" hang scenario of Fig. 3(b) that DDP must handle.
"""

from __future__ import annotations

import contextlib
import threading
from collections import defaultdict
from typing import Callable, Dict, List, Optional

import numpy as np

_grad_state = threading.local()


def is_grad_enabled() -> bool:
    return getattr(_grad_state, "enabled", True)


@contextlib.contextmanager
def no_grad():
    """Disable tape recording within the block (e.g. optimizer updates)."""
    previous = is_grad_enabled()
    _grad_state.enabled = False
    try:
        yield
    finally:
        _grad_state.enabled = previous


class AccumulateGrad:
    """Terminal tape node that writes gradients into a leaf tensor.

    Hooks registered via :meth:`register_post_hook` run *after* the
    gradient has been accumulated into ``tensor.grad`` — the reducer's
    signal that this parameter's gradient is ready for communication.
    """

    def __init__(self, tensor):
        self.tensor = tensor
        self._post_hooks: List[Callable] = []
        self.seq_nr = -1  # leaves carry no execution order of their own
        # Optional Tensor whose .data is a view of external storage (the
        # reducer's flat bucket buffer).  When set, the first gradient of
        # an iteration is written directly into that storage and the view
        # becomes ``tensor.grad`` — PyTorch's gradient_as_bucket_view.
        self.grad_view = None

    def set_grad_view(self, view) -> None:
        """Install (or clear, with None) a preallocated gradient view.

        The view is adopted lazily: a parameter that never receives a
        gradient keeps ``grad is None``, which the reducer relies on for
        unused-parameter detection.
        """
        self.grad_view = view

    def register_post_hook(self, hook: Callable[["AccumulateGrad"], None]) -> Callable:
        """Register ``hook(node)``; returns a zero-argument remover."""
        self._post_hooks.append(hook)

        def remove() -> None:
            if hook in self._post_hooks:
                self._post_hooks.remove(hook)

        return remove

    def clear_post_hooks(self) -> None:
        self._post_hooks.clear()

    def accumulate(self, grad: np.ndarray) -> None:
        from repro.autograd.tensor import Tensor

        if grad.shape != self.tensor.data.shape:
            raise RuntimeError(
                f"gradient shape {grad.shape} does not match leaf shape "
                f"{self.tensor.data.shape}"
            )
        if self.tensor.grad is None:
            view = self.grad_view
            if view is not None and view.data.shape == grad.shape:
                # Zero-copy path: land the gradient directly in the
                # external (bucket) storage and alias it as .grad.
                np.copyto(view.data, grad)
                self.tensor.grad = view
            else:
                self.tensor.grad = Tensor(
                    grad.astype(self.tensor.data.dtype, copy=True)
                )
        else:
            self.tensor.grad.data += grad
        for hook in list(self._post_hooks):
            hook(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<AccumulateGrad shape={self.tensor.data.shape}>"


def backward(root_tensor, grad: np.ndarray) -> None:
    """Run backpropagation from ``root_tensor`` with initial gradient ``grad``.

    Gradients flowing into the same node from several consumers are summed
    before the node's ``backward`` runs (standard reverse-mode dependency
    counting), so each tape node executes exactly once.
    """
    root = root_tensor.grad_fn
    if root is None:
        if root_tensor.requires_grad:
            root_tensor.accumulator().accumulate(np.asarray(grad))
            return
        raise RuntimeError("tensor does not require grad; backward is a no-op")

    dependencies = _count_dependencies(root)
    pending: Dict[object, np.ndarray] = {root: np.asarray(grad, dtype=np.float64)}
    # Ready queue ordered by seq_nr descending approximates the reverse of
    # execution order, which keeps gradient-ready order realistic for the
    # overlap experiments (later layers' grads become ready first).
    ready = [root]

    while ready:
        ready.sort(key=lambda n: getattr(n, "seq_nr", -1))
        node = ready.pop()
        grad_output = pending.pop(node)

        if isinstance(node, AccumulateGrad):
            node.accumulate(grad_output)
            continue

        grads_in = node.backward(node.ctx, grad_output)
        if not isinstance(grads_in, tuple):
            grads_in = (grads_in,)
        # backward may return trailing Nones for non-tensor kwargs; it must
        # cover at least every recorded edge.
        if len(grads_in) < len(node.next_edges):
            raise RuntimeError(
                f"{node.name()}.backward returned {len(grads_in)} gradients "
                f"for {len(node.next_edges)} inputs"
            )
        for edge, grad_in in zip(node.next_edges, grads_in):
            if edge is None or grad_in is None:
                continue
            grad_in = np.asarray(grad_in)
            if edge in pending:
                pending[edge] = pending[edge] + grad_in
            else:
                pending[edge] = grad_in
            dependencies[edge] -= 1
            if dependencies[edge] == 0:
                if isinstance(edge, AccumulateGrad):
                    # Leaves accumulate (and fire their post-hooks) the
                    # moment their gradient is complete — the readiness
                    # signal DDP's bucketing overlap relies on.
                    edge.accumulate(pending.pop(edge))
                else:
                    ready.append(edge)

    if pending:
        raise RuntimeError(
            "backward finished with undelivered gradients; the tape is corrupt"
        )


def _count_dependencies(root) -> Dict[object, int]:
    """Number of consumers each node has within the reachable sub-graph."""
    dependencies: Dict[object, int] = defaultdict(int)
    dependencies[root] = 1
    seen = {root}
    stack = [root]
    while stack:
        node = stack.pop()
        if isinstance(node, AccumulateGrad):
            continue
        for edge in node.next_edges:
            if edge is None:
                continue
            dependencies[edge] += 1
            if edge not in seen:
                seen.add(edge)
                stack.append(edge)
    return dependencies
