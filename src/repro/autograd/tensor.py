"""The ``Tensor`` type: an n-dimensional array that records a tape.

Mirrors the PyTorch surface that data parallel training relies on: leaf
tensors with ``requires_grad=True`` own an ``AccumulateGrad`` node (the
hook point for the DDP reducer), interior tensors carry ``grad_fn``, and
``backward()`` runs the engine from a scalar loss.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import numpy as np

from repro.utils.seed import get_rng

Scalar = Union[int, float]
ArrayLike = Union[Scalar, Sequence, np.ndarray, "Tensor"]


class Tensor:
    """An n-dimensional array participating in automatic differentiation.

    Parameters
    ----------
    data:
        Anything ``numpy.asarray`` accepts. Floating data defaults to
        ``float64`` so that distributed-vs-local equivalence tests can
        assert tight numeric agreement.
    requires_grad:
        Whether backward passes should accumulate into ``.grad``.
    """

    def __init__(self, data: ArrayLike, requires_grad: bool = False, device: str = "cpu"):
        if isinstance(data, Tensor):
            device = data.device
            data = data.data
        arr = np.asarray(data)
        if arr.dtype.kind in "iub" and requires_grad:
            raise TypeError("only floating-point tensors can require gradients")
        self.data: np.ndarray = arr
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[Tensor] = None
        self.grad_fn = None
        self._accumulator = None
        # Logical placement tag ("cpu", "gpu:0", ...). There is no real
        # accelerator here, but DDP's bucket assignment must respect device
        # affinity for multi-device models, so tensors carry the tag.
        self.device = device

    # -- structural properties ----------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def size(self) -> int:
        """Total number of elements (PyTorch's ``numel``)."""
        return int(self.data.size)

    def numel(self) -> int:
        return int(self.data.size)

    def element_size(self) -> int:
        return int(self.data.dtype.itemsize)

    def nbytes(self) -> int:
        return self.numel() * self.element_size()

    @property
    def is_leaf(self) -> bool:
        return self.grad_fn is None

    def __len__(self) -> int:
        return self.data.shape[0]

    def __repr__(self) -> str:
        grad_part = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4)}{grad_part})"

    # -- autograd wiring ----------------------------------------------
    def _grad_edge(self):
        """Edge the tape should point at for this tensor as an input."""
        if self.grad_fn is not None:
            return self.grad_fn
        return self.accumulator()

    def accumulator(self):
        """This leaf's ``AccumulateGrad`` node, created on first demand.

        DDP installs its post-hooks here; the node identity is stable for
        the lifetime of the tensor so hooks survive across iterations.
        """
        from repro.autograd.engine import AccumulateGrad

        if not self.requires_grad or self.grad_fn is not None:
            raise RuntimeError(
                "accumulator() is only defined for leaf tensors that require grad"
            )
        if self._accumulator is None:
            self._accumulator = AccumulateGrad(self)
        return self._accumulator

    def backward(self, grad: Optional["Tensor"] = None) -> None:
        """Run backpropagation from this tensor.

        ``grad`` defaults to ones for scalar outputs, as in PyTorch.
        """
        from repro.autograd.engine import backward as run_backward

        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be specified for non-scalar outputs")
            grad_data = np.ones_like(self.data)
        else:
            grad_data = grad.data if isinstance(grad, Tensor) else np.asarray(grad)
        run_backward(self, grad_data)

    def detach(self) -> "Tensor":
        """A view of the same storage, cut from the tape."""
        out = Tensor(self.data, requires_grad=False)
        return out

    def zero_grad(self) -> None:
        self.grad = None

    def item(self) -> float:
        return float(self.data.reshape(-1)[0])

    def copy_(self, other: ArrayLike) -> "Tensor":
        """In-place copy preserving identity (used by broadcast/allreduce)."""
        src = other.data if isinstance(other, Tensor) else np.asarray(other)
        np.copyto(self.data, src.reshape(self.data.shape))
        return self

    def clone(self) -> "Tensor":
        from repro.autograd import ops

        if self.requires_grad or self.grad_fn is not None:
            return ops.clone(self)
        return Tensor(self.data.copy(), requires_grad=False)

    def to(self, device: str) -> "Tensor":
        """Retag this tensor's logical device (in place; returns self)."""
        self.device = device
        return self

    def numpy(self) -> np.ndarray:
        return self.data

    def astype(self, dtype) -> "Tensor":
        return Tensor(self.data.astype(dtype), requires_grad=False)

    # -- operators (all defined in ops.py) -----------------------------
    def __add__(self, other):
        from repro.autograd import ops

        return ops.add(self, _wrap(other))

    __radd__ = __add__

    def __sub__(self, other):
        from repro.autograd import ops

        return ops.sub(self, _wrap(other))

    def __rsub__(self, other):
        from repro.autograd import ops

        return ops.sub(_wrap(other), self)

    def __mul__(self, other):
        from repro.autograd import ops

        return ops.mul(self, _wrap(other))

    __rmul__ = __mul__

    def __truediv__(self, other):
        from repro.autograd import ops

        return ops.div(self, _wrap(other))

    def __rtruediv__(self, other):
        from repro.autograd import ops

        return ops.div(_wrap(other), self)

    def __neg__(self):
        from repro.autograd import ops

        return ops.neg(self)

    def __pow__(self, exponent: Scalar):
        from repro.autograd import ops

        return ops.pow(self, exponent)

    def __matmul__(self, other):
        from repro.autograd import ops

        return ops.matmul(self, _wrap(other))

    def __getitem__(self, index):
        from repro.autograd import ops

        return ops.getitem(self, index)

    # -- reductions and shapes -----------------------------------------
    def sum(self, axis=None, keepdims: bool = False):
        from repro.autograd import ops

        return ops.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False):
        from repro.autograd import ops

        return ops.mean(self, axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False):
        from repro.autograd import ops

        return ops.max(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape):
        from repro.autograd import ops

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops.reshape(self, shape)

    def view(self, *shape):
        return self.reshape(*shape)

    def transpose(self, axis0: int, axis1: int):
        from repro.autograd import ops

        return ops.transpose(self, axis0, axis1)

    @property
    def T(self):
        from repro.autograd import ops

        if self.ndim != 2:
            raise ValueError(".T is only supported for 2-D tensors")
        return ops.transpose(self, 0, 1)

    def argmax(self, axis=None) -> np.ndarray:
        return self.data.argmax(axis=axis)

    def exp(self):
        from repro.autograd import ops

        return ops.exp(self)

    def log(self):
        from repro.autograd import ops

        return ops.log(self)

    def tanh(self):
        from repro.autograd import ops

        return ops.tanh(self)

    def sigmoid(self):
        from repro.autograd import ops

        return ops.sigmoid(self)

    def relu(self):
        from repro.autograd import ops

        return ops.relu(self)


def _wrap(value: ArrayLike) -> Tensor:
    if isinstance(value, Tensor):
        return value
    return Tensor(np.asarray(value, dtype=np.float64))


# -- factory functions -------------------------------------------------

def tensor(data: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Build a tensor from array-like data (copying, like ``torch.tensor``)."""
    return Tensor(np.array(data, dtype=np.float64, copy=True), requires_grad)


def zeros(*shape: int, requires_grad: bool = False) -> Tensor:
    shape = _normalize_shape(shape)
    return Tensor(np.zeros(shape, dtype=np.float64), requires_grad)


def ones(*shape: int, requires_grad: bool = False) -> Tensor:
    shape = _normalize_shape(shape)
    return Tensor(np.ones(shape, dtype=np.float64), requires_grad)


def full(shape: Iterable[int], fill_value: Scalar, requires_grad: bool = False) -> Tensor:
    return Tensor(np.full(tuple(shape), fill_value, dtype=np.float64), requires_grad)


def randn(*shape: int, requires_grad: bool = False) -> Tensor:
    """Standard-normal tensor drawn from the thread-local seeded generator."""
    shape = _normalize_shape(shape)
    return Tensor(get_rng().standard_normal(shape), requires_grad)


def arange(stop: int, start: int = 0, step: int = 1) -> Tensor:
    return Tensor(np.arange(start, stop, step, dtype=np.float64))


def _normalize_shape(shape: tuple) -> tuple:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        return tuple(shape[0])
    return shape
