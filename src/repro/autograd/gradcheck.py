"""Numeric gradient verification (the ``torch.autograd.gradcheck`` analog).

Compares the engine's analytic gradients against central differences.
Used throughout this library's own test suite; exposed publicly because
anyone adding a custom ``Function`` should verify its backward rule the
same way.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autograd.tensor import Tensor


class GradcheckError(AssertionError):
    """Analytic and numeric gradients disagree."""


def numeric_gradient(fn: Callable[[], float], array: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``fn()`` w.r.t. ``array``
    (perturbed in place)."""
    grad = np.zeros_like(array, dtype=np.float64)
    flat = array.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        upper = fn()
        flat[i] = original - eps
        lower = fn()
        flat[i] = original
        gflat[i] = (upper - lower) / (2 * eps)
    return grad


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    eps: float = 1e-6,
    atol: float = 1e-5,
    rtol: float = 1e-3,
) -> bool:
    """Verify ``fn(*tensors) -> scalar Tensor`` against finite differences.

    ``inputs`` are raw arrays; each is wrapped with ``requires_grad`` and
    checked independently.  Raises :class:`GradcheckError` on the first
    mismatch; returns True otherwise.
    """
    arrays = [np.asarray(a, dtype=np.float64) for a in inputs]
    tensors = [Tensor(a, requires_grad=True) for a in arrays]
    out = fn(*tensors)
    if out.size != 1:
        raise ValueError("gradcheck requires a scalar output")
    out.backward()

    for index, (tensor, array) in enumerate(zip(tensors, arrays)):
        if tensor.grad is None:
            raise GradcheckError(f"input {index} received no gradient")
        numeric = numeric_gradient(
            lambda: float(fn(*[Tensor(a) for a in arrays]).item()), array, eps
        )
        analytic = tensor.grad.data
        err = np.abs(analytic - numeric)
        bound = atol + rtol * np.abs(numeric)
        if not np.all(err <= bound):
            worst = float(err.max())
            raise GradcheckError(
                f"input {index}: analytic/numeric gradient mismatch "
                f"(max abs err {worst:.3e}, atol={atol}, rtol={rtol})"
            )
    return True
