"""Fault injection, reliable transport, and elastic recovery.

The paper treats robustness as a first-class property of the DDP stack:
collectives time out instead of hanging forever, desyncs are diagnosed
instead of corrupting silently, and production deployments expect ranks
to die.  This package makes each of those failure modes *inducible* and
*survivable*:

* :mod:`repro.resilience.faults` — seeded, declarative
  :class:`FaultPlan` rules (drop / delay / duplicate / corrupt /
  crash-rank / slow-rank) installed on the transport hub and picked up
  by process groups, so chaos runs are reproducible library features
  rather than ad-hoc test subclasses.
* :mod:`repro.resilience.transport` — :class:`ReliableTransportHub`,
  a retrying, acked, checksummed transport that absorbs drops,
  duplicates, and corruption; counters surface in ``ddp_stats()`` and
  the flight recorder.
* :mod:`repro.resilience.heartbeat` — store-based liveness beacons
  that detect a dead rank in fractions of a second.
* :mod:`repro.resilience.elastic` — :func:`run_elastic`, the
  shrink-to-survive supervisor: checkpoint, detect death, re-rendezvous
  the survivors, restore, continue.

See ``docs/resilience.md`` for the taxonomy mapping paper failure modes
to injection rules and recovery behaviour.
"""

from repro.resilience.elastic import (
    ElasticConfig,
    ElasticContext,
    ElasticResult,
    RankFailedError,
    run_elastic,
)
from repro.resilience.faults import (
    CHECKPOINT,
    COLLECTIVE,
    ELASTIC,
    WIRE,
    FaultPlan,
    FaultRule,
    InjectedRankFailure,
    corrupt,
    corrupt_file,
    crash_rank,
    delay,
    delay_write,
    drop,
    duplicate,
    rejoin_rank,
    slow_rank,
)
from repro.resilience.heartbeat import Heartbeat, HeartbeatMonitor, heartbeat_key
from repro.resilience.transport import (
    ReliableTransportHub,
    RetryBudgetExceededError,
    RetryPolicy,
)

__all__ = [
    "FaultPlan",
    "FaultRule",
    "InjectedRankFailure",
    "WIRE",
    "COLLECTIVE",
    "CHECKPOINT",
    "ELASTIC",
    "drop",
    "delay",
    "duplicate",
    "corrupt",
    "corrupt_file",
    "delay_write",
    "crash_rank",
    "rejoin_rank",
    "slow_rank",
    "ReliableTransportHub",
    "RetryPolicy",
    "RetryBudgetExceededError",
    "Heartbeat",
    "HeartbeatMonitor",
    "heartbeat_key",
    "run_elastic",
    "ElasticConfig",
    "ElasticContext",
    "ElasticResult",
    "RankFailedError",
]
