"""Deterministic, declarative fault injection.

Production DDP stacks treat failures as routine; reproducing that
requires making failure a *library feature* rather than an ad-hoc test
fixture.  A :class:`FaultPlan` is a seeded list of :class:`FaultRule`
entries installed on a :class:`~repro.comm.transport.TransportHub`
(wire-scoped rules: drop / delay / duplicate / corrupt / crash / slow)
and picked up by every :class:`~repro.comm.process_group.ProcessGroup`
sharing the hub (collective-scoped rules: crash a rank as it issues its
*n*-th matching collective — e.g. exactly at a bucket boundary of a DDP
backward).

Determinism: probabilistic rules hash ``(seed, rule, src, dst, tag,
match-count)`` into a uniform draw, so the *same messages* are faulted
on every run regardless of thread interleaving — a seeded chaos run is
reproducible.  ``after``/``times`` windows count matches **per edge**
(per ``(src, dst)`` pair for wire rules, per rank for collective rules)
for the same reason.

Taxonomy mapping to the paper's failure modes (§3.3, Fig. 3) and to the
recovery behaviour in this package is tabulated in
``docs/resilience.md``.
"""

from __future__ import annotations

import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

#: Rule scopes.
WIRE = "wire"
COLLECTIVE = "collective"
CHECKPOINT = "checkpoint"
ELASTIC = "elastic"

#: Wire-scoped actions.
DROP = "drop"
DELAY = "delay"
DUPLICATE = "duplicate"
CORRUPT = "corrupt"
#: Either scope: terminate the matching rank with InjectedRankFailure.
CRASH_RANK = "crash_rank"
#: Wire-scoped: add latency to every send from one rank (a straggler).
SLOW_RANK = "slow_rank"
#: Checkpoint-scoped: tear the final on-disk bytes of a matching write
#: (truncate + flip), producing exactly the signature the CRC trailer
#: and manifest verification exist to catch.
CORRUPT_FILE = "corrupt_file"
#: Checkpoint-scoped: a slow disk — sleep before a matching write lands.
DELAY_WRITE = "delay_write"
#: Elastic-scoped: a departed rank announces it wants back in; the
#: elastic supervisor admits it at the next generation boundary when
#: ``allow_grow`` is set.
REJOIN_RANK = "rejoin_rank"

_ACTIONS = {
    DROP, DELAY, DUPLICATE, CORRUPT, CRASH_RANK, SLOW_RANK,
    CORRUPT_FILE, DELAY_WRITE, REJOIN_RANK,
}
_CHECKPOINT_ACTIONS = {CORRUPT_FILE, DELAY_WRITE}


class InjectedRankFailure(RuntimeError):
    """A fault plan terminated this rank (simulated process death).

    Raised on the matching rank's own thread — either at a transport
    ``send`` (wire scope) or as the rank issues a collective (collective
    scope).  The elastic supervisor treats it as a dead rank and applies
    the configured degraded-mode policy.
    """

    def __init__(self, rank: int, reason: str = "injected rank failure"):
        super().__init__(f"rank {rank}: {reason}")
        self.rank = rank


def _unit(seed: int, *parts) -> float:
    """Deterministic uniform draw in [0, 1) from hashed identifiers."""
    blob = repr((seed,) + parts).encode()
    return zlib.crc32(blob) / 2**32


def _corrupt_payload(payload):
    """Return a perturbed copy of an ndarray payload (others unchanged)."""
    if isinstance(payload, np.ndarray) and payload.size:
        corrupted = payload.copy()
        flat = corrupted.reshape(-1)
        if np.issubdtype(corrupted.dtype, np.floating):
            flat[0] += 1000.0
        else:
            flat[0] ^= np.array(0x5A, dtype=corrupted.dtype)
        return corrupted
    return payload


@dataclass
class FaultRule:
    """One declarative fault: an action plus match predicates.

    Parameters
    ----------
    action:
        One of ``drop``, ``delay``, ``duplicate``, ``corrupt``,
        ``crash_rank``, ``slow_rank``.
    scope:
        ``"wire"`` (matched against transport sends) or ``"collective"``
        (matched as a rank issues a collective).  Only ``crash_rank``
        supports the collective scope.
    rank:
        Match only this sending/issuing rank (``None`` = any).
    dst:
        Wire scope: match only this destination rank.
    op:
        Collective scope: match only this op name (``"allreduce"``...).
    tag_contains:
        Wire scope: substring match against ``repr(tag)``.
    predicate:
        Extra callable — wire: ``(src, dst, tag) -> bool``; collective:
        ``(rank, op, seq) -> bool``.
    probability:
        Trigger chance per match, drawn deterministically from the
        plan's seed (see module docstring).
    after:
        Skip the first ``after`` matches (per edge) before triggering.
    times:
        Trigger at most this many times (per edge); ``None`` = always.
    delay:
        Sleep seconds for ``delay``/``slow_rank`` actions.
    """

    action: str
    scope: str = WIRE
    rank: Optional[int] = None
    dst: Optional[int] = None
    op: Optional[str] = None
    tag_contains: Optional[str] = None
    predicate: Optional[Callable] = None
    probability: float = 1.0
    after: int = 0
    times: Optional[int] = None
    delay: float = 0.0
    #: Total trigger count (all edges), maintained by the plan.
    triggered: int = field(default=0, compare=False)

    def __post_init__(self):
        if self.action not in _ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}; options: {sorted(_ACTIONS)}")
        if self.scope not in (WIRE, COLLECTIVE, CHECKPOINT, ELASTIC):
            raise ValueError(f"unknown fault scope {self.scope!r}")
        if self.scope == COLLECTIVE and self.action != CRASH_RANK:
            raise ValueError("collective-scoped rules only support crash_rank")
        if (self.scope == CHECKPOINT) != (self.action in _CHECKPOINT_ACTIONS):
            raise ValueError(
                "corrupt_file/delay_write are checkpoint-scoped (and the "
                "checkpoint scope supports only them); use the "
                "corrupt_file()/delay_write(seconds) constructors"
            )
        if (self.scope == ELASTIC) != (self.action == REJOIN_RANK):
            raise ValueError(
                "rejoin_rank is elastic-scoped (and the elastic scope "
                "supports only it); use the rejoin_rank(spot, generation=g) "
                "constructor"
            )
        if self.action == REJOIN_RANK and self.rank is None:
            raise ValueError("rejoin_rank requires the returning spot id")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")

    def _matches_wire(self, src: int, dst: int, tag) -> bool:
        if self.scope != WIRE:
            return False
        if self.rank is not None and src != self.rank:
            return False
        if self.dst is not None and dst != self.dst:
            return False
        if self.tag_contains is not None and self.tag_contains not in repr(tag):
            return False
        if self.predicate is not None and not self.predicate(src, dst, tag):
            return False
        return True

    def _matches_collective(self, rank: int, op: str, seq: int) -> bool:
        if self.scope != COLLECTIVE:
            return False
        if self.rank is not None and rank != self.rank:
            return False
        if self.op is not None and op != self.op:
            return False
        if self.predicate is not None and not self.predicate(rank, op, seq):
            return False
        return True

    def _matches_checkpoint(self, rank: int, path: str) -> bool:
        if self.scope != CHECKPOINT:
            return False
        if self.rank is not None and rank != self.rank:
            return False
        if self.tag_contains is not None and self.tag_contains not in path:
            return False
        if self.predicate is not None and not self.predicate(rank, path):
            return False
        return True


# Declarative constructors — `FaultPlan(rules=[drop(probability=0.01), ...])`.
def drop(**kwargs) -> FaultRule:
    """Rule: silently lose matching wire messages."""
    return FaultRule(DROP, **kwargs)


def delay(seconds: float, **kwargs) -> FaultRule:
    """Rule: add ``seconds`` of latency to matching wire messages."""
    return FaultRule(DELAY, delay=seconds, **kwargs)


def duplicate(**kwargs) -> FaultRule:
    """Rule: deliver matching wire messages twice."""
    return FaultRule(DUPLICATE, **kwargs)


def corrupt(**kwargs) -> FaultRule:
    """Rule: perturb the payload of matching wire messages."""
    return FaultRule(CORRUPT, **kwargs)


def crash_rank(rank: int, scope: str = WIRE, **kwargs) -> FaultRule:
    """Rule: kill ``rank`` at its next matching send or collective."""
    return FaultRule(CRASH_RANK, scope=scope, rank=rank, **kwargs)


def slow_rank(rank: int, seconds: float, **kwargs) -> FaultRule:
    """Rule: delay every send from ``rank`` (a persistent straggler)."""
    return FaultRule(SLOW_RANK, rank=rank, delay=seconds, **kwargs)


def corrupt_file(**kwargs) -> FaultRule:
    """Rule: tear matching checkpoint writes (truncate + flip a byte).

    Matched against ``(rank, path)`` of every file the verified
    checkpoint writer produces; ``tag_contains`` substring-matches the
    path.  The damage is applied to the *final* on-disk bytes — after
    the CRC trailer is computed — so a firing rule produces a genuine
    torn-write signature that loads must reject with ``ChecksumError``.
    """
    return FaultRule(CORRUPT_FILE, scope=CHECKPOINT, **kwargs)


def delay_write(seconds: float, **kwargs) -> FaultRule:
    """Rule: simulate a slow disk — sleep before matching checkpoint
    writes reach the filesystem (exercises async-save overlap)."""
    return FaultRule(DELAY_WRITE, scope=CHECKPOINT, delay=seconds, **kwargs)


def rejoin_rank(spot: int, generation: int = 1, **kwargs) -> FaultRule:
    """Event: spot ``spot`` asks to rejoin during ``generation``.

    The elastic supervisor (``allow_grow=True``) sees the request once
    the run is in generation >= ``generation``, ends the running
    generation at a safe boundary, and re-rendezvouses with the spot
    admitted — so a spot killed in generation 0 with
    ``rejoin_rank(spot, generation=1)`` trains again from generation 2
    onward ("rejoins two generations later").  Without ``allow_grow``
    the event is inert.
    """
    return FaultRule(REJOIN_RANK, scope=ELASTIC, rank=spot, after=generation, **kwargs)


def _tear_bytes(data: bytes) -> bytes:
    """A deterministic torn-write signature: drop the tail third and
    flip a byte near the new end (catches both size and CRC checks)."""
    if len(data) < 3:
        return b""
    cut = max(1, (2 * len(data)) // 3)
    torn = bytearray(data[:cut])
    torn[-1] ^= 0x5A
    return bytes(torn)


class FaultPlan:
    """A seeded set of fault rules, installable on hub and groups.

    Thread-safe: rank and communication-worker threads consult the plan
    concurrently; per-edge match counters are guarded by one lock and
    probability draws are pure hashes of stable identifiers.

    Usage::

        plan = FaultPlan([drop(probability=0.01),
                          crash_rank(2, scope="collective", op="allreduce",
                                     after=7, times=1)], seed=0)
        hub.install_fault_plan(plan)
    """

    def __init__(self, rules: List[FaultRule], seed: int = 0):
        self.rules = list(rules)
        self.seed = int(seed)
        self._lock = threading.Lock()
        # Per-rule, per-edge match counts: wire edges are (src, dst),
        # collective "edges" are the issuing rank.
        self._matches: List[Dict] = [dict() for _ in self.rules]
        self._fired: List[Dict] = [dict() for _ in self.rules]

    def install(self, hub) -> "FaultPlan":
        """Install this plan on ``hub`` (returns self for chaining)."""
        hub.install_fault_plan(self)
        return self

    # -- internal -------------------------------------------------------
    def _fire(self, index: int, rule: FaultRule, edge, *hash_parts) -> bool:
        """Count a match on ``edge`` and decide whether the rule fires."""
        with self._lock:
            count = self._matches[index].get(edge, 0)
            self._matches[index][edge] = count + 1
            if count < rule.after:
                return False
            if rule.times is not None and self._fired[index].get(edge, 0) >= rule.times:
                return False
            if rule.probability < 1.0 and _unit(
                self.seed, index, edge, count, *hash_parts
            ) >= rule.probability:
                return False
            self._fired[index][edge] = self._fired[index].get(edge, 0) + 1
            rule.triggered += 1
        return True

    # -- hooks ----------------------------------------------------------
    def on_send(self, src: int, dst: int, tag, payload, crashable: bool = True):
        """Filter one wire send; returns the list of payloads to deliver.

        May sleep (delay / slow-rank rules) and may raise
        :class:`InjectedRankFailure` (wire-scoped crash rules, suppressed
        when ``crashable`` is False — e.g. for retransmissions serviced
        on the receiver's thread).
        """
        deliveries = [payload]
        for index, rule in enumerate(self.rules):
            if not rule._matches_wire(src, dst, tag):
                continue
            if not self._fire(index, rule, (src, dst), repr(tag)):
                continue
            if rule.action == CRASH_RANK:
                if crashable:
                    raise InjectedRankFailure(
                        src, f"fault plan crashed the rank at send tag={tag!r}"
                    )
                continue
            if rule.action in (DELAY, SLOW_RANK):
                time.sleep(rule.delay)
            elif rule.action == DROP:
                deliveries = []
            elif rule.action == DUPLICATE:
                deliveries = deliveries + deliveries
            elif rule.action == CORRUPT:
                deliveries = [_corrupt_payload(item) for item in deliveries]
        return deliveries

    def on_collective(self, rank: int, op: str, seq: int, group_id=None) -> None:
        """Hook called as ``rank`` issues collective ``op`` at ``seq``.

        Raises :class:`InjectedRankFailure` when a collective-scoped
        crash rule fires — on the issuing rank's own thread, *before*
        the collective is queued, which places the death exactly at a
        chosen bucket boundary of a DDP backward.
        """
        for index, rule in enumerate(self.rules):
            if not rule._matches_collective(rank, op, seq):
                continue
            if not self._fire(index, rule, rank, op):
                continue
            raise InjectedRankFailure(
                rank,
                f"fault plan crashed the rank issuing {op}#{seq}"
                + (f" (group {group_id})" if group_id is not None else ""),
            )

    def on_checkpoint_write(self, rank: int, path: str, data: bytes) -> bytes:
        """Filter one checkpoint file write; returns the bytes to land.

        The verified writer (:func:`repro.checkpoint.format.write_verified`
        and the checkpoint engine) calls this with the final on-disk
        bytes — payload plus CRC trailer — so ``corrupt_file`` rules
        produce true torn-write signatures and ``delay_write`` rules
        model a slow disk (the sleep happens on whichever thread is
        writing: the training thread for synchronous saves, the engine's
        writer thread for async ones).
        """
        for index, rule in enumerate(self.rules):
            if not rule._matches_checkpoint(rank, path):
                continue
            if not self._fire(index, rule, rank, path):
                continue
            if rule.action == DELAY_WRITE:
                time.sleep(rule.delay)
            elif rule.action == CORRUPT_FILE:
                data = _tear_bytes(data)
        return data

    # -- elastic rejoin events ------------------------------------------
    def peek_rejoins(self, generation: int, exclude=()) -> List[int]:
        """Matured, unconsumed rejoin requests as of ``generation``.

        Non-destructive (the supervisor polls this mid-generation to
        decide whether to end the generation early); spots in
        ``exclude`` — typically the currently-live membership — are
        never reported.
        """
        exclude = set(exclude)
        with self._lock:
            return sorted(
                rule.rank
                for index, rule in enumerate(self.rules)
                if rule.action == REJOIN_RANK
                and rule.rank not in exclude
                and generation >= rule.after
                and not self._fired[index].get("rejoin")
            )

    def consume_rejoins(
        self, generation: int, exclude=(), limit: Optional[int] = None
    ) -> List[int]:
        """Consume matured rejoin requests (at a generation boundary).

        Each request fires at most once per session; consuming marks it
        fired so the supervisor does not re-admit the same spot every
        generation.  ``limit`` caps how many are consumed (the
        supervisor passes remaining ``max_world_size`` capacity; the
        rest stay pending for a later boundary).  Returns the admitted
        spot ids, sorted.
        """
        exclude = set(exclude)
        admitted = []
        with self._lock:
            for index, rule in enumerate(self.rules):
                if limit is not None and len(admitted) >= limit:
                    break
                if (
                    rule.action == REJOIN_RANK
                    and rule.rank not in exclude
                    and generation >= rule.after
                    and not self._fired[index].get("rejoin")
                ):
                    self._fired[index]["rejoin"] = 1
                    self._matches[index]["rejoin"] = (
                        self._matches[index].get("rejoin", 0) + 1
                    )
                    rule.triggered += 1
                    admitted.append(rule.rank)
        return sorted(admitted)

    # -- reporting ------------------------------------------------------
    def stats(self) -> List[dict]:
        """Per-rule description and trigger counts (JSON-friendly)."""
        with self._lock:
            return [
                {
                    "action": rule.action,
                    "scope": rule.scope,
                    "rank": rule.rank,
                    "op": rule.op,
                    "probability": rule.probability,
                    "triggered": rule.triggered,
                }
                for rule in self.rules
            ]

    def total_triggered(self) -> int:
        """Total number of rule firings across the whole plan."""
        with self._lock:
            return sum(rule.triggered for rule in self.rules)

    def __repr__(self) -> str:
        return f"FaultPlan(seed={self.seed}, rules={len(self.rules)})"
