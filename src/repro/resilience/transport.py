"""Retrying, checksummed transport: survive drops instead of timing out.

:class:`ReliableTransportHub` layers a reliable-delivery protocol over
the in-process wire, the way TCP layers reliability over lossy IP:

* **Acked sends with sequence numbers** — every ``(src, dst, tag)``
  stream numbers its messages; the sender keeps each payload in a
  bounded retransmit buffer until the receiver's delivery marker (the
  "ack") passes it.
* **Seq-deduplication** — duplicate deliveries (retransmissions that
  crossed a late original, or a fault plan's ``duplicate`` rule) are
  recognised by sequence number and discarded.
* **Checksummed payloads** — each envelope carries a CRC32 of the
  original payload; a corrupted delivery (a ``corrupt`` fault, or real
  bit rot) is *detected* and retransmitted instead of being silently
  reduced into every replica's gradients.
* **Exponential backoff with jitter** — a receiver that finds nothing
  within its backoff slice requests a retransmission of the expected
  sequence number and doubles the slice (jittered, so ranks don't
  stampede in lockstep).
* **Per-collective retry budget** — retries are charged against the
  collective that issued the recv (the leading element of structured
  tags); exhausting the budget raises
  :class:`RetryBudgetExceededError` so a genuinely dead peer still
  fails fast rather than retrying forever.

Retry / retransmit / dedup / corruption counters are kept per receiving
rank, mirrored into telemetry (``transport.retries`` etc.) when tracing
is enabled, and surfaced through ``ddp_stats()["resilience"]`` and the
flight recorder (retry deltas are attached to each collective's record).

The plain :class:`~repro.comm.transport.TransportHub` remains the
default — the reliable hub costs one checksum per message and is opted
into by tests, chaos runs, and the elastic supervisor.
"""

from __future__ import annotations

import random
import threading
import time
import zlib
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Tuple

import numpy as np

from repro.comm.transport import (
    TransportHub,
    TransportTimeoutError,
    _NOTHING,
)
from repro.telemetry.metrics import registry_for
from repro.telemetry.spans import TRACER

#: Per-stream retransmit buffer depth (messages retained until acked).
SEND_LOG_CAPACITY = 512
#: Per-collective budget table size (oldest entries evicted beyond it).
BUDGET_TABLE_CAPACITY = 4096


class RetryBudgetExceededError(TransportTimeoutError):
    """A recv exhausted its collective's retry budget.

    Subclasses :class:`~repro.comm.transport.TransportTimeoutError` so
    existing timeout handling (process-group error mapping, watchdog
    reports) applies unchanged.
    """


@dataclass
class RetryPolicy:
    """Backoff and budget knobs for :class:`ReliableTransportHub`.

    ``base_backoff`` is the first wait slice; each empty slice doubles
    it up to ``max_backoff`` and multiplies by a jitter factor drawn
    uniformly from ``[1, 1 + jitter]``.  ``budget_per_collective`` caps
    the total retries charged to one collective across all of its chunk
    recvs on one rank.  ``verify_checksums`` gates CRC computation.
    """

    base_backoff: float = 0.002
    max_backoff: float = 0.1
    jitter: float = 0.5
    budget_per_collective: int = 256
    verify_checksums: bool = True


def _checksum(payload: Any) -> int:
    """CRC32 of a payload (ndarray bytes, or repr for other objects)."""
    if isinstance(payload, np.ndarray):
        return zlib.crc32(np.ascontiguousarray(payload).tobytes())
    return zlib.crc32(repr(payload).encode())


class _Envelope:
    """One wire message: stream sequence number, payload, checksum."""

    __slots__ = ("seq", "payload", "checksum")

    def __init__(self, seq: int, payload: Any, checksum: int | None):
        self.seq = seq
        self.payload = payload
        self.checksum = checksum

    @property
    def nbytes(self) -> int:
        """Payload byte size, so hub byte counters stay meaningful."""
        return int(getattr(self.payload, "nbytes", 0))

    def __repr__(self) -> str:
        return f"<Envelope seq={self.seq} nbytes={self.nbytes}>"


def _mark(rank: int, event: str, **args: Any) -> None:
    """Drop a zero-duration resilience span on ``rank``'s timeline.

    The merged Chrome trace (``export_merged_trace``) renders these as
    instant markers on a dedicated ``resilience`` row, lined up under
    the collective they delayed.  Callers gate on ``TRACER.enabled``.
    """
    now = time.perf_counter()
    TRACER.record(event, now, now, cat="resilience", stream="resilience",
                  rank=rank, args=args)
    # Mirror the incident into the health event log so the anomaly
    # engine can attribute retransmit storms to their source edge.
    from repro.telemetry.health import accounting as _health
    from repro.telemetry.health.events import record_event

    if _health.is_enabled():
        record_event(rank, event, t=now, extra=dict(args) if args else None)


def _collective_key(tag: Hashable) -> Hashable:
    """Budget bucket for a tag: structured tags lead with the collective
    identity ``(group_id, seq, op)``; plain tags are their own bucket."""
    if isinstance(tag, tuple) and tag:
        return tag[0]
    return tag


class ReliableTransportHub(TransportHub):
    """A :class:`TransportHub` with acks, dedup, checksums, and retries.

    Drop-in compatible: collectives and process groups are unchanged —
    reliability lives entirely inside ``send``/``recv``.  A fault plan
    installed on this hub faults the *wire* (the mailbox deposit); the
    retransmit buffer keeps the authoritative payload, which is what
    makes injected drops and corruption survivable.

    Thread-safety matches the base hub: one condition variable guards
    mailboxes, logs, markers, and counters.
    """

    def __init__(
        self,
        world_size: int,
        default_timeout: float = 30.0,
        retry: RetryPolicy | None = None,
        seed: int = 0,
    ):
        super().__init__(world_size, default_timeout)
        self.retry = retry or RetryPolicy()
        self._jitter_rng = random.Random(seed)
        # Per-(src, dst, tag) stream state.
        self._send_seq: Dict[Tuple, int] = {}
        self._sent_log: Dict[Tuple, deque] = {}
        self._acked: Dict[Tuple, int] = {}
        self._recv_next: Dict[Tuple, int] = {}
        self._reorder: Dict[Tuple, dict] = {}
        # Per-collective retry budget usage (receiver side), bounded.
        self._budget_used: Dict[Tuple, int] = {}
        self._budget_order: deque = deque()
        # Per-receiving-rank counters.
        self.retries = [0] * world_size
        self.retransmits = [0] * world_size
        self.duplicates_dropped = [0] * world_size
        self.corrupt_detected = [0] * world_size
        self._stats_lock = threading.Lock()

    # -- sending --------------------------------------------------------
    def send(self, src: int, dst: int, tag: Hashable, payload: Any) -> None:
        """Log the payload for retransmission, then deposit on the wire.

        The fault plan (if any) filters only the wire deposit; the
        retransmit log always keeps the original payload and checksum.
        """
        self._check_rank(src)
        self._check_rank(dst)
        key = (src, dst, tag)
        policy = self.retry
        checksum = _checksum(payload) if policy.verify_checksums else None
        with self._cond:
            seq = self._send_seq.get(key, 0) + 1
            self._send_seq[key] = seq
            log = self._sent_log.get(key)
            if log is None:
                log = self._sent_log[key] = deque(maxlen=SEND_LOG_CAPACITY)
            log.append(_Envelope(seq, payload, checksum))
            # Prune entries the receiver has already consumed (acked).
            acked = self._acked.get(key, 0)
            while log and log[0].seq <= acked:
                log.popleft()
        plan = self.fault_plan
        deliveries = [payload] if plan is None else plan.on_send(src, dst, tag, payload)
        for item in deliveries:
            self._deposit(src, dst, tag, _Envelope(seq, item, checksum))

    def _retransmit(self, key: Tuple, seq: int) -> bool:
        """Redeliver ``seq`` from the sender's log (through the faulty
        wire again); returns False when the sender has not sent it yet."""
        src, dst, tag = key
        with self._cond:
            log = self._sent_log.get(key, ())
            envelope = next((e for e in log if e.seq == seq), None)
        if envelope is None:
            return False
        plan = self.fault_plan
        if plan is None:
            deliveries = [envelope.payload]
        else:
            # crashable=False: this runs on the *receiver's* thread; a
            # crash rule aimed at the sender must not kill the receiver.
            deliveries = plan.on_send(src, dst, tag, envelope.payload, crashable=False)
        for item in deliveries:
            self._deposit(src, dst, tag, _Envelope(seq, item, envelope.checksum))
        with self._stats_lock:
            self.retransmits[dst] += 1
        if TRACER.enabled:
            registry_for(dst).counter("transport.retransmits").add(1)
            _mark(dst, "retransmit", seq=seq, src=src)
        return True

    # -- receiving ------------------------------------------------------
    def _charge_retry(self, dst: int, tag: Hashable) -> int:
        """Count one retry against the rank and the collective's budget;
        returns the budget used so far for this collective."""
        ckey = (dst, _collective_key(tag))
        with self._stats_lock:
            self.retries[dst] += 1
            used = self._budget_used.get(ckey)
            if used is None:
                self._budget_order.append(ckey)
                if len(self._budget_order) > BUDGET_TABLE_CAPACITY:
                    self._budget_used.pop(self._budget_order.popleft(), None)
                used = 0
            used += 1
            self._budget_used[ckey] = used
        if TRACER.enabled:
            registry_for(dst).counter("transport.retries").add(1)
            _mark(dst, "retry", collective=repr(_collective_key(tag)), used=used)
        return used

    def recv(self, dst: int, src: int, tag: Hashable, timeout: float | None = None) -> Any:
        """Reliable blocking receive: dedup, verify, retry with backoff.

        Raises :class:`RetryBudgetExceededError` when the collective's
        retry budget is exhausted and
        :class:`~repro.comm.transport.TransportTimeoutError` when the
        overall deadline passes without a valid delivery.
        """
        import time as _time

        self._check_rank(src)
        self._check_rank(dst)
        key = (src, dst, tag)
        policy = self.retry
        total = timeout if timeout is not None else self.default_timeout
        deadline = _time.perf_counter() + total
        traced = TRACER.enabled
        t_start = _time.perf_counter() if traced else 0.0
        retries_here = 0
        backoff = policy.base_backoff

        def finish(payload: Any) -> Any:
            with self._cond:
                expected = self._recv_next.get(key, 1)
                self._recv_next[key] = expected + 1
                self._acked[key] = expected
            if traced:
                TRACER.record(
                    "transport.recv",
                    t_start,
                    _time.perf_counter(),
                    cat="transport",
                    stream="transport",
                    rank=dst,
                    args={
                        "src": src,
                        "bytes": int(getattr(payload, "nbytes", 0)),
                        "retries": retries_here,
                    },
                )
            return payload

        while True:
            with self._cond:
                expected = self._recv_next.get(key, 1)
                stash = self._reorder.get(key)
                held = stash.pop(expected, None) if stash else None
            if held is not None:
                return finish(held.payload)

            remaining = deadline - _time.perf_counter()
            if remaining <= 0:
                raise TransportTimeoutError(
                    f"rank {dst} timed out waiting for message from rank {src} "
                    f"tag {tag!r} after {total}s despite {retries_here} "
                    f"retries (peer rank diverged, hung, or died?)"
                )
            slice_timeout = min(backoff, remaining)
            envelope = self._wait_one(key, slice_timeout)

            if envelope is _NOTHING:
                retries_here += 1
                used = self._charge_retry(dst, tag)
                if used > policy.budget_per_collective:
                    raise RetryBudgetExceededError(
                        f"rank {dst} exhausted the retry budget "
                        f"({policy.budget_per_collective}) for collective "
                        f"{_collective_key(tag)!r} waiting on rank {src} "
                        f"(tag {tag!r}) — peer presumed dead"
                    )
                self._retransmit(key, expected)
                backoff = min(backoff * 2.0, policy.max_backoff)
                backoff *= 1.0 + policy.jitter * self._jitter_rng.random()
                continue

            if envelope.seq < expected:
                with self._stats_lock:
                    self.duplicates_dropped[dst] += 1
                if TRACER.enabled:
                    registry_for(dst).counter("transport.duplicates_dropped").add(1)
                    _mark(dst, "duplicate_dropped", seq=envelope.seq, src=src)
                continue
            if (
                policy.verify_checksums
                and envelope.checksum is not None
                and _checksum(envelope.payload) != envelope.checksum
            ):
                with self._stats_lock:
                    self.corrupt_detected[dst] += 1
                if TRACER.enabled:
                    registry_for(dst).counter("transport.corrupt_detected").add(1)
                    _mark(dst, "corrupt_detected", seq=envelope.seq, src=src)
                self._retransmit(key, envelope.seq)
                continue
            if envelope.seq > expected:
                # A gap: an earlier message was dropped on the wire.
                # Hold this one and pull the missing seq from the log.
                with self._cond:
                    stash = self._reorder.setdefault(key, {})
                    if envelope.seq in stash:
                        dup = True
                    else:
                        stash[envelope.seq] = envelope
                        dup = False
                if dup:
                    with self._stats_lock:
                        self.duplicates_dropped[dst] += 1
                else:
                    self._retransmit(key, expected)
                continue
            return finish(envelope.payload)

    # -- reporting ------------------------------------------------------
    def retry_totals_for(self, rank: int) -> Tuple[int, int, int, int]:
        """(retries, retransmits, duplicates, corruptions) for ``rank``.

        Process-group workers snapshot this around each collective to
        attach retry deltas to flight-recorder records and work meta.
        """
        with self._stats_lock:
            return (
                self.retries[rank],
                self.retransmits[rank],
                self.duplicates_dropped[rank],
                self.corrupt_detected[rank],
            )

    def resilience_stats(self) -> dict:
        """Aggregate retry/dedup/corruption counters (JSON-friendly)."""
        with self._stats_lock:
            return {
                "retries": list(self.retries),
                "retransmits": list(self.retransmits),
                "duplicates_dropped": list(self.duplicates_dropped),
                "corrupt_detected": list(self.corrupt_detected),
                "total_retries": sum(self.retries),
                "total_retransmits": sum(self.retransmits),
                "total_duplicates_dropped": sum(self.duplicates_dropped),
                "total_corrupt_detected": sum(self.corrupt_detected),
            }
