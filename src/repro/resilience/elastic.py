"""Shrink-to-survive elastic training: the generation supervisor.

:func:`run_elastic` runs a DDP training loop the way production
schedulers run it — expecting ranks to die.  Each attempt is a
**generation**: a fresh :class:`~repro.resilience.transport.ReliableTransportHub`
plus a fresh process group with a generation-unique ``group_id`` (so no
store key from a dead generation can bleed into the next), one thread
per rank, and a store-based heartbeat per rank.  The supervisor (the
caller's thread) watches heartbeats and explicit death flags; when a
rank dies it sets an abort flag, closes the hub to wake the blocked
survivors, and applies the configured policy:

``fail``
    Re-raise the death as :class:`RankFailedError` (the behaviour of a
    non-elastic job: one dead rank kills the run).
``shrink``
    Re-rendezvous the survivors into a smaller world, restore model and
    optimizer state from the last checkpoint, and continue.  Gradient
    averaging rescales automatically — the reducer divides by the *new*
    group size.
``pause_and_wait``
    Re-run at the original world size, as if the scheduler replaced the
    dead worker; state is likewise restored from the checkpoint.

With ``allow_grow=True`` the supervisor also runs the reverse
transition: a :func:`~repro.resilience.faults.rejoin_rank` fault rule
marks a spot as *returning* (the preempted instance came back, or the
scheduler granted capacity).  When a rejoin matures mid-generation the
supervisor aborts the running generation exactly as it would for a
death — only this abort carries ``grow`` instead of ``died`` — and at
the boundary the returning spots are admitted, membership is densely
re-numbered, and every member (survivor or returner) passes a
store-based re-rendezvous barrier before the new group forms.  A rank
whose heartbeat merely *flapped* (stale long enough to trip the
monitor, fresh again by the boundary) is kept in the membership and
reported under ``flapped`` rather than treated as dead.

State travels between generations exclusively through checkpoints —
surviving ranks never try to salvage in-memory state from a torn
iteration, which is exactly how real elastic runtimes avoid mixing
half-averaged gradients into the restored trajectory.  The default
carrier is the rolling verified file written by
:func:`repro.utils.checkpoint.save_training_checkpoint` (or the sharded
protocol for ZeRO wrappers); setting ``replication_factor > 1`` or
``checkpoint_async=True`` upgrades it to the
:class:`~repro.checkpoint.engine.CheckpointEngine` — manifest-committed
generations, per-file CRC, background writes, and buddy replication, so
losing any single rank's local shard files is survivable.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.checkpoint.engine import CheckpointEngine
from repro.comm.distributed import destroy_process_group, init_process_group
from repro.comm.store import Store
from repro.resilience.faults import FaultPlan, InjectedRankFailure
from repro.resilience.heartbeat import Heartbeat, HeartbeatMonitor
from repro.resilience.transport import ReliableTransportHub, RetryPolicy
from repro.utils.checkpoint import (
    load_training_checkpoint,
    save_training_checkpoint,
)
from repro.utils.logging import logger
from repro.utils.rank import set_current_rank


class RankFailedError(RuntimeError):
    """A rank died and the policy does not allow recovery.

    Carries the dead ``spots`` (original rank ids) and the generation in
    which the deaths happened.
    """

    def __init__(self, spots: List[int], generation: int, reason: str):
        super().__init__(
            f"rank(s) {spots} died in generation {generation}: {reason}"
        )
        self.spots = list(spots)
        self.generation = generation


class _GenerationAborted(Exception):
    """Internal: the supervisor aborted this generation (not an error)."""


@dataclass
class ElasticConfig:
    """Knobs for :func:`run_elastic`.

    ``policy`` is ``"fail"``, ``"shrink"``, or ``"pause_and_wait"``.
    ``min_world_size`` bounds shrinking; dropping below it raises.
    ``max_restarts`` caps re-rendezvous attempts (generations beyond the
    first), so a deterministic repeated death cannot loop forever.
    ``checkpoint_every`` is the save cadence in iterations (rank 0 of
    the current generation saves).  ``heartbeat_interval`` /
    ``miss_threshold`` tune dead-rank detection; the defaults detect a
    death in ~0.25 s, far below the transport timeout.  ``retry`` is the
    :class:`~repro.resilience.transport.RetryPolicy` for each
    generation's hub; ``group_kwargs`` / ``ddp_kwargs`` forward to the
    process-group backend and the DDP wrapper.

    ``wrapper`` overrides the model wrap: ``wrapper(module, group) ->
    model`` (called instead of the default DDP construction, so e.g.
    ``repro.sharded`` stages can run elastically).  A wrapped model
    exposing ``save_training_state``/``load_training_state`` switches
    checkpointing to the sharded protocol: saves become collective
    (every rank calls at the same deterministic cadence; rank 0 writes)
    and restores run on every rank.

    ``allow_grow`` enables scale-up: matured
    :func:`~repro.resilience.faults.rejoin_rank` rules admit returning
    spots at generation boundaries, up to ``max_world_size`` (None
    leaves growth unbounded).  ``replication_factor`` /
    ``checkpoint_async`` / ``checkpoint_keep`` configure the
    :class:`~repro.checkpoint.engine.CheckpointEngine`; the engine is
    used instead of the rolling single-file checkpoint whenever
    ``replication_factor > 1`` or ``checkpoint_async`` is set (its
    files live under :attr:`engine_dir`).
    """

    policy: str = "shrink"
    min_world_size: int = 1
    max_restarts: int = 5
    checkpoint_every: int = 1
    checkpoint_dir: str = "."
    checkpoint_name: str = "elastic_latest.npz"
    heartbeat_interval: float = 0.05
    miss_threshold: float = 0.3
    grace: float = 2.0
    backend: str = "gloo"
    timeout: float = 10.0
    retry: Optional[RetryPolicy] = None
    seed: int = 0
    group_kwargs: Dict = field(default_factory=dict)
    ddp_kwargs: Dict = field(default_factory=dict)
    wrapper: Optional[Callable] = None
    allow_grow: bool = False
    max_world_size: Optional[int] = None
    replication_factor: int = 1
    checkpoint_async: bool = False
    checkpoint_keep: int = 2

    def __post_init__(self):
        if self.policy not in ("fail", "shrink", "pause_and_wait"):
            raise ValueError(
                f"unknown elastic policy {self.policy!r}; "
                "options: fail, shrink, pause_and_wait"
            )
        if self.min_world_size < 1:
            raise ValueError("min_world_size must be >= 1")
        if (
            self.max_world_size is not None
            and self.max_world_size < self.min_world_size
        ):
            raise ValueError(
                f"max_world_size={self.max_world_size} is below "
                f"min_world_size={self.min_world_size}"
            )
        if self.replication_factor < 1:
            raise ValueError("replication_factor must be >= 1")
        if self.checkpoint_keep < 1:
            raise ValueError("checkpoint_keep must be >= 1")

    @property
    def checkpoint_path(self) -> str:
        """Full path of the rolling training checkpoint."""
        return os.path.join(self.checkpoint_dir, self.checkpoint_name)

    @property
    def engine_dir(self) -> str:
        """Root directory of the checkpoint engine (when it is used)."""
        return os.path.join(self.checkpoint_dir, "engine")

    @property
    def uses_engine(self) -> bool:
        """Whether generations checkpoint through the engine."""
        return self.replication_factor > 1 or self.checkpoint_async

    @property
    def state_path(self) -> str:
        """Where training state actually lives between generations."""
        return self.engine_dir if self.uses_engine else self.checkpoint_path


@dataclass
class ElasticContext:
    """What a rank thread knows about its place in the elastic run.

    ``rank``/``world_size`` are the *current generation's* coordinates
    (ranks are renumbered densely after a shrink); ``spot`` is the
    original rank id from generation 0, stable across generations.
    """

    rank: int
    world_size: int
    generation: int
    spot: int
    store: Store
    namespace: str
    group: object = None
    #: The rank's liveness beacon; step functions may call
    #: ``ctx.heartbeat.suspend(seconds)`` to simulate a flapping rank.
    heartbeat: object = None


@dataclass
class ElasticResult:
    """Outcome of :func:`run_elastic`."""

    completed: bool
    iterations: int
    final_world_size: int
    generations: List[dict]
    losses: List[float]
    checkpoint_path: str

    @property
    def final_loss(self) -> Optional[float]:
        """Last recorded per-iteration loss (rank 0's), or None."""
        return self.losses[-1] if self.losses else None

    @property
    def total_retries(self) -> int:
        """Transport retries summed over every generation."""
        return sum(
            g.get("resilience", {}).get("total_retries", 0)
            for g in self.generations
        )

    @property
    def deaths(self) -> List[int]:
        """Every spot that died, in generation order."""
        return [s for g in self.generations for s in g.get("died", [])]

    @property
    def admissions(self) -> List[int]:
        """Every spot admitted by a grow, in generation order."""
        return [s for g in self.generations for s in g.get("admitted", [])]

    @property
    def flaps(self) -> List[int]:
        """Every spot that flapped (declared dead, then recovered)."""
        return [s for g in self.generations for s in g.get("flapped", [])]


def _classify(error: BaseException) -> str:
    """Death flag kind for a rank-thread exception."""
    return "died" if isinstance(error, InjectedRankFailure) else "failed"


def run_elastic(
    world_size: int,
    setup: Callable,
    step: Callable,
    total_iterations: int,
    config: Optional[ElasticConfig] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> ElasticResult:
    """Run an elastic DDP training session and return its outcome.

    Parameters
    ----------
    world_size:
        Initial number of ranks.
    setup:
        ``setup(ctx: ElasticContext) -> (module, optimizer)`` — build
        the *local* model and its optimizer.  Called fresh on every rank
        in every generation; replicas must construct identically (the
        DDP wrap broadcasts rank 0's state regardless, and checkpoint
        restore then overwrites it with the saved trajectory).
    step:
        ``step(ctx, model, optimizer, iteration) -> float`` — one
        training iteration over the DDP-wrapped ``model``; returns the
        loss.  Shard data by ``ctx.rank`` / ``ctx.world_size``.
    total_iterations:
        Global iteration budget; checkpoints carry the cursor across
        generations, so a shrink resumes where the last save left off.
    config:
        :class:`ElasticConfig`; defaults are test-friendly.
    fault_plan:
        Optional :class:`~repro.resilience.faults.FaultPlan`, installed
        on every generation's hub (rule trigger counts persist across
        generations, so ``times=1`` means once per *session*).
    """
    config = config or ElasticConfig()
    if (
        config.max_world_size is not None
        and world_size > config.max_world_size
    ):
        raise ValueError(
            f"initial world_size={world_size} exceeds "
            f"max_world_size={config.max_world_size}"
        )
    spots = list(range(world_size))
    generations: List[dict] = []
    losses: List[float] = []
    generation = 0

    while True:
        if generation > config.max_restarts:
            raise RankFailedError(
                spots, generation,
                f"exceeded max_restarts={config.max_restarts}",
            )
        report = _run_generation(
            generation, spots, setup, step, total_iterations, config,
            fault_plan,
        )
        generations.append(report)
        losses.extend(report["losses"])
        if report["completed"]:
            return ElasticResult(
                completed=True,
                iterations=report["end_iteration"],
                final_world_size=len(spots),
                generations=generations,
                losses=losses,
                checkpoint_path=config.state_path,
            )

        died = report["died"]
        failed = report["failed"]
        if not died and failed:
            # A real (non-injected, non-collateral) failure: propagate.
            spot, error = failed[0]
            raise RuntimeError(
                f"rank spot {spot} failed in generation {generation}: {error}"
            ) from error
        if died:
            reason = (
                "; ".join(report["death_reasons"].values()) or "heartbeat lost"
            )
            if config.policy == "fail":
                raise RankFailedError(died, generation, reason)
            if config.policy == "shrink":
                spots = [s for s in spots if s not in died]
                if len(spots) < config.min_world_size:
                    raise RankFailedError(
                        died, generation,
                        f"only {len(spots)} survivor(s) left, below "
                        f"min_world_size={config.min_world_size} ({reason})",
                    )
                logger.warning(
                    "elastic: generation %d lost rank spot(s) %s (%s); "
                    "shrinking to world_size=%d",
                    generation, died, reason, len(spots),
                )
            else:  # pause_and_wait: respawn at the original membership.
                logger.warning(
                    "elastic: generation %d lost rank spot(s) %s (%s); "
                    "restarting at world_size=%d as if replaced",
                    generation, died, reason, len(spots),
                )
        elif report["flapped"]:
            logger.warning(
                "elastic: generation %d aborted for flapping rank spot(s) "
                "%s; heartbeats recovered, restarting with the same "
                "membership", generation, report["flapped"],
            )
        # Grow admission (scale-up): consume matured rejoin requests at
        # the boundary, capped by remaining max_world_size capacity.
        # Runs after the shrink filter so a kill + rejoin in the same
        # generation nets out correctly.
        if config.allow_grow and fault_plan is not None:
            capacity = (
                None
                if config.max_world_size is None
                else max(0, config.max_world_size - len(spots))
            )
            admitted = fault_plan.consume_rejoins(
                generation, exclude=spots, limit=capacity
            )
            if admitted:
                spots = sorted(set(spots) | set(admitted))
                logger.warning(
                    "elastic: generation %d admitting returning rank "
                    "spot(s) %s; growing to world_size=%d",
                    generation, admitted, len(spots),
                )
            report["admitted"] = admitted
        generation += 1


def _run_generation(
    generation: int,
    spots: List[int],
    setup: Callable,
    step: Callable,
    total_iterations: int,
    config: ElasticConfig,
    fault_plan: Optional[FaultPlan],
) -> dict:
    """Run one generation to completion or first detected death."""
    world = len(spots)
    ns = f"elastic/gen{generation}"
    store = Store(timeout=config.timeout)
    hub = ReliableTransportHub(
        world,
        default_timeout=config.timeout,
        retry=config.retry,
        seed=config.seed + generation,
    )
    if fault_plan is not None:
        hub.install_fault_plan(fault_plan)
    abort_key = f"{ns}/abort"
    rank0_losses: List[float] = []
    end_iteration = [0]
    errors: Dict[int, BaseException] = {}
    engine_stats: Dict[int, dict] = {}
    lock = threading.Lock()

    def runner(rank: int) -> None:
        ctx = ElasticContext(
            rank=rank,
            world_size=world,
            generation=generation,
            spot=spots[rank],
            store=store,
            namespace=ns,
        )
        set_current_rank(rank)
        heartbeat = Heartbeat(
            store, ns, rank, interval=config.heartbeat_interval
        ).start()
        ctx.heartbeat = heartbeat
        engine: Optional[CheckpointEngine] = None
        try:
            # Re-rendezvous barrier: every admitted member — survivor or
            # returning spot — registers its join before the group
            # forms, so a grown generation cannot start lopsided.
            store.set(f"{ns}/join/rank{rank}", {"spot": spots[rank]})
            store.wait(
                [f"{ns}/join/rank{r}" for r in range(world)],
                timeout=config.timeout,
            )
            group = init_process_group(
                config.backend,
                store=store,
                hub=hub,
                rank=rank,
                world_size=world,
                timeout=config.timeout,
                group_id=f"e{generation}",
                **config.group_kwargs,
            )
            ctx.group = group
            module, optimizer = setup(ctx)

            if config.wrapper is not None:
                model = config.wrapper(module, group)
            else:
                from repro.core.ddp import DistributedDataParallel

                model = DistributedDataParallel(
                    module, process_group=group, **config.ddp_kwargs
                )
            # Sharded wrappers (repro.sharded) checkpoint collectively:
            # every rank participates in the consolidation gathers, at a
            # cadence derived only from the iteration counter so all
            # ranks agree without communication.
            sharded = hasattr(model, "save_training_state")
            if config.uses_engine:
                engine = CheckpointEngine(
                    config.engine_dir,
                    rank=rank,
                    world=world,
                    hub=hub,
                    replication_factor=min(config.replication_factor, world),
                    keep=config.checkpoint_keep,
                    async_write=config.checkpoint_async,
                    fault_plan=fault_plan,
                )

            def save_state(iteration: int) -> None:
                # Engine saves are collective in the same sense as the
                # sharded protocol: every rank calls at the same cadence
                # (full mode writes rank 0's payload, empty manifests
                # elsewhere; sharded mode writes one shard per rank).
                if engine is not None:
                    if sharded:
                        engine.save_sharded(model, iteration=iteration)
                    else:
                        engine.save_full(
                            module, optimizer, iteration=iteration
                        )
                elif sharded:
                    model.save_training_state(
                        config.checkpoint_path, iteration=iteration
                    )
                elif rank == 0:
                    save_training_checkpoint(
                        config.checkpoint_path, module, optimizer,
                        iteration=iteration,
                    )

            start = 0
            if engine is not None:
                info = engine.load_latest(
                    module=module,
                    optimizer=optimizer,
                    model=model if sharded else None,
                )
                if info is not None:
                    start = info["iteration"]
            elif os.path.exists(config.checkpoint_path):
                if sharded:
                    info = model.load_training_state(config.checkpoint_path)
                else:
                    info = load_training_checkpoint(
                        config.checkpoint_path, module, optimizer
                    )
                start = info["iteration"]
            if rank == 0:
                end_iteration[0] = start
            for iteration in range(start, total_iterations):
                if store.try_get(abort_key) is not None:
                    raise _GenerationAborted()
                loss = step(ctx, model, optimizer, iteration)
                if rank == 0:
                    rank0_losses.append(float(loss))
                    end_iteration[0] = iteration + 1
                if (iteration + 1) % config.checkpoint_every == 0:
                    save_state(iteration + 1)
            if total_iterations % config.checkpoint_every and (
                sharded or engine is not None or rank == 0
            ):
                save_state(total_iterations)
            if engine is not None:
                engine.wait(timeout=config.timeout)
            store.set(f"{ns}/done/rank{rank}", True)
        except _GenerationAborted:
            store.set(f"{ns}/done/rank{rank}", "aborted")
        except BaseException as exc:  # noqa: BLE001 - classified below
            kind = _classify(exc)
            if kind != "died" and store.try_get(abort_key) is not None:
                # Collateral damage of the supervisor's hub.close() (or
                # of the dead peer): this rank is a survivor.
                store.set(f"{ns}/done/rank{rank}", "aborted")
            else:
                with lock:
                    errors[rank] = exc
                store.set(
                    f"{ns}/dead/rank{rank}",
                    {"kind": kind, "reason": f"{type(exc).__name__}: {exc}"},
                )
            # A dead process takes its heartbeat with it.
            heartbeat.stop()
        finally:
            if engine is not None:
                with lock:
                    engine_stats[rank] = engine.stats()
                engine.close(timeout=config.timeout)
            heartbeat.stop()
            destroy_process_group()

    threads = [
        threading.Thread(
            target=runner, args=(r,), name=f"elastic-g{generation}-rank{r}",
            daemon=True,
        )
        for r in range(world)
    ]
    monitor = HeartbeatMonitor(
        store, ns, list(range(world)),
        miss_threshold=config.miss_threshold, grace=config.grace,
    )
    for thread in threads:
        thread.start()

    aborted = False
    abort_dead: List[int] = []
    grow_ready: List[int] = []
    deadline = time.monotonic() + config.timeout * (4 + total_iterations * 0.5)
    while any(t.is_alive() for t in threads):
        time.sleep(0.02)
        dead_now = _detect_deaths(store, ns, world, monitor)
        if dead_now and not aborted:
            abort_dead = dead_now
            store.set(abort_key, {"generation": generation, "died": dead_now})
            hub.close()
            aborted = True
        if (
            not aborted
            and config.allow_grow
            and fault_plan is not None
            and (
                config.max_world_size is None
                or world < config.max_world_size
            )
        ):
            # A matured rejoin aborts the running generation exactly
            # like a death would — the grow itself happens at the
            # boundary, where run_elastic consumes the request.  At
            # zero max_world_size capacity the request stays pending
            # (a later shrink may free a slot) and the generation is
            # left alone.
            matured = fault_plan.peek_rejoins(generation, exclude=spots)
            if matured:
                grow_ready = matured
                store.set(
                    abort_key, {"generation": generation, "grow": matured}
                )
                hub.close()
                aborted = True
        if time.monotonic() > deadline:
            store.set(abort_key, {"generation": generation, "died": []})
            hub.close()
            aborted = True
            break
    for thread in threads:
        thread.join(timeout=config.timeout)
    stuck = [t.name for t in threads if t.is_alive()]
    if stuck:
        raise TimeoutError(
            f"elastic generation {generation}: rank thread(s) {stuck} did "
            "not exit after abort"
        )

    died_ranks = _detect_deaths(store, ns, world, monitor)
    # A rank that tripped the monitor mid-generation but is alive again
    # at the boundary (fresh beat, done flag set) was flapping, not
    # dead: it stays in the membership.
    flapped = sorted(
        spots[r] for r in abort_dead if r not in died_ranks
    )
    death_reasons = {}
    failed = []
    for rank, error in sorted(errors.items()):
        if _classify(error) == "died" or rank in died_ranks:
            death_reasons[spots[rank]] = f"{type(error).__name__}: {error}"
        else:
            failed.append((spots[rank], error))
    for rank in died_ranks:
        death_reasons.setdefault(spots[rank], "heartbeat lost")
    completed = not died_ranks and not failed and all(
        store.try_get(f"{ns}/done/rank{r}") is True for r in range(world)
    )
    hub.close()
    return {
        "generation": generation,
        "world_size": world,
        "spots": list(spots),
        "completed": completed,
        "end_iteration": end_iteration[0],
        "losses": rank0_losses,
        "died": sorted(spots[r] for r in died_ranks),
        "failed": failed,
        "death_reasons": death_reasons,
        "flapped": flapped,
        "grow_ready": grow_ready,
        "resilience": hub.resilience_stats(),
        "faults": fault_plan.stats() if fault_plan is not None else None,
        "checkpoint": dict(sorted(engine_stats.items())) or None,
    }


def _detect_deaths(store, ns: str, world: int, monitor) -> List[int]:
    """Ranks currently considered dead: explicit flags + stale heartbeats."""
    dead = []
    for rank in range(world):
        flag = store.try_get(f"{ns}/dead/rank{rank}")
        if flag is not None and flag.get("kind") == "died":
            dead.append(rank)
    for rank in monitor.dead_ranks():
        if rank in dead:
            continue
        if store.try_get(f"{ns}/done/rank{rank}") is not None:
            continue
        if store.try_get(f"{ns}/dead/rank{rank}") is not None:
            continue  # flagged "failed": collateral, not a death
        dead.append(rank)
    return sorted(dead)
