"""Store-based rank heartbeats and dead-rank detection.

The hang watchdog (``repro.debug``) diagnoses a stuck collective after
a large fraction of the group timeout.  Heartbeats detect a *dead* rank
much faster: every rank publishes a monotonically increasing beat into
the rendezvous store from a dedicated daemon thread, and the elastic
supervisor declares a rank dead when its beat stops advancing for
``miss_threshold`` seconds (a handful of heartbeat intervals, typically
two orders of magnitude below the transport timeout).

A rank that is merely *blocked* in a collective keeps beating — its
heartbeat thread is independent of the rank thread — so stalls are left
to the watchdog and only true process death trips the monitor.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence

from repro.telemetry.spans import TRACER


def heartbeat_key(namespace: str, rank: int) -> str:
    """Store key carrying one rank's heartbeat."""
    return f"{namespace}/hb/rank{rank}"


class Heartbeat:
    """Publishes one rank's liveness into the store at a fixed interval."""

    def __init__(self, store, namespace: str, rank: int, interval: float = 0.05):
        self.store = store
        self.namespace = namespace
        self.rank = rank
        self.interval = interval
        self.beats = 0
        self._stop = threading.Event()
        self._suspended_until = 0.0
        self._thread = threading.Thread(
            target=self._loop, name=f"hb-{namespace}-rank{rank}", daemon=True
        )

    def suspend(self, seconds: float) -> None:
        """Stop publishing for ``seconds`` without stopping the thread.

        Simulates a *flapping* rank — one whose beat goes stale long
        enough for the monitor to declare it dead, then resumes within
        the same generation (a GC pause, a swapped-out process).  The
        elastic supervisor distinguishes this from a real death at the
        generation boundary: the beat is fresh again, so the spot is
        kept in (or readmitted to) the membership.
        """
        self._suspended_until = time.monotonic() + seconds

    def beat_once(self) -> None:
        """Publish one beat immediately (also called by the loop)."""
        if time.monotonic() < self._suspended_until:
            return
        self.beats += 1
        self.store.set(
            heartbeat_key(self.namespace, self.rank),
            {"beat": self.beats, "time": time.monotonic()},
        )
        if TRACER.enabled:
            # Instant marker on the merged timeline's resilience row.
            now = time.perf_counter()
            TRACER.record(
                "heartbeat", now, now, cat="resilience", stream="resilience",
                rank=self.rank,
                args={"beat": self.beats, "namespace": self.namespace},
            )

    def start(self) -> "Heartbeat":
        """Publish a first beat and start the background thread."""
        self.beat_once()
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.beat_once()

    def stop(self, timeout: float = 1.0) -> None:
        """Stop beating (the last published beat then goes stale)."""
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=timeout)


class HeartbeatMonitor:
    """Watches a set of ranks' heartbeats and names the dead ones.

    ``grace`` covers startup: a rank that has never published at all is
    only reported dead once the grace period (from monitor construction)
    has passed, so slow thread spawns aren't misread as deaths.
    """

    def __init__(
        self,
        store,
        namespace: str,
        ranks: Sequence[int],
        miss_threshold: float = 0.25,
        grace: float = 2.0,
    ):
        self.store = store
        self.namespace = namespace
        self.ranks = list(ranks)
        self.miss_threshold = miss_threshold
        self.grace = grace
        self._born = time.monotonic()

    def last_beats(self) -> Dict[int, Optional[dict]]:
        """Raw last-published beat per rank (None when never seen)."""
        return {
            rank: self.store.try_get(heartbeat_key(self.namespace, rank))
            for rank in self.ranks
        }

    def beat_age(self, rank: int) -> Optional[float]:
        """Seconds since ``rank`` last beat (None when never seen).

        The supervisor's flap check: a rank declared dead by staleness
        whose age is back under ``miss_threshold`` at the generation
        boundary was flapping, not dead.
        """
        beat = self.store.try_get(heartbeat_key(self.namespace, rank))
        if beat is None:
            return None
        return time.monotonic() - beat["time"]

    def dead_ranks(self) -> List[int]:
        """Ranks whose heartbeat is stale beyond ``miss_threshold``."""
        now = time.monotonic()
        dead = []
        for rank, beat in self.last_beats().items():
            if beat is None:
                if now - self._born > max(self.grace, self.miss_threshold):
                    dead.append(rank)
            elif now - beat["time"] > self.miss_threshold:
                dead.append(rank)
        return dead

    def clear(self) -> int:
        """Delete this namespace's heartbeat keys from the store."""
        return self.store.delete_prefix(f"{self.namespace}/hb/")
