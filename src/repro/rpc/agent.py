"""RPC agents over the point-to-point transport.

Each rank owns an :class:`RpcAgent`: a set of listener threads (one per
peer) that execute registered functions on request and mail results
back.  Calls may be synchronous (``rpc_sync``), future-based
(``rpc_async``), or create a remote object and return a lightweight
:class:`RRef` handle (``remote``) whose methods are invoked remotely —
the pattern parameter-server applications build on (paper §2.2, Table 1
``PT RPC``).
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Callable, Dict, Optional

from repro.comm.transport import TransportHub


class RpcError(RuntimeError):
    """A remote call raised; carries the remote exception's text."""


class _Future:
    """Result placeholder for an in-flight remote call."""

    def __init__(self) -> None:
        self._event = threading.Event()
        self._value: Any = None
        self._error: Optional[str] = None

    def _resolve(self, value: Any, error: Optional[str]) -> None:
        self._value = value
        self._error = error
        self._event.set()

    def wait(self, timeout: Optional[float] = None) -> Any:
        if not self._event.wait(timeout):
            raise TimeoutError("rpc future timed out")
        if self._error is not None:
            raise RpcError(self._error)
        return self._value

    def done(self) -> bool:
        return self._event.is_set()


class RRef:
    """Reference to an object living on ``owner``'s agent.

    ``rref.rpc_sync("method", *args)`` runs ``obj.method(*args)`` on the
    owner; ``to_here()`` fetches a copy of the object.
    """

    def __init__(self, agent: "RpcAgent", owner: int, key: int):
        self._agent = agent
        self.owner = owner
        self.key = key

    def rpc_sync(self, method: str, *args, timeout: Optional[float] = None, **kwargs):
        return self._agent.rpc_sync(
            self.owner, "__rref_call__", self.key, method, args, kwargs, timeout=timeout
        )

    def rpc_async(self, method: str, *args, **kwargs) -> _Future:
        return self._agent.rpc_async(
            self.owner, "__rref_call__", self.key, method, args, kwargs
        )

    def to_here(self, timeout: Optional[float] = None):
        return self._agent.rpc_sync(self.owner, "__rref_get__", self.key, timeout=timeout)


class RpcAgent:
    """One rank's RPC endpoint.

    Functions are registered by name (``register``); every rank must
    construct its agent before peers call into it.  ``shutdown`` stops
    the listeners; :func:`rpc_shutdown_all` coordinates a clean global
    stop.
    """

    def __init__(self, hub: TransportHub, rank: int, timeout: float = 30.0):
        self.hub = hub
        self.rank = rank
        self.world = hub.world_size
        self.timeout = timeout
        self._functions: Dict[str, Callable] = {}
        self._objects: Dict[int, Any] = {}
        self._object_ids = itertools.count()
        self._request_ids = itertools.count()
        self._pending: Dict[int, _Future] = {}
        self._lock = threading.Lock()
        self._running = True

        self.register("__rref_call__", self._rref_call)
        self.register("__rref_get__", self._rref_get)
        self.register("__rref_create__", self._rref_create)

        self._threads = []
        for peer in range(self.world):
            if peer == rank:
                continue
            thread = threading.Thread(
                target=self._listen, args=(peer,),
                name=f"rpc-{rank}-from-{peer}", daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    # -- registry -------------------------------------------------------
    def register(self, name: str, fn: Callable) -> None:
        self._functions[name] = fn

    def _rref_create(self, factory_name: str, args, kwargs) -> int:
        factory = self._functions[factory_name]
        key = next(self._object_ids)
        self._objects[key] = factory(*args, **kwargs)
        return key

    def _rref_call(self, key: int, method: str, args, kwargs):
        obj = self._objects[key]
        return getattr(obj, method)(*args, **kwargs)

    def _rref_get(self, key: int):
        return self._objects[key]

    # -- wire protocol ----------------------------------------------------
    def _listen(self, peer: int) -> None:
        while self._running:
            try:
                message = self.hub.recv(self.rank, peer, "rpc", timeout=self.timeout)
            except Exception:
                return  # timeout or closed hub: listener retires
            kind = message[0]
            if kind == "stop":
                return
            if kind == "request":
                _, request_id, name, args, kwargs = message
                self._handle_request(peer, request_id, name, args, kwargs)
            elif kind == "response":
                _, request_id, value, error = message
                with self._lock:
                    future = self._pending.pop(request_id, None)
                if future is not None:
                    future._resolve(value, error)

    def _handle_request(self, peer, request_id, name, args, kwargs) -> None:
        try:
            fn = self._functions[name]
        except KeyError:
            self._respond(peer, request_id, None, f"no rpc function named {name!r}")
            return
        try:
            value = fn(*args, **kwargs)
        except Exception as exc:  # noqa: BLE001 - serialized to caller
            self._respond(peer, request_id, None, f"{type(exc).__name__}: {exc}")
            return
        self._respond(peer, request_id, value, None)

    def _respond(self, peer, request_id, value, error) -> None:
        self.hub.send(self.rank, peer, "rpc", ("response", request_id, value, error))

    # -- calls ------------------------------------------------------------
    def rpc_async(self, dst: int, name: str, *args, **kwargs) -> _Future:
        if dst == self.rank:
            # local short-circuit, still asynchronous semantics
            future = _Future()
            try:
                future._resolve(self._functions[name](*args, **kwargs), None)
            except Exception as exc:  # noqa: BLE001
                future._resolve(None, f"{type(exc).__name__}: {exc}")
            return future
        request_id = next(self._request_ids)
        future = _Future()
        with self._lock:
            self._pending[request_id] = future
        self.hub.send(self.rank, dst, "rpc", ("request", request_id, name, args, kwargs))
        return future

    def rpc_sync(self, dst: int, name: str, *args, timeout: Optional[float] = None, **kwargs):
        return self.rpc_async(dst, name, *args, **kwargs).wait(timeout or self.timeout)

    def remote(self, dst: int, factory_name: str, *args, **kwargs) -> RRef:
        """Create an object on ``dst`` via its registered factory."""
        key = self.rpc_sync(dst, "__rref_create__", factory_name, args, kwargs)
        return RRef(self, dst, key)

    # -- shutdown --------------------------------------------------------
    def shutdown(self) -> None:
        """Stop this agent's listeners (idempotent, local only)."""
        if not self._running:
            return
        self._running = False
        for peer in range(self.world):
            if peer != self.rank:
                try:
                    self.hub.send(peer, self.rank, "rpc", ("stop",))
                except Exception:  # noqa: BLE001 - hub may be closed
                    pass


def rpc_shutdown_all(agent: RpcAgent, barrier=None) -> None:
    """Coordinated shutdown: optional barrier, then local shutdown."""
    if barrier is not None:
        barrier()
    agent.shutdown()
