"""A minimal RPC framework (the ``torch.distributed.rpc`` analog).

The paper's §2.2 lists three distributed tools: ``DataParallel``,
``DistributedDataParallel`` (this library's core), and "RPC for general
distributed model parallel training (e.g., parameter server)" — Table
1's ``PT RPC`` row.  This package provides that third tool at matching
scope: named remote callables, synchronous and future-based calls, and
remote references to rank-owned objects.
"""

from repro.rpc.agent import RpcAgent, RpcError, RRef, rpc_shutdown_all

__all__ = ["RpcAgent", "RpcError", "RRef", "rpc_shutdown_all"]
