"""Cross-rank straggler detection.

Synchronous data parallelism runs at the pace of its slowest rank: one
replica with a slow input pipeline, a thermally throttled device, or a
congested link stretches *every* iteration (the paper's §6.1 shared-
entitlement slowdowns are exactly this at cluster scale).  The detector
AllGathers each rank's local timing sample — typically the
``backward_compute`` phase from ``ddp_stats()`` — and flags ranks whose
time exceeds ``threshold ×`` the cross-rank median.

This is a **collective**: every rank in the group must call it at the
same point, and every rank receives the identical report, so any rank
can act on it (log, shed load, re-shard) without further coordination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.telemetry.spans import TRACER
from repro.utils.logging import logger


@dataclass
class StragglerReport:
    """Outcome of one cross-rank timing exchange (identical on all ranks)."""

    times: List[float]
    median: float
    threshold: float
    stragglers: List[int] = field(default_factory=list)
    rank: int = 0

    @property
    def is_straggler(self) -> bool:
        return self.rank in self.stragglers

    @property
    def max_slowdown(self) -> float:
        """Slowest rank's time relative to the median (1.0 = balanced)."""
        if self.median <= 0:
            return 1.0
        return max(self.times) / self.median

    def describe(self) -> str:
        lines = [
            f"straggler report (threshold {self.threshold:.2f}× median "
            f"{self.median * 1e3:.3f} ms):"
        ]
        for rank, t in enumerate(self.times):
            flag = "  <-- straggler" if rank in self.stragglers else ""
            lines.append(f"  rank {rank}: {t * 1e3:.3f} ms{flag}")
        return "\n".join(lines)


def detect_stragglers(
    process_group, local_time: float, threshold: float = 1.5
) -> StragglerReport:
    """AllGather ``local_time`` across the group and flag outliers.

    Every rank must call this with its own sample; the returned report
    is identical everywhere.  ``threshold`` is the multiple of the
    cross-rank median beyond which a rank counts as straggling.
    """
    if threshold <= 1.0:
        raise ValueError(f"threshold must exceed 1.0, got {threshold}")
    sample = np.array([float(local_time)], dtype=np.float64)
    gathered = process_group.allgather(sample)
    times = [float(row[0]) for row in gathered]
    median = float(np.median(times))
    stragglers = [
        rank for rank, t in enumerate(times) if median > 0 and t > threshold * median
    ]
    report = StragglerReport(
        times=times,
        median=median,
        threshold=threshold,
        stragglers=stragglers,
        rank=process_group.group_rank,
    )
    if stragglers:
        logger.info(
            "straggler(s) detected: ranks %s (max slowdown %.2fx median)",
            stragglers,
            report.max_slowdown,
        )
    if TRACER.enabled:
        from repro.telemetry.metrics import registry_for

        registry = registry_for()
        registry.counter("straggler.checks").add(1)
        if report.is_straggler:
            registry.counter("straggler.flagged").add(1)
        registry.gauge("straggler.max_slowdown").set(report.max_slowdown)
    return report
