"""Per-rank metrics: counters, gauges, and histograms.

A :class:`MetricsRegistry` is a thread-safe bag of named instruments.
Each rank owns one registry (see :func:`repro.telemetry.metrics`);
worker threads belonging to a rank record into the same registry, so
per-instrument locks keep concurrent ``add``/``observe`` calls exact.

``snapshot()`` freezes a registry into plain dicts and
:func:`merge_snapshots` aggregates snapshots across ranks — the
cross-rank analog of Prometheus federation, scoped to one process:

* counters sum,
* gauges keep per-rank values plus min/max,
* histograms combine counts, sums, extrema, and recent samples.

Instrument names use dotted paths (``allreduce.bytes``,
``bucket.ready_to_launch_delay``); the catalog lives in
``docs/observability.md``.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, Iterable, List, Optional

#: Recent samples kept per histogram for percentile estimation.
HISTOGRAM_SAMPLE_CAPACITY = 1024


def percentile_of(ordered: List[float], q: float) -> float:
    """q-th percentile (0..100) of pre-sorted samples, with linear
    interpolation between adjacent samples (numpy's default method).

    Nearest-rank truncation is fine for p50 over a thousand samples but
    systematically misstates tail percentiles over small pools — a p99
    over 10 samples must interpolate between the two largest, not snap
    to one of them.
    """
    if not ordered:
        raise ValueError("percentile of empty sample pool")
    if len(ordered) == 1:
        return ordered[0]
    position = (q / 100.0) * (len(ordered) - 1)
    position = min(max(position, 0.0), float(len(ordered) - 1))
    lower = int(position)
    fraction = position - lower
    if fraction == 0.0 or lower + 1 >= len(ordered):
        return ordered[lower]
    return ordered[lower] + fraction * (ordered[lower + 1] - ordered[lower])


class Counter:
    """Monotonically increasing count (events, bytes, launches)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def add(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Last-write-wins instantaneous value (queue depth, bucket count)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Streaming distribution: exact count/sum/min/max plus a bounded
    ring of recent samples for percentile estimates."""

    __slots__ = ("name", "_count", "_sum", "_min", "_max", "_samples", "_lock",
                 "_nan_ignored")

    def __init__(self, name: str, sample_capacity: int = HISTOGRAM_SAMPLE_CAPACITY):
        self.name = name
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._samples: deque = deque(maxlen=sample_capacity)
        self._lock = threading.Lock()
        self._nan_ignored = 0

    def observe(self, value: float) -> None:
        value = float(value)
        if value != value:
            # A single NaN would otherwise poison sum/min/max and every
            # percentile forever; drop it but keep an audit count.
            with self._lock:
                self._nan_ignored += 1
            return
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            self._samples.append(value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def nan_ignored(self) -> int:
        """Observations dropped by the NaN guard (monotonic)."""
        return self._nan_ignored

    def percentile(self, q: float) -> Optional[float]:
        """Interpolated q-th percentile (0..100) from recent samples."""
        with self._lock:
            samples = sorted(self._samples)
        if not samples:
            return None
        return percentile_of(samples, q)

    def summary(self) -> Dict[str, float]:
        with self._lock:
            count, total = self._count, self._sum
            lo, hi = self._min, self._max
            samples = list(self._samples)
        if count == 0:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
                    "p50": 0.0, "p95": 0.0, "p99": 0.0, "samples": []}
        ordered = sorted(samples)
        if not ordered:
            # Count moved but the sample ring is empty (possible only
            # with a zero-capacity ring): percentiles are unknowable,
            # serve the mean rather than raising.
            mean = total / count
            return {"count": count, "sum": total, "min": lo, "max": hi,
                    "mean": mean, "p50": mean, "p95": mean, "p99": mean,
                    "samples": []}
        return {
            "count": count,
            "sum": total,
            "min": lo,
            "max": hi,
            "mean": total / count,
            "p50": percentile_of(ordered, 50),
            "p95": percentile_of(ordered, 95),
            "p99": percentile_of(ordered, 99),
            "samples": samples,
        }


class MetricsRegistry:
    """Get-or-create instrument registry for one rank."""

    def __init__(self, rank: Optional[int] = None):
        self.rank = rank
        self._lock = threading.Lock()
        self._instruments: Dict[str, object] = {}

    def _get(self, name: str, kind):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = kind(name)
                self._instruments[name] = instrument
            elif not isinstance(instrument, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}, requested {kind.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._instruments)

    def clear(self) -> None:
        with self._lock:
            self._instruments.clear()

    def snapshot(self) -> Dict[str, Dict]:
        """Freeze into plain dicts: {'counters': {name: value}, ...}."""
        with self._lock:
            instruments = dict(self._instruments)
        out: Dict[str, Dict] = {"rank": self.rank, "counters": {}, "gauges": {},
                                "histograms": {}}
        for name, instrument in sorted(instruments.items()):
            if isinstance(instrument, Counter):
                out["counters"][name] = instrument.value
            elif isinstance(instrument, Gauge):
                out["gauges"][name] = instrument.value
            elif isinstance(instrument, Histogram):
                out["histograms"][name] = instrument.summary()
        return out


# ----------------------------------------------------------------------
# process-wide per-rank registry store
# ----------------------------------------------------------------------
_registries: Dict[Optional[int], MetricsRegistry] = {}
_registries_lock = threading.Lock()


def registry_for(rank: Optional[int] = None) -> MetricsRegistry:
    """Get-or-create the registry for ``rank`` (default: calling thread's
    rank per :mod:`repro.utils.rank`; ``-1`` outside any rank context)."""
    if rank is None:
        from repro.utils.rank import get_current_rank

        current = get_current_rank()
        rank = current if current is not None else -1
    with _registries_lock:
        registry = _registries.get(rank)
        if registry is None:
            registry = MetricsRegistry(rank)
            _registries[rank] = registry
        return registry


def all_snapshots() -> List[Dict[str, Dict]]:
    """Snapshot every rank's registry, ordered by rank."""
    with _registries_lock:
        registries = sorted(_registries.items(), key=lambda kv: kv[0])
    return [registry.snapshot() for _, registry in registries]


def clear_all_registries() -> None:
    with _registries_lock:
        _registries.clear()


def merge_snapshots(snapshots: Iterable[Dict[str, Dict]]) -> Dict[str, Dict]:
    """Aggregate per-rank snapshots into one cross-rank view.

    Histograms are merged at the **sample-pool** level: every rank's
    retained samples join one pool and the cross-rank p50/p95/p99 are
    interpolated over that pool — a cross-rank p99 computed from data,
    never an average of per-rank percentiles (which would understate the
    tail whenever one rank is the slow one).  ``samples_pooled`` reports
    how many samples backed the estimate.

    Snapshots need not share a metric keyset: a rank that died mid-run
    (shrink recovery) or never reached a code path simply contributes
    nothing to the metrics it lacks, and partial histogram summaries
    (e.g. sampler ticks, which drop the sample list) merge on whatever
    fields they carry.
    """
    merged: Dict[str, Dict] = {"ranks": [], "counters": {}, "gauges": {},
                               "histograms": {}}
    for snap in snapshots:
        merged["ranks"].append(snap.get("rank"))
        for name, value in snap.get("counters", {}).items():
            merged["counters"][name] = merged["counters"].get(name, 0.0) + value
        for name, value in snap.get("gauges", {}).items():
            entry = merged["gauges"].setdefault(
                name, {"per_rank": {}, "min": float("inf"), "max": float("-inf")}
            )
            entry["per_rank"][snap.get("rank")] = value
            entry["min"] = min(entry["min"], value)
            entry["max"] = max(entry["max"], value)
        for name, summary in snap.get("histograms", {}).items():
            if not isinstance(summary, dict):
                continue
            entry = merged["histograms"].setdefault(
                name,
                {"count": 0, "sum": 0.0, "min": float("inf"),
                 "max": float("-inf"), "samples": []},
            )
            count = summary.get("count", 0)
            entry["count"] += count
            entry["sum"] += summary.get("sum", 0.0)
            if count:
                entry["min"] = min(entry["min"], summary.get("min", float("inf")))
                entry["max"] = max(entry["max"], summary.get("max", float("-inf")))
            entry["samples"].extend(summary.get("samples", []))
    for entry in merged["histograms"].values():
        entry["mean"] = entry["sum"] / entry["count"] if entry["count"] else 0.0
        ordered = sorted(entry.pop("samples"))
        entry["samples_pooled"] = len(ordered)
        if ordered:
            entry["p50"] = percentile_of(ordered, 50)
            entry["p95"] = percentile_of(ordered, 95)
            entry["p99"] = percentile_of(ordered, 99)
        else:
            entry["p50"] = entry["p95"] = entry["p99"] = 0.0
        if entry["count"] == 0:
            entry["min"] = entry["max"] = 0.0
    return merged
