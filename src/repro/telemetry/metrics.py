"""Per-rank metrics: counters, gauges, and histograms.

A :class:`MetricsRegistry` is a thread-safe bag of named instruments.
Each rank owns one registry (see :func:`repro.telemetry.metrics`);
worker threads belonging to a rank record into the same registry, so
per-instrument locks keep concurrent ``add``/``observe`` calls exact.

``snapshot()`` freezes a registry into plain dicts and
:func:`merge_snapshots` aggregates snapshots across ranks — the
cross-rank analog of Prometheus federation, scoped to one process:

* counters sum,
* gauges keep per-rank values plus min/max,
* histograms combine counts, sums, extrema, and recent samples.

Instrument names use dotted paths (``allreduce.bytes``,
``bucket.ready_to_launch_delay``); the catalog lives in
``docs/observability.md``.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, Iterable, List, Optional

#: Recent samples kept per histogram for percentile estimation.
HISTOGRAM_SAMPLE_CAPACITY = 1024


class Counter:
    """Monotonically increasing count (events, bytes, launches)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def add(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Last-write-wins instantaneous value (queue depth, bucket count)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Streaming distribution: exact count/sum/min/max plus a bounded
    ring of recent samples for percentile estimates."""

    __slots__ = ("name", "_count", "_sum", "_min", "_max", "_samples", "_lock")

    def __init__(self, name: str, sample_capacity: int = HISTOGRAM_SAMPLE_CAPACITY):
        self.name = name
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._samples: deque = deque(maxlen=sample_capacity)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            self._samples.append(value)

    @property
    def count(self) -> int:
        return self._count

    def percentile(self, q: float) -> Optional[float]:
        """Approximate q-th percentile (0..100) from recent samples."""
        with self._lock:
            samples = sorted(self._samples)
        if not samples:
            return None
        index = min(len(samples) - 1, max(0, round(q / 100.0 * (len(samples) - 1))))
        return samples[index]

    def summary(self) -> Dict[str, float]:
        with self._lock:
            count, total = self._count, self._sum
            lo, hi = self._min, self._max
            samples = list(self._samples)
        if count == 0:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
                    "p50": 0.0, "p95": 0.0, "samples": []}
        ordered = sorted(samples)

        def pct(q: float) -> float:
            index = min(len(ordered) - 1, max(0, round(q / 100.0 * (len(ordered) - 1))))
            return ordered[index]

        return {
            "count": count,
            "sum": total,
            "min": lo,
            "max": hi,
            "mean": total / count,
            "p50": pct(50),
            "p95": pct(95),
            "samples": samples,
        }


class MetricsRegistry:
    """Get-or-create instrument registry for one rank."""

    def __init__(self, rank: Optional[int] = None):
        self.rank = rank
        self._lock = threading.Lock()
        self._instruments: Dict[str, object] = {}

    def _get(self, name: str, kind):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = kind(name)
                self._instruments[name] = instrument
            elif not isinstance(instrument, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}, requested {kind.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._instruments)

    def clear(self) -> None:
        with self._lock:
            self._instruments.clear()

    def snapshot(self) -> Dict[str, Dict]:
        """Freeze into plain dicts: {'counters': {name: value}, ...}."""
        with self._lock:
            instruments = dict(self._instruments)
        out: Dict[str, Dict] = {"rank": self.rank, "counters": {}, "gauges": {},
                                "histograms": {}}
        for name, instrument in sorted(instruments.items()):
            if isinstance(instrument, Counter):
                out["counters"][name] = instrument.value
            elif isinstance(instrument, Gauge):
                out["gauges"][name] = instrument.value
            elif isinstance(instrument, Histogram):
                out["histograms"][name] = instrument.summary()
        return out


# ----------------------------------------------------------------------
# process-wide per-rank registry store
# ----------------------------------------------------------------------
_registries: Dict[Optional[int], MetricsRegistry] = {}
_registries_lock = threading.Lock()


def registry_for(rank: Optional[int] = None) -> MetricsRegistry:
    """Get-or-create the registry for ``rank`` (default: calling thread's
    rank per :mod:`repro.utils.rank`; ``-1`` outside any rank context)."""
    if rank is None:
        from repro.utils.rank import get_current_rank

        current = get_current_rank()
        rank = current if current is not None else -1
    with _registries_lock:
        registry = _registries.get(rank)
        if registry is None:
            registry = MetricsRegistry(rank)
            _registries[rank] = registry
        return registry


def all_snapshots() -> List[Dict[str, Dict]]:
    """Snapshot every rank's registry, ordered by rank."""
    with _registries_lock:
        registries = sorted(_registries.items(), key=lambda kv: kv[0])
    return [registry.snapshot() for _, registry in registries]


def clear_all_registries() -> None:
    with _registries_lock:
        _registries.clear()


def merge_snapshots(snapshots: Iterable[Dict[str, Dict]]) -> Dict[str, Dict]:
    """Aggregate per-rank snapshots into one cross-rank view."""
    merged: Dict[str, Dict] = {"ranks": [], "counters": {}, "gauges": {},
                               "histograms": {}}
    for snap in snapshots:
        merged["ranks"].append(snap.get("rank"))
        for name, value in snap.get("counters", {}).items():
            merged["counters"][name] = merged["counters"].get(name, 0.0) + value
        for name, value in snap.get("gauges", {}).items():
            entry = merged["gauges"].setdefault(
                name, {"per_rank": {}, "min": float("inf"), "max": float("-inf")}
            )
            entry["per_rank"][snap.get("rank")] = value
            entry["min"] = min(entry["min"], value)
            entry["max"] = max(entry["max"], value)
        for name, summary in snap.get("histograms", {}).items():
            entry = merged["histograms"].setdefault(
                name,
                {"count": 0, "sum": 0.0, "min": float("inf"),
                 "max": float("-inf"), "samples": []},
            )
            entry["count"] += summary["count"]
            entry["sum"] += summary["sum"]
            if summary["count"]:
                entry["min"] = min(entry["min"], summary["min"])
                entry["max"] = max(entry["max"], summary["max"])
            entry["samples"].extend(summary.get("samples", []))
    for entry in merged["histograms"].values():
        entry["mean"] = entry["sum"] / entry["count"] if entry["count"] else 0.0
        ordered = sorted(entry.pop("samples"))
        if ordered:
            entry["p50"] = ordered[min(len(ordered) - 1, round(0.50 * (len(ordered) - 1)))]
            entry["p95"] = ordered[min(len(ordered) - 1, round(0.95 * (len(ordered) - 1)))]
        else:
            entry["p50"] = entry["p95"] = 0.0
        if entry["count"] == 0:
            entry["min"] = entry["max"] = 0.0
    return merged
