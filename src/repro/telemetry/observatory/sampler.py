"""Background metrics sampling into bounded time series.

The :class:`MetricsSampler` is the observatory's clock: every
``interval`` seconds it freezes each rank's
:class:`~repro.telemetry.metrics.MetricsRegistry` (the same
``snapshot()`` path ``ddp_stats`` uses), folds the snapshots into a
cross-rank aggregate, and appends one point per metric to ring-bounded
:class:`~repro.telemetry.observatory.series.MetricSeries`:

* per-rank series — the raw counter/gauge value, or the histogram
  summary (count/sum/mean/min/max + interpolated p50/p95/p99);
* aggregate series (``rank=None``) — counters and gauges reduced to
  ``{sum, min, max, mean}`` across ranks; histograms merged at the
  sample-pool level so the aggregate p99 is computed from pooled data,
  never from averaged per-rank percentiles.

Each tick also lands in a bounded tick log that :meth:`dump_jsonl`
writes as one JSON object per line — the offline-analysis twin of the
Prometheus exporter's live scrape.

Overhead: sampling is O(instruments) dict work on a daemon thread; at
the default 100 ms interval it stays far below 1% of a DDP iteration
(``bench_hotpath.py`` measures exactly this and ``perfguard`` watches
it).  Samplers started with :meth:`start` register themselves so
distributed-context teardown can :func:`flush_active_samplers` — the
final partial tick is captured even when the run ends between ticks.
"""

from __future__ import annotations

import json
import threading
import time
import weakref
from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.telemetry import metrics as _metrics
from repro.telemetry.observatory.series import (
    DEFAULT_SERIES_CAPACITY,
    MetricSeries,
    SeriesPoint,
)

#: Snapshot cadence (seconds) — 10 Hz, two orders below iteration rate.
DEFAULT_INTERVAL = 0.1

_HIST_FIELDS = ("count", "sum", "mean", "min", "max", "p50", "p95", "p99")

# Samplers currently running (started, not stopped); weak so an
# abandoned sampler does not outlive its references.
_active: "weakref.WeakSet[MetricsSampler]" = weakref.WeakSet()
_active_lock = threading.Lock()


def flush_active_samplers() -> int:
    """Take a final sample on every running sampler (teardown hook).

    Called by ``DistributedContext.close()`` so the tail of a run is
    recorded even if it ended mid-interval.  A sampler that ticked
    within the last half interval is skipped, so the multiple rank
    threads of one harness teardown do not each append a tick.
    Returns the number of samplers flushed.
    """
    with _active_lock:
        samplers = list(_active)
    flushed = 0
    for sampler in samplers:
        if sampler.flush():
            flushed += 1
    return flushed


class MetricsSampler:
    """Periodic snapshot → series pipeline with cross-rank aggregation.

    Use as a background thread (``start()``/``stop()``) or drive ticks
    manually with :meth:`sample_once` for deterministic tests.
    """

    def __init__(
        self,
        interval: float = DEFAULT_INTERVAL,
        capacity: int = DEFAULT_SERIES_CAPACITY,
    ):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = interval
        self.capacity = capacity
        self.generation = -1
        self._series: Dict[Tuple[Optional[int], str], MetricSeries] = {}
        self._ticks: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._last_sample_at = float("-inf")

    # -- lifecycle -------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "MetricsSampler":
        """Begin sampling on a daemon thread (idempotent)."""
        if self.running:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="metrics-sampler", daemon=True
        )
        self._thread.start()
        with _active_lock:
            _active.add(self)
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample_once()

    def stop(self, timeout: float = 1.0, final_sample: bool = True) -> None:
        """Stop the thread; by default records one last tick."""
        self._stop.set()
        if self._thread is not None and self._thread.is_alive():
            self._thread.join(timeout=timeout)
        self._thread = None
        with _active_lock:
            _active.discard(self)
        if final_sample:
            self.sample_once()

    def flush(self) -> bool:
        """Sample now unless a tick landed within the last half interval."""
        if time.perf_counter() - self._last_sample_at < self.interval / 2.0:
            return False
        self.sample_once()
        return True

    # -- sampling --------------------------------------------------------
    def sample_once(self) -> int:
        """Take one tick; returns the tick's generation number."""
        snapshots = _metrics.all_snapshots()
        merged = _metrics.merge_snapshots(snapshots)
        now = time.time()
        self._last_sample_at = time.perf_counter()
        with self._lock:
            self.generation += 1
            generation = self.generation
            for snap in snapshots:
                rank = snap.get("rank")
                for name, value in snap.get("counters", {}).items():
                    self._append(rank, name, "counter", generation, now, value)
                for name, value in snap.get("gauges", {}).items():
                    self._append(rank, name, "gauge", generation, now, value)
                for name, summary in snap.get("histograms", {}).items():
                    self._append(
                        rank, name, "histogram", generation, now,
                        {k: summary[k] for k in _HIST_FIELDS if k in summary},
                    )
            aggregate = self._aggregate(snapshots, merged)
            for name, (kind, value) in aggregate.items():
                self._append(None, name, kind, generation, now, value)
            self._ticks.append(
                {
                    "generation": generation,
                    "time_unix": now,
                    "ranks": merged.get("ranks", []),
                    "aggregate": {name: value for name, (_, value) in aggregate.items()},
                    "per_rank": [
                        {
                            "rank": snap.get("rank"),
                            "counters": dict(snap.get("counters", {})),
                            "gauges": dict(snap.get("gauges", {})),
                            "histograms": {
                                name: {k: s[k] for k in _HIST_FIELDS if k in s}
                                for name, s in snap.get("histograms", {}).items()
                            },
                        }
                        for snap in snapshots
                    ],
                }
            )
        return generation

    def _append(self, rank, name, kind, generation, now, value) -> None:
        key = (rank, name)
        series = self._series.get(key)
        if series is None:
            series = MetricSeries(name, kind, rank, capacity=self.capacity)
            self._series[key] = series
        series.append(SeriesPoint(generation, now, value))

    @staticmethod
    def _aggregate(snapshots, merged) -> Dict[str, Tuple[str, Dict[str, float]]]:
        """Cross-rank per-tick reduction of one round of snapshots."""
        out: Dict[str, Tuple[str, Dict[str, float]]] = {}
        for kind_key, kind in (("counters", "counter"), ("gauges", "gauge")):
            per_name: Dict[str, List[float]] = {}
            for snap in snapshots:
                for name, value in snap.get(kind_key, {}).items():
                    per_name.setdefault(name, []).append(value)
            for name, values in per_name.items():
                out[name] = (
                    kind,
                    {
                        "sum": sum(values),
                        "min": min(values),
                        "max": max(values),
                        "mean": sum(values) / len(values),
                        "ranks": len(values),
                    },
                )
        for name, entry in merged.get("histograms", {}).items():
            out[name] = (
                "histogram",
                {k: entry[k] for k in _HIST_FIELDS if k in entry},
            )
        return out

    # -- queries ---------------------------------------------------------
    def series(self, name: str, rank: Optional[int] = None) -> Optional[MetricSeries]:
        """The series for ``name`` (``rank=None`` = cross-rank aggregate)."""
        with self._lock:
            return self._series.get((rank, name))

    def series_names(self) -> List[str]:
        with self._lock:
            return sorted({name for _, name in self._series})

    def all_series(self) -> List[MetricSeries]:
        with self._lock:
            return list(self._series.values())

    def ticks(self) -> List[dict]:
        """Retained tick records, oldest first (JSON-serializable)."""
        with self._lock:
            return list(self._ticks)

    # -- export ----------------------------------------------------------
    def dump_jsonl(self, path: str) -> str:
        """Write one JSON object per retained tick; returns the path."""
        ticks = self.ticks()
        with open(path, "w") as handle:
            for tick in ticks:
                handle.write(json.dumps(tick))
                handle.write("\n")
        return path
