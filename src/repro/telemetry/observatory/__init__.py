"""The performance observatory: continuous, queryable telemetry.

``repro.telemetry`` captures point-in-time evidence — a metrics
snapshot, a span ring, one Chrome trace.  The observatory turns those
snapshots into *streams* and *attributions*, the substrate the
autotuner and fleet-scale service consume:

* :mod:`~repro.telemetry.observatory.series` — bounded ring-buffer
  time series with per-tick points.
* :mod:`~repro.telemetry.observatory.sampler` — a background
  :class:`MetricsSampler` that snapshots every rank's registry on an
  interval, aggregates across ranks (sum/min/max/mean, pooled-sample
  percentiles), and dumps JSONL for offline analysis.
* :mod:`~repro.telemetry.observatory.exporter` — Prometheus text
  exposition served by a stdlib HTTP exporter (opt-in via
  ``REPRO_METRICS_PORT``).
* :mod:`~repro.telemetry.observatory.profiler` — the critical-path
  profiler: per-iteration wall-time attribution (forward, backward,
  exposed communication, launch gaps, stream idle bubbles) following
  the DAG decomposition of synchronous SGD, with a per-bucket blame
  table and a cross-rank straggler summary.

Typical use::

    from repro import telemetry
    from repro.telemetry import observatory

    telemetry.enable()
    sampler = observatory.MetricsSampler(interval=0.1).start()
    exporter = observatory.start_exporter(port=9095)   # /metrics
    ... run training ...
    sampler.stop()
    sampler.dump_jsonl("metrics.jsonl")
    profile = observatory.CriticalPathProfiler().last_profile()
    print(profile.blame_table())

See ``docs/observability.md`` ("The performance observatory").
"""

from __future__ import annotations

from repro.telemetry.observatory.exporter import (
    PrometheusExporter,
    maybe_start_from_env,
    prometheus_text,
    start_exporter,
    stop_env_exporter,
)
from repro.telemetry.observatory.profiler import (
    CriticalPathProfiler,
    IterationProfile,
    profile_from_detail,
)
from repro.telemetry.observatory.sampler import (
    MetricsSampler,
    flush_active_samplers,
)
from repro.telemetry.observatory.series import MetricSeries, SeriesPoint

__all__ = [
    "CriticalPathProfiler",
    "IterationProfile",
    "MetricSeries",
    "MetricsSampler",
    "PrometheusExporter",
    "SeriesPoint",
    "flush_active_samplers",
    "maybe_start_from_env",
    "profile_from_detail",
    "prometheus_text",
    "start_exporter",
    "stop_env_exporter",
]
