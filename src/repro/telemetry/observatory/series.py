"""Bounded time series of sampled metric values.

A :class:`MetricSeries` is the unit the sampler writes and the
autotuner reads: one named stream of :class:`SeriesPoint` entries, ring
bounded so an always-on sampler can never grow without limit.  Points
carry the sampler's *generation* (a monotonically increasing tick
counter) so ordered comparisons — "the latency stepped up at
generation 12" — do not depend on wall-clock arithmetic.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, NamedTuple, Optional, Union

#: Points retained per series before the ring drops the oldest.
DEFAULT_SERIES_CAPACITY = 512

#: A point's value: a scalar (counter/gauge) or a summary dict
#: (histogram: count/sum/mean/min/max/p50/p95/p99).
Value = Union[float, Dict[str, float]]


class SeriesPoint(NamedTuple):
    """One sampled value: (generation, wall-clock seconds, value)."""

    generation: int
    time: float
    value: Value


class MetricSeries:
    """Ring-bounded stream of sampled values for one (metric, scope).

    ``rank`` is the owning rank for per-rank series and ``None`` for
    the cross-rank aggregate series.  ``kind`` names the source
    instrument (``counter`` / ``gauge`` / ``histogram``) so consumers
    can interpret the value shape without guessing.
    """

    __slots__ = ("name", "kind", "rank", "_points")

    def __init__(self, name: str, kind: str, rank: Optional[int] = None,
                 capacity: int = DEFAULT_SERIES_CAPACITY):
        self.name = name
        self.kind = kind
        self.rank = rank
        self._points: deque = deque(maxlen=capacity)

    def append(self, point: SeriesPoint) -> None:
        self._points.append(point)

    def points(self) -> List[SeriesPoint]:
        """All retained points, oldest first."""
        return list(self._points)

    def values(self) -> List[Value]:
        return [p.value for p in self._points]

    def latest(self) -> Optional[SeriesPoint]:
        return self._points[-1] if self._points else None

    def at_generation(self, generation: int) -> Optional[SeriesPoint]:
        """The point sampled at ``generation``, if still retained."""
        for point in reversed(self._points):
            if point.generation == generation:
                return point
            if point.generation < generation:
                break
        return None

    def __len__(self) -> int:
        return len(self._points)

    def __repr__(self) -> str:
        scope = "aggregate" if self.rank is None else f"rank {self.rank}"
        return (
            f"<MetricSeries {self.name!r} [{self.kind}, {scope}] "
            f"{len(self._points)} points>"
        )
