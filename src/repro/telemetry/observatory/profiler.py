"""Critical-path attribution of iteration wall time.

The DAG model of synchronous SGD (Li et al., arXiv:1805.03812) frames
an iteration as a critical path over compute and communication tasks;
this profiler walks that path through measured timestamps and says
where the wall time went.  Per iteration and rank it attributes:

* ``prepare_s`` — loss + early backward until the first gradient
  (the recorder's ``prepare_to_first_grad`` window);
* ``backward_s`` — local gradient computation (``first_grad`` →
  ``all_grads``);
* ``exposed_comm_s`` — the union of bucket-AllReduce execution time
  that falls *after* backward compute ended: communication the overlap
  machinery failed to hide (paper Fig. 4's exposed tail);
* ``finalize_other_s`` — the rest of finalize (averaging, copy-back,
  launch bookkeeping).

The four terms tile the iteration exactly — they are carved out of the
same ``[prepare, done]`` envelope the recorder stamps — so the
attribution sums to measured iteration wall time by construction.
``overlap_ratio`` uses the recorder's own per-interval formula and
therefore agrees with ``ddp_stats()["comm_compute_overlap_ratio"]``.

Two sources feed the same math:

* :func:`profile_from_detail` — the reducer's always-on
  ``IterationRecorder.last_detail`` (no telemetry required; this is
  what ``ddp_stats()["profile"]`` reports);
* :class:`CriticalPathProfiler` — the span tracer's records, which
  cover *every* retained iteration on *every* rank and so also support
  the cross-rank straggler summary ("rank 2 finished last on 7/10
  iterations").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.telemetry.spans import SpanTracer, TRACER

#: Span names the recorder emits for the per-iteration phases.
_PHASE_PREPARE = "prepare_to_first_grad"
_PHASE_BACKWARD = "backward_compute"
_PHASE_FINALIZE = "finalize(wait+copy_back)"


def _union_within(intervals: Sequence[Tuple[float, float]],
                  lo: float, hi: float) -> float:
    """Total length of the union of ``intervals`` clipped to [lo, hi].

    The union (not the sum) is what "exposed communication" means:
    with ``num_streams > 1`` two buckets' collectives can run
    concurrently, and a second stream busy during the same exposed
    window must not be billed twice against the iteration.
    """
    clipped = sorted(
        (max(start, lo), min(end, hi))
        for start, end in intervals
        if min(end, hi) > max(start, lo)
    )
    total = 0.0
    cursor = lo
    for start, end in clipped:
        start = max(start, cursor)
        if end > start:
            total += end - start
            cursor = end
    return total


@dataclass
class BucketBlame:
    """One bucket's share of the iteration's communication picture."""

    bucket: Optional[int]
    bytes: int
    comm_s: float
    hidden_s: float
    exposed_s: float
    launch_delay_s: float = 0.0

    @property
    def exposed_frac(self) -> float:
        """Fraction of this bucket's own comm time left exposed."""
        return self.exposed_s / self.comm_s if self.comm_s > 0 else 0.0

    def as_dict(self) -> dict:
        return {
            "bucket": self.bucket,
            "bytes": self.bytes,
            "comm_s": self.comm_s,
            "hidden_s": self.hidden_s,
            "exposed_s": self.exposed_s,
            "exposed_frac": self.exposed_frac,
            "launch_delay_s": self.launch_delay_s,
        }


@dataclass
class IterationProfile:
    """Wall-time attribution for one (iteration, rank)."""

    rank: Optional[int]
    iteration: int
    t_start: float
    t_end: float
    prepare_s: float
    backward_s: float
    exposed_comm_s: float
    finalize_other_s: float
    comm_total_s: float
    comm_hidden_s: float
    overlap_ratio: float
    launch_gap_s: float
    idle_bubble_s: float
    buckets: List[BucketBlame] = field(default_factory=list)

    @property
    def total_s(self) -> float:
        return self.t_end - self.t_start

    def attribution(self) -> Dict[str, float]:
        """The four terms that tile the iteration (sum == ``total_s``)."""
        return {
            "prepare_s": self.prepare_s,
            "backward_s": self.backward_s,
            "exposed_comm_s": self.exposed_comm_s,
            "finalize_other_s": self.finalize_other_s,
        }

    def blame(self, top: int = 3) -> List[BucketBlame]:
        """The ``top`` buckets by exposed communication time."""
        ranked = sorted(self.buckets, key=lambda b: b.exposed_s, reverse=True)
        return ranked[:top]

    def summary(self, top: int = 3) -> dict:
        """Compact dict for ``ddp_stats()["profile"]``."""
        return {
            "iteration": self.iteration,
            "total_ms": self.total_s * 1e3,
            "attribution_ms": {
                key.replace("_s", "_ms"): value * 1e3
                for key, value in self.attribution().items()
            },
            "overlap_ratio": self.overlap_ratio,
            "exposed_comm_ms": self.exposed_comm_s * 1e3,
            "launch_gap_ms": self.launch_gap_s * 1e3,
            "idle_bubble_ms": self.idle_bubble_s * 1e3,
            "blame": [
                {
                    "bucket": b.bucket,
                    "exposed_ms": b.exposed_s * 1e3,
                    "exposed_frac": b.exposed_frac,
                    "share_of_exposed": (
                        b.exposed_s / self.exposed_comm_s
                        if self.exposed_comm_s > 0 else 0.0
                    ),
                }
                for b in self.blame(top)
            ],
        }

    def as_dict(self) -> dict:
        return {
            "rank": self.rank,
            "iteration": self.iteration,
            "total_s": self.total_s,
            **self.attribution(),
            "comm_total_s": self.comm_total_s,
            "comm_hidden_s": self.comm_hidden_s,
            "overlap_ratio": self.overlap_ratio,
            "launch_gap_s": self.launch_gap_s,
            "idle_bubble_s": self.idle_bubble_s,
            "buckets": [b.as_dict() for b in self.buckets],
        }

    def blame_table(self) -> str:
        """Human-readable attribution + per-bucket blame report."""
        ms = 1e3
        lines = [
            f"critical path — iteration {self.iteration}"
            + (f", rank {self.rank}" if self.rank is not None else "")
            + f": {self.total_s * ms:.3f} ms",
            f"  prepare {self.prepare_s * ms:.3f} ms | "
            f"backward {self.backward_s * ms:.3f} ms | "
            f"exposed comm {self.exposed_comm_s * ms:.3f} ms | "
            f"finalize other {self.finalize_other_s * ms:.3f} ms",
            f"  overlap ratio {self.overlap_ratio:.3f} "
            f"(hid {self.comm_hidden_s * ms:.3f} of "
            f"{self.comm_total_s * ms:.3f} ms comm); "
            f"launch gaps {self.launch_gap_s * ms:.3f} ms, "
            f"comm idle bubbles {self.idle_bubble_s * ms:.3f} ms",
            "  bucket      bytes   comm_ms  hidden_ms  exposed_ms  exposed%",
        ]
        for blame in sorted(self.buckets, key=lambda b: b.exposed_s, reverse=True):
            label = "-" if blame.bucket is None else str(blame.bucket)
            lines.append(
                f"  {label:<6} {blame.bytes:>10} {blame.comm_s * ms:>9.3f} "
                f"{blame.hidden_s * ms:>10.3f} {blame.exposed_s * ms:>11.3f} "
                f"{blame.exposed_frac * 100:>8.1f}%"
            )
        if not self.buckets:
            lines.append("  (no communication intervals recorded)")
        return "\n".join(lines)


def _build_profile(
    rank: Optional[int],
    iteration: int,
    t_prepare: float,
    t_first: float,
    t_all: float,
    t_done: float,
    comm: Sequence[Tuple[Optional[int], int, float, float]],
    launch_delays: Dict[Optional[int], float],
) -> IterationProfile:
    """Shared attribution math over (bucket, bytes, start, end) intervals."""
    intervals = [(start, end) for _, _, start, end in comm]
    # Recorder-identical per-interval sums (overlap ratio agreement).
    comm_total = sum(end - start for start, end in intervals)
    comm_hidden = sum(
        max(0.0, min(end, t_all) - max(start, t_first))
        for start, end in intervals
    )
    overlap_ratio = (comm_hidden / comm_total) if comm_total > 0 else 0.0
    exposed = _union_within(intervals, t_all, t_done)
    finalize = max(0.0, t_done - t_all)
    buckets = [
        BucketBlame(
            bucket=bucket,
            bytes=nbytes,
            comm_s=end - start,
            hidden_s=max(0.0, min(end, t_all) - max(start, t_first)),
            exposed_s=max(0.0, min(end, t_done) - max(start, t_all)),
            launch_delay_s=launch_delays.get(bucket, 0.0),
        )
        for bucket, nbytes, start, end in comm
    ]
    # Idle bubbles: time inside the communication window where no
    # collective was executing — launch-ordering stalls and queueing
    # gaps on the comm stream(s).
    if intervals:
        comm_lo = min(start for start, _ in intervals)
        comm_hi = max(end for _, end in intervals)
        busy = _union_within(intervals, comm_lo, comm_hi)
        idle_bubble = max(0.0, (comm_hi - comm_lo) - busy)
    else:
        idle_bubble = 0.0
    return IterationProfile(
        rank=rank,
        iteration=iteration,
        t_start=t_prepare,
        t_end=t_done,
        prepare_s=max(0.0, t_first - t_prepare),
        backward_s=max(0.0, t_all - t_first),
        exposed_comm_s=exposed,
        finalize_other_s=max(0.0, finalize - exposed),
        comm_total_s=comm_total,
        comm_hidden_s=comm_hidden,
        overlap_ratio=overlap_ratio,
        launch_gap_s=sum(launch_delays.values()),
        idle_bubble_s=idle_bubble,
        buckets=buckets,
    )


def profile_from_detail(detail: dict, rank: Optional[int] = None
                        ) -> Optional[IterationProfile]:
    """Build a profile from ``IterationRecorder.last_detail``.

    Works with telemetry disabled — the recorder's coarse clock is
    always on.  Returns ``None`` when no iteration has finished yet.
    """
    stamps = detail.get("timestamps")
    if not stamps:
        return None
    comm = [
        (entry["bucket"], entry.get("bytes", 0),
         entry["comm_start"], entry["comm_end"])
        for entry in detail.get("buckets", ())
        if "comm_start" in entry
    ]
    delays = {
        entry["bucket"]: entry.get("ready_to_launch_delay_s", 0.0)
        for entry in detail.get("buckets", ())
    }
    return _build_profile(
        rank,
        detail.get("iteration", -1),
        stamps["prepare"],
        stamps["first_grad"],
        stamps["all_grads"],
        stamps["done"],
        comm,
        delays,
    )


@dataclass
class StragglerSummary:
    """Which rank finished its iterations last, and how often."""

    iterations: int
    finish_counts: Dict[int, int]

    @property
    def straggler(self) -> Optional[int]:
        if not self.finish_counts:
            return None
        return max(self.finish_counts, key=lambda r: (self.finish_counts[r], r))

    def describe(self) -> str:
        if not self.iterations:
            return "no profiled iterations"
        rank = self.straggler
        return (
            f"rank {rank} is the straggler on "
            f"{self.finish_counts.get(rank, 0)}/{self.iterations} iterations"
        )


class CriticalPathProfiler:
    """Builds :class:`IterationProfile` objects from span records.

    Requires telemetry to have been enabled during the run — the spans
    are the evidence.  One profiler call reads the tracer's current
    rings; it holds no state of its own.
    """

    def __init__(self, tracer: Optional[SpanTracer] = None):
        self.tracer = tracer or TRACER

    # -- span grouping ---------------------------------------------------
    def _collect(self) -> Dict[Tuple[int, int], dict]:
        """Group spans into per-(rank, iteration) evidence bags."""
        bags: Dict[Tuple[int, int], dict] = {}
        comm_by_rank: Dict[int, list] = {}
        for span in self.tracer.spans():
            args = span.args or {}
            if span.cat == "iteration" and "iteration" in args:
                key = (span.rank, args["iteration"])
                bag = bags.setdefault(key, {"phases": {}, "delays": {}})
                bag["envelope"] = (span.t_start, span.t_end)
            elif span.name in (_PHASE_PREPARE, _PHASE_BACKWARD,
                               _PHASE_FINALIZE) and "iteration" in args:
                key = (span.rank, args["iteration"])
                bag = bags.setdefault(key, {"phases": {}, "delays": {}})
                bag["phases"][span.name] = (span.t_start, span.t_end)
            elif span.cat == "bucket" and "iteration" in args:
                key = (span.rank, args["iteration"])
                bag = bags.setdefault(key, {"phases": {}, "delays": {}})
                bag["delays"][args.get("bucket")] = span.duration
            elif span.cat == "comm":
                comm_by_rank.setdefault(span.rank, []).append(span)
        # Attribute comm spans to iterations by time containment of
        # their start (a bucket AllReduce is launched inside exactly one
        # iteration window, even if it drains into finalize).
        for (rank, _iteration), bag in bags.items():
            envelope = bag.get("envelope")
            if envelope is None:
                continue
            lo, hi = envelope
            bag["comm"] = [
                (span.args.get("bucket") if span.args else None,
                 (span.args or {}).get("bytes", 0),
                 span.t_start, span.t_end)
                for span in comm_by_rank.get(rank, ())
                if lo <= span.t_start < hi
                and (span.args or {}).get("op", "allreduce") == "allreduce"
            ]
        return bags

    # -- profiles --------------------------------------------------------
    def profiles(self, rank: Optional[int] = None) -> List[IterationProfile]:
        """Profiles for every complete (iteration, rank) in the tracer,
        ordered by iteration then rank; optionally one rank only."""
        out: List[IterationProfile] = []
        for (span_rank, iteration), bag in sorted(self._collect().items(),
                                                  key=lambda kv: (kv[0][1], kv[0][0])):
            if rank is not None and span_rank != rank:
                continue
            envelope = bag.get("envelope")
            if envelope is None:
                continue  # phase spans survived the ring, umbrella did not
            t0, t3 = envelope
            prepare = bag["phases"].get(_PHASE_PREPARE)
            backward = bag["phases"].get(_PHASE_BACKWARD)
            t1 = prepare[1] if prepare else t0
            t2 = backward[1] if backward else t1
            out.append(
                _build_profile(span_rank, iteration, t0, t1, t2, t3,
                               bag.get("comm", []), bag["delays"])
            )
        return out

    def profile(self, rank: int, iteration: Optional[int] = None
                ) -> Optional[IterationProfile]:
        """One rank's profile for ``iteration`` (default: its latest)."""
        candidates = self.profiles(rank=rank)
        if iteration is not None:
            for candidate in candidates:
                if candidate.iteration == iteration:
                    return candidate
            return None
        return candidates[-1] if candidates else None

    def last_profile(self) -> Optional[IterationProfile]:
        """The latest profiled iteration (lowest rank on ties)."""
        profiles = self.profiles()
        if not profiles:
            return None
        last_iteration = max(p.iteration for p in profiles)
        for profile in profiles:
            if profile.iteration == last_iteration:
                return profile
        return None

    # -- cross-rank straggler attribution --------------------------------
    def straggler_summary(self) -> StragglerSummary:
        """Count, per rank, how often it finished an iteration last."""
        by_iteration: Dict[int, List[IterationProfile]] = {}
        for profile in self.profiles():
            by_iteration.setdefault(profile.iteration, []).append(profile)
        counts: Dict[int, int] = {}
        judged = 0
        for _iteration, group in sorted(by_iteration.items()):
            if len(group) < 2:
                continue
            judged += 1
            laggard = max(group, key=lambda p: p.t_end)
            counts[laggard.rank] = counts.get(laggard.rank, 0) + 1
        return StragglerSummary(iterations=judged, finish_counts=counts)
