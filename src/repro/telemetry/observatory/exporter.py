"""Prometheus text exposition over a stdlib HTTP exporter.

:func:`prometheus_text` renders every rank's registry in the Prometheus
text exposition format (version 0.0.4): counters become ``_total``
counters, gauges stay gauges, and histograms render as summaries —
``{quantile="..."}`` sample lines plus ``_sum``/``_count`` — all
labelled with ``rank``.  :func:`start_exporter` serves it from a
daemon-threaded ``http.server`` on ``/metrics``, so a real Prometheus
can scrape a training run with zero dependencies::

    scrape_configs:
      - job_name: repro
        static_configs: [{targets: ["localhost:9095"]}]

Opt-in from the environment: ``REPRO_METRICS_PORT=9095`` starts the
exporter (and enables telemetry) at import time via
:func:`maybe_start_from_env`.
"""

from __future__ import annotations

import os
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional

from repro.telemetry import metrics as _metrics
from repro.utils.logging import logger

#: Every emitted metric name gets this prefix (Prometheus namespace).
NAMESPACE = "repro"

#: Histogram quantiles exposed as summary samples.
QUANTILES = ((0.5, "p50"), (0.95, "p95"), (0.99, "p99"))

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(name: str) -> str:
    """Sanitize a dotted instrument name into a Prometheus metric name."""
    sanitized = _INVALID_CHARS.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return f"{NAMESPACE}_{sanitized}"


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def prometheus_text(snapshots: Optional[List[dict]] = None) -> str:
    """Render snapshots (default: every rank's live registry) as
    Prometheus text exposition; one ``rank`` label per sample."""
    if snapshots is None:
        snapshots = _metrics.all_snapshots()
    counters: Dict[str, List[str]] = {}
    gauges: Dict[str, List[str]] = {}
    summaries: Dict[str, List[str]] = {}
    for snap in snapshots:
        rank = snap.get("rank")
        label = f'{{rank="{rank}"}}'
        for name, value in sorted(snap.get("counters", {}).items()):
            base = metric_name(name) + "_total"
            counters.setdefault(base, []).append(f"{base}{label} {_fmt(value)}")
        for name, value in sorted(snap.get("gauges", {}).items()):
            base = metric_name(name)
            gauges.setdefault(base, []).append(f"{base}{label} {_fmt(value)}")
        for name, summary in sorted(snap.get("histograms", {}).items()):
            base = metric_name(name)
            lines = summaries.setdefault(base, [])
            for quantile, key in QUANTILES:
                lines.append(
                    f'{base}{{rank="{rank}",quantile="{quantile}"}} '
                    f"{_fmt(summary.get(key, 0.0))}"
                )
            lines.append(f"{base}_sum{label} {_fmt(summary.get('sum', 0.0))}")
            lines.append(f"{base}_count{label} {_fmt(summary.get('count', 0))}")
    out: List[str] = []
    for base, lines in sorted(counters.items()):
        out.append(f"# TYPE {base} counter")
        out.extend(lines)
    for base, lines in sorted(gauges.items()):
        out.append(f"# TYPE {base} gauge")
        out.extend(lines)
    for base, lines in sorted(summaries.items()):
        out.append(f"# TYPE {base} summary")
        out.extend(lines)
    return "\n".join(out) + "\n" if out else "\n"


class _MetricsHandler(BaseHTTPRequestHandler):
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path.split("?")[0] not in ("/metrics", "/"):
            self.send_error(404, "metrics live at /metrics")
            return
        body = prometheus_text().encode()
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # silence stderr
        logger.debug("metrics exporter: " + format, *args)


class PrometheusExporter:
    """A running ``/metrics`` endpoint (construct via :func:`start_exporter`)."""

    def __init__(self, host: str, port: int):
        self._server = ThreadingHTTPServer((host, port), _MetricsHandler)
        self._server.daemon_threads = True
        self.host, self.port = self._server.server_address[:2]
        self._closed = False
        self._close_lock = threading.Lock()
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"metrics-exporter:{self.port}",
            daemon=True,
        )
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Stop serving and release the port (idempotent, thread-safe)."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=1.0)

    def __repr__(self) -> str:
        return f"<PrometheusExporter {self.url}>"


def start_exporter(port: int = 0, host: str = "127.0.0.1") -> PrometheusExporter:
    """Serve ``/metrics`` on ``host:port`` (``port=0`` = ephemeral)."""
    exporter = PrometheusExporter(host, port)
    logger.info("Prometheus exporter serving %s", exporter.url)
    return exporter


_env_exporter: Optional[PrometheusExporter] = None


def maybe_start_from_env() -> Optional[PrometheusExporter]:
    """Start the exporter when ``REPRO_METRICS_PORT`` is set (idempotent).

    Asking for a scrape endpoint implies wanting metrics, so this also
    enables telemetry recording.
    """
    global _env_exporter
    if _env_exporter is not None:
        return _env_exporter
    raw = os.environ.get("REPRO_METRICS_PORT", "").strip()
    if not raw:
        return None
    try:
        port = int(raw)
    except ValueError:
        logger.warning("REPRO_METRICS_PORT=%r is not a port number; ignored", raw)
        return None
    from repro.telemetry import spans as _spans

    _spans.enable()
    _env_exporter = start_exporter(port=port)
    return _env_exporter


def stop_env_exporter() -> None:
    """Close the ``REPRO_METRICS_PORT`` exporter and forget it, so a
    later :func:`maybe_start_from_env` can start fresh (idempotent; the
    lifecycle tests' teardown hook)."""
    global _env_exporter
    if _env_exporter is not None:
        _env_exporter.close()
        _env_exporter = None
