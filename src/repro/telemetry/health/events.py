"""Bounded cross-rank causal event log for collective lifecycles.

Every existing evidence source answers "what happened on *this* rank":
the flight recorder keeps one rank's collective ring, the span tracer
one rank's intervals.  Diagnosing distributed pathologies needs the
*join*: the same collective, seen from every rank, in causal order —
rank 2 launched ``allreduce#14`` 80 ms after everyone else is a
straggler signature no single-rank view can show.

The :class:`EventLog` is a per-rank bounded ring of small structured
:class:`HealthEvent` records (schedule/start/complete/failed lifecycle
marks, bucket launches, resilience incidents).  Records carry the
trace context that makes cross-rank stitching possible — ``(group,
seq)`` names one collective globally, exactly the identifier every
rank already agrees on by construction (ordered collectives, paper
§3.3) — so :func:`merge_causal_timeline` can fold all ranks' logs into
one per-collective causal timeline without clock agreement tricks:
all rank threads share one ``perf_counter`` clock.

Recording is gated by callers on telemetry being enabled (plus the
health kill switch in :mod:`~repro.telemetry.health.accounting`), so
the disabled path costs nothing.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Events retained per rank; old events fall off the front.
EVENT_LOG_CAPACITY = 4096


@dataclass(slots=True)
class HealthEvent:
    """One structured lifecycle event on one rank's timeline.

    ``kind`` is free-form but the runtime emits a small vocabulary:
    ``schedule`` / ``start`` / ``complete`` / ``failed`` (collective
    lifecycle, from the process-group worker), ``bucket_launch`` (the
    reducer handing a gradient bucket to communication), and the
    resilience incidents (``retransmit``, ``retry``,
    ``duplicate_dropped``, ``corrupt_detected``).
    """

    kind: str
    rank: int
    t: float
    iteration: Optional[int] = None
    group: Optional[int] = None
    seq: Optional[int] = None
    op: Optional[str] = None
    bucket: Optional[int] = None
    nbytes: Optional[int] = None
    extra: Optional[dict] = None

    def as_dict(self) -> dict:
        out = {"kind": self.kind, "rank": self.rank, "t": self.t}
        for key in ("iteration", "group", "seq", "op", "bucket", "nbytes", "extra"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out


@dataclass
class EventLog:
    """Bounded ring of :class:`HealthEvent` records for one rank."""

    rank: int
    capacity: int = EVENT_LOG_CAPACITY
    _events: List[HealthEvent] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock)
    _dropped: int = 0

    def record(self, kind: str, **fields) -> HealthEvent:
        """Append one event (timestamped now unless ``t`` is given)."""
        t = fields.pop("t", None)
        event = HealthEvent(
            kind=kind,
            rank=self.rank,
            t=time.perf_counter() if t is None else t,
            **fields,
        )
        with self._lock:
            self._events.append(event)
            if len(self._events) > self.capacity:
                overflow = len(self._events) - self.capacity
                del self._events[:overflow]
                self._dropped += overflow
        return event

    def events(self) -> List[HealthEvent]:
        with self._lock:
            return list(self._events)

    def depth(self) -> int:
        with self._lock:
            return len(self._events)

    @property
    def dropped(self) -> int:
        """Events evicted by the capacity bound (monotonic)."""
        return self._dropped

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def as_dicts(self) -> List[dict]:
        return [event.as_dict() for event in self.events()]


# ----------------------------------------------------------------------
# process-wide per-rank log store (mirrors the metrics registry store)
# ----------------------------------------------------------------------
_logs: Dict[int, EventLog] = {}
_logs_lock = threading.Lock()


def event_log_for(rank: int) -> EventLog:
    """Get-or-create the event log for ``rank``."""
    with _logs_lock:
        log = _logs.get(rank)
        if log is None:
            log = EventLog(rank)
            _logs[rank] = log
        return log


def all_event_logs() -> Dict[int, EventLog]:
    """Every rank's event log, keyed by rank."""
    with _logs_lock:
        return dict(_logs)


def clear_event_logs() -> None:
    with _logs_lock:
        _logs.clear()


def record_event(rank: int, kind: str, **fields) -> HealthEvent:
    """Record one event on ``rank``'s log (creating the log on demand)."""
    return event_log_for(rank).record(kind, **fields)


# ----------------------------------------------------------------------
# cross-rank stitching
# ----------------------------------------------------------------------
def merge_causal_timeline(
    logs: Optional[Dict[int, EventLog]] = None,
) -> List[dict]:
    """Stitch per-rank logs into one causal timeline per collective.

    Events carrying a ``(group, seq)`` trace context are grouped by that
    key — the globally agreed identity of one collective — and each
    group's events are ordered by timestamp (all ranks share the process
    ``perf_counter`` clock, so the order is causal, not approximate).

    Returns one record per collective, ordered by (group, seq)::

        {"group": 0, "seq": 14, "op": "allreduce", "bucket": 3,
         "ranks": [0, 1, 2, 3],
         "events": [{...}, ...],            # time-ordered, all ranks
         "t_first": ..., "t_last": ...,
         "start_skew_s": 0.081}             # max-min of 'start' marks

    ``start_skew_s`` is the straggler signature: how far apart the ranks
    began executing the same collective.
    """
    if logs is None:
        logs = all_event_logs()
    keyed: Dict[tuple, List[HealthEvent]] = {}
    loose: List[HealthEvent] = []
    for log in logs.values():
        for event in log.events():
            if event.group is not None and event.seq is not None:
                keyed.setdefault((event.group, event.seq), []).append(event)
            else:
                loose.append(event)

    timeline: List[dict] = []
    for (group, seq), events in sorted(keyed.items()):
        events.sort(key=lambda e: e.t)
        starts = [e.t for e in events if e.kind == "start"]
        op = next((e.op for e in events if e.op is not None), None)
        bucket = next((e.bucket for e in events if e.bucket is not None), None)
        timeline.append(
            {
                "group": group,
                "seq": seq,
                "op": op,
                "bucket": bucket,
                "ranks": sorted({e.rank for e in events}),
                "events": [e.as_dict() for e in events],
                "t_first": events[0].t,
                "t_last": events[-1].t,
                "start_skew_s": (max(starts) - min(starts)) if len(starts) > 1 else 0.0,
            }
        )
    # Events without a collective identity (heartbeats, free-form marks)
    # are not lost — they ride along under a sentinel record.
    if loose:
        loose.sort(key=lambda e: e.t)
        timeline.append(
            {
                "group": None,
                "seq": None,
                "op": None,
                "bucket": None,
                "ranks": sorted({e.rank for e in loose}),
                "events": [e.as_dict() for e in loose],
                "t_first": loose[0].t,
                "t_last": loose[-1].t,
                "start_skew_s": 0.0,
            }
        )
    return timeline


def seq_frontier(logs: Optional[Dict[int, EventLog]] = None) -> Dict[int, Dict[int, int]]:
    """Per group: each rank's highest *started* collective sequence.

    The desync-precursor detector compares frontiers — a rank whose
    frontier trails the group's leader by many collectives is drifting
    toward the hang the debug watchdog would eventually catch.
    """
    if logs is None:
        logs = all_event_logs()
    frontier: Dict[int, Dict[int, int]] = {}
    for rank, log in logs.items():
        for event in log.events():
            if event.group is None or event.seq is None:
                continue
            if event.kind not in ("start", "complete"):
                continue
            per_group = frontier.setdefault(event.group, {})
            if event.seq > per_group.get(rank, -1):
                per_group[rank] = event.seq
    return frontier
