"""Comm health engine: efficiency accounting, causal event log, and
automated anomaly attribution.

Three layers, bottom up:

* :mod:`~repro.telemetry.health.accounting` — per-collective achieved
  bus bandwidth, chunk-pipeline utilization, and receive-stall
  attribution, measured in the process-group worker and published as
  ordinary registry metrics.
* :mod:`~repro.telemetry.health.events` — a bounded per-rank
  :class:`EventLog` of collective lifecycle and resilience events,
  stitched across ranks into causal timelines by ``(group, seq)``.
* :mod:`~repro.telemetry.health.engine` — rule-based detectors fusing
  both into :class:`Diagnosis` verdicts (straggler, slow link, overlap
  collapse, retransmit storm, desync precursor), live via
  ``ddp_stats()["health"]`` or offline via ``tools/healthctl.py``.
"""

from repro.telemetry.health.accounting import (
    bus_bytes,
    collecting_enabled,
    expected_collective_s,
    is_enabled,
    set_enabled,
)
from repro.telemetry.health.diagnosis import (
    DESYNC_PRECURSOR,
    DIAGNOSIS_KINDS,
    OVERLAP_COLLAPSE,
    PERSISTENT_STRAGGLER,
    RETRANSMIT_STORM,
    SLOW_LINK,
    Diagnosis,
    render_diagnoses,
)
from repro.telemetry.health.engine import (
    Thresholds,
    analyze_jsonl,
    analyze_snapshots,
    analyze_ticks,
    health_report,
)
from repro.telemetry.health.events import (
    EVENT_LOG_CAPACITY,
    EventLog,
    HealthEvent,
    all_event_logs,
    clear_event_logs,
    event_log_for,
    merge_causal_timeline,
    record_event,
    seq_frontier,
)

__all__ = [
    "EVENT_LOG_CAPACITY",
    "DIAGNOSIS_KINDS",
    "DESYNC_PRECURSOR",
    "OVERLAP_COLLAPSE",
    "PERSISTENT_STRAGGLER",
    "RETRANSMIT_STORM",
    "SLOW_LINK",
    "Diagnosis",
    "EventLog",
    "HealthEvent",
    "Thresholds",
    "all_event_logs",
    "analyze_jsonl",
    "analyze_snapshots",
    "analyze_ticks",
    "bus_bytes",
    "clear_event_logs",
    "collecting_enabled",
    "event_log_for",
    "expected_collective_s",
    "health_report",
    "is_enabled",
    "merge_causal_timeline",
    "record_event",
    "render_diagnoses",
    "seq_frontier",
    "set_enabled",
]
