"""Per-collective efficiency accounting: achieved bandwidth and stalls.

The paper's bucket-size study (Figs. 7/8) and the IBM large-systems
work (arXiv:1711.00705) both rest on one number per collective: how
fast did it *actually* go, against how fast the α–β model says it
*could* go.  This module computes that number where the truth lives —
the process-group worker thread that executed the collective — and
publishes it as ordinary registry metrics, so the sampler, the
Prometheus exporter, and ``ddp_stats()["health"]`` all see it without
new plumbing:

* ``comm.collective_latency_s`` (histogram) — execution wall time.
* ``comm.achieved_busbw_gbps`` (histogram) — achieved *bus* bandwidth
  of AllReduce-family ops: ``2(p−1)/p · nbytes / t``, the NCCL-tests
  convention that makes numbers comparable across world sizes.
* ``comm.model_efficiency`` (histogram) — cost-model expected time over
  achieved time (1.0 = running exactly at the analytic expectation;
  recorded only for backends with a calibrated model).
* ``comm.chunk_pipeline_utilization`` (histogram) — fraction of the
  collective's wall time *not* spent blocked in ``recv``: 1.0 means the
  chunk pipeline kept data always in flight, 0.0 means pure waiting.
* ``comm.recv_stall_s`` / ``comm.recv_stall_s.from_rank_N`` (counters)
  — receive-wait seconds, total and attributed to the sending peer.
  The per-source split is the causal signal the anomaly detectors use:
  a straggling rank shows up as stall *from* it on every peer it feeds,
  a sick link as stall on exactly one (src → dst) edge.
* ``health.collectives_accounted`` (counter) — denominator for rates.

The stall attribution is collected by the collective algorithms
themselves (:func:`note_recv_stall` from a thread-local accumulator the
worker brackets with :func:`begin_collective` / :func:`end_collective`)
— each process-group stream is its own thread, so accumulators never
cross collectives.

Everything here is gated on telemetry being enabled *and* the health
kill switch (:func:`set_enabled`); while off, the hot path pays one
attribute check.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

from repro.telemetry.metrics import registry_for
from repro.telemetry.spans import TRACER

#: Health accounting kill switch (benchmarks measure its cost).
_ENABLED = True

_local = threading.local()


def set_enabled(enabled: bool) -> None:
    """Turn health accounting (and event logging) on or off globally."""
    global _ENABLED
    _ENABLED = bool(enabled)


def is_enabled() -> bool:
    """Whether the health layer records when telemetry is enabled."""
    return _ENABLED


def active() -> bool:
    """True when a bracketed collective is collecting on this thread.

    The algorithms' receive helper checks this one flag — cheaper than
    re-testing tracer + kill switch per chunk, and naturally False on
    threads (or calls) the worker did not bracket.
    """
    return getattr(_local, "collecting", False)


def begin_collective() -> None:
    """Start stall collection for the collective about to run."""
    _local.collecting = True
    _local.stall_s = 0.0
    _local.stall_by_src = {}
    _local.chunks = 0


def note_recv_stall(src: int, seconds: float) -> None:
    """Attribute ``seconds`` of receive wait to sending rank ``src``."""
    if not getattr(_local, "collecting", False):
        return
    _local.stall_s += seconds
    by_src = _local.stall_by_src
    by_src[src] = by_src.get(src, 0.0) + seconds
    _local.chunks += 1


def end_collective() -> Tuple[float, Dict[int, float], int]:
    """Stop collecting; returns (total stall, per-source stall, chunks)."""
    stall = getattr(_local, "stall_s", 0.0)
    by_src = getattr(_local, "stall_by_src", {})
    chunks = getattr(_local, "chunks", 0)
    _local.collecting = False
    _local.stall_s = 0.0
    _local.stall_by_src = {}
    _local.chunks = 0
    return stall, by_src, chunks


#: Ops whose payload crosses the bottleneck ~2(p−1)/p times (bus-bandwidth
#: convention applies); other ops report algorithm bandwidth (nbytes/t).
_BUS_BW_OPS = frozenset({"allreduce"})


def bus_bytes(op: str, nbytes: int, world: int) -> float:
    """Bytes that effectively crossed the bottleneck link."""
    if world <= 1:
        return 0.0
    if op in _BUS_BW_OPS:
        return 2.0 * (world - 1) / world * nbytes
    return float(nbytes)


#: Per-backend cost-model cache (False = backend has no model); this
#: runs once per collective, so the model lookup must not re-construct.
_model_cache: Dict[str, object] = {}


def expected_collective_s(backend: str, op: str, nbytes: int, world: int) -> Optional[float]:
    """Analytic α–β expectation for this collective, if a calibrated
    cost model exists for ``backend`` (None otherwise — e.g. mpi)."""
    if op != "allreduce" or nbytes <= 0 or world <= 1:
        return None
    model = _model_cache.get(backend)
    if model is None:
        try:
            from repro.simnet.cost_model import cost_model_for

            model = cost_model_for(backend)
        except (ValueError, ImportError):
            model = False
        _model_cache[backend] = model
    if model is False:
        return None
    return model.allreduce_time(nbytes, world)


class _RankInstruments:
    """Resolved instrument handles for one rank's health metrics.

    ``record_collective`` runs once per collective on the worker thread,
    where every lookup steals GIL time from overlapped backward compute
    — so the name-to-instrument resolution happens once per rank, not
    per collective.
    """

    __slots__ = ("registry", "accounted", "latency", "stall", "stall_from",
                 "utilization", "busbw", "efficiency", "chunks")

    def __init__(self, rank: int):
        self.registry = registry_for(rank)
        self.accounted = self.registry.counter("health.collectives_accounted")
        self.latency = self.registry.histogram("comm.collective_latency_s")
        self.stall = self.registry.counter("comm.recv_stall_s")
        self.stall_from: Dict[int, object] = {}
        self.utilization = self.registry.histogram(
            "comm.chunk_pipeline_utilization"
        )
        self.busbw = self.registry.histogram("comm.achieved_busbw_gbps")
        self.efficiency = self.registry.histogram("comm.model_efficiency")
        self.chunks = self.registry.counter("comm.chunks_received")

    def stall_from_counter(self, src: int):
        counter = self.stall_from.get(src)
        if counter is None:
            counter = self.registry.counter(f"comm.recv_stall_s.from_rank_{src}")
            self.stall_from[src] = counter
        return counter


_instruments: Dict[int, _RankInstruments] = {}
_instruments_lock = threading.Lock()


def _instruments_for(rank: int) -> _RankInstruments:
    handles = _instruments.get(rank)
    # The identity check invalidates stale handles after a registry
    # clear (telemetry.reset), so cached instruments can't silently
    # swallow writes meant for a fresh registry.
    if handles is None or handles.registry is not registry_for(rank):
        with _instruments_lock:
            handles = _RankInstruments(rank)
            _instruments[rank] = handles
    return handles


def reset_instrument_cache() -> None:
    """Drop cached handles (after ``clear_all_registries`` in tests)."""
    with _instruments_lock:
        _instruments.clear()


def record_collective(
    rank: int,
    meta: Optional[dict],
    t_start: Optional[float],
    t_end: Optional[float],
    world: int,
    backend: str,
    stall_s: float,
    stall_by_src: Dict[int, float],
    chunks: int,
) -> None:
    """Publish one executed collective's efficiency metrics.

    Called from the process-group worker right after the collective
    function returned; ``meta`` is the work's metadata (op, seq, bytes,
    algorithm...).  Robust to missing fields — a collective without a
    byte count (barrier) still accounts latency and stalls.
    """
    if t_start is None or t_end is None:
        return
    wall = max(0.0, t_end - t_start)
    meta = meta or {}
    op = meta.get("op", "unknown")
    nbytes = int(meta.get("bytes", 0) or 0)
    handles = _instruments_for(rank)

    handles.accounted.add(1)
    handles.latency.observe(wall)
    if stall_s > 0.0:
        handles.stall.add(stall_s)
        for src, seconds in stall_by_src.items():
            handles.stall_from_counter(src).add(seconds)
    if wall > 0.0:
        utilization = min(1.0, max(0.0, 1.0 - stall_s / wall))
        handles.utilization.observe(utilization)
    if nbytes > 0 and wall > 0.0 and world > 1:
        busbw = bus_bytes(op, nbytes, world) / wall
        handles.busbw.observe(busbw / 1e9)
        expected = expected_collective_s(backend, op, nbytes, world)
        if expected is not None:
            # 1.0 = exactly at the model; << 1.0 = far slower than the
            # hardware expectation (the IBM sick-link signal).
            handles.efficiency.observe(min(expected / wall, 10.0))
    if chunks > 0:
        handles.chunks.add(chunks)


def collecting_enabled() -> bool:
    """One-line gate for instrumentation sites: telemetry + kill switch."""
    return TRACER.enabled and _ENABLED
