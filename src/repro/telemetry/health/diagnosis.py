"""The ``Diagnosis`` verdict object the anomaly detectors emit.

A diagnosis is a machine-readable claim: *this* anomaly class, *this*
culprit (rank, bucket, or wire edge), *this* confident, because of
*this* evidence.  It is the contract between the health engine and its
consumers — ``ddp_stats()["health"]``, the ``healthctl`` CLI, and the
planned autotuner (ROADMAP item 3), which will treat diagnoses as
inputs to bucket-size / algorithm decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: The diagnosis taxonomy (documented in docs/observability.md).
PERSISTENT_STRAGGLER = "persistent_straggler"
SLOW_LINK = "slow_link"
OVERLAP_COLLAPSE = "overlap_collapse"
RETRANSMIT_STORM = "retransmit_storm"
DESYNC_PRECURSOR = "desync_precursor"

DIAGNOSIS_KINDS = (
    PERSISTENT_STRAGGLER,
    SLOW_LINK,
    OVERLAP_COLLAPSE,
    RETRANSMIT_STORM,
    DESYNC_PRECURSOR,
)


@dataclass
class Diagnosis:
    """One attributed anomaly.

    Parameters
    ----------
    kind:
        One of :data:`DIAGNOSIS_KINDS`.
    summary:
        One human-readable sentence naming the culprit and the signal.
    culprit_rank:
        The rank held responsible (straggler, storm receiver, laggard).
    culprit_edge:
        The ``(src, dst)`` wire edge held responsible (slow link).
    culprit_bucket:
        The gradient bucket held responsible, when attributable.
    confidence:
        0..1 — how unambiguous the signal was (dominance ratios and
        sample counts feed it; 1.0 = no competing explanation observed).
    evidence:
        The numbers behind the verdict (metric names → values), so a
        consumer can re-check the rule instead of trusting it.
    """

    kind: str
    summary: str
    culprit_rank: Optional[int] = None
    culprit_edge: Optional[Tuple[int, int]] = None
    culprit_bucket: Optional[int] = None
    confidence: float = 0.5
    evidence: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> dict:
        out = {
            "kind": self.kind,
            "summary": self.summary,
            "confidence": round(float(self.confidence), 3),
            "evidence": dict(self.evidence),
        }
        if self.culprit_rank is not None:
            out["culprit_rank"] = self.culprit_rank
        if self.culprit_edge is not None:
            out["culprit_edge"] = list(self.culprit_edge)
        if self.culprit_bucket is not None:
            out["culprit_bucket"] = self.culprit_bucket
        return out


def render_diagnoses(diagnoses: List[Diagnosis]) -> str:
    """Plain-text report table (the ``healthctl`` output format)."""
    if not diagnoses:
        return "no anomalies detected\n"
    lines = [f"{len(diagnoses)} anomaly(ies) detected:"]
    for i, d in enumerate(diagnoses, 1):
        lines.append(f"  [{i}] {d.kind} (confidence {d.confidence:.2f})")
        lines.append(f"      {d.summary}")
        for key, value in sorted(d.evidence.items()):
            lines.append(f"      - {key}: {value}")
    return "\n".join(lines) + "\n"
