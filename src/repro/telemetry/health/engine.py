"""Rule-based anomaly attribution over the fused health signals.

Detectors read the efficiency-accounting metrics, the resilience
counters, and the cross-rank event log, and emit
:class:`~repro.telemetry.health.diagnosis.Diagnosis` verdicts:

* **persistent_straggler** — one rank's sends stall *multiple* peers:
  the per-source receive-stall counters concentrate on one sending rank
  across ≥ 2 receivers.
* **slow_link** — the same stall dominance, but concentrated on exactly
  one (src → dst) edge: the link, not the rank, is sick (the
  arXiv:1711.00705 approach of ranking links by achieved vs expected
  bandwidth; the cost-model expectation rides along in the evidence as
  ``comm.model_efficiency``).
* **overlap_collapse** — a rank's comm/compute overlap ratio fell to a
  fraction of its own earlier healthy level (paper Fig. 4 regression).
* **retransmit_storm** — transport retry/retransmit/corruption counters
  grow far faster than collectives complete: a lossy or corrupting
  wire, attributed to the receiving rank (and, when the event log saw
  the incidents, to the modal source edge).
* **desync_precursor** — one rank's collective-sequence frontier trails
  the group's leader by many collectives: the drift that ends in the
  hang the debug watchdog catches, visible while everyone is still
  alive.

Two entry points share the rules: :func:`analyze_snapshots` fuses live
registry snapshots + event logs (what ``ddp_stats()["health"]``
serves), and :func:`analyze_ticks` replays a
:meth:`~repro.telemetry.observatory.sampler.MetricsSampler.dump_jsonl`
file offline (what ``tools/healthctl.py`` serves).  Both are pure
functions of their inputs with deterministic thresholds, so a seeded
fault plan produces the same diagnoses on every run.

Thresholds are deliberately conservative: the CI chaos gate fails if a
fault-free run produces *any* diagnosis, so every rule requires both an
absolute floor and a dominance ratio before it speaks.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.telemetry.health.diagnosis import (
    DESYNC_PRECURSOR,
    OVERLAP_COLLAPSE,
    PERSISTENT_STRAGGLER,
    RETRANSMIT_STORM,
    SLOW_LINK,
    Diagnosis,
)

_STALL_FROM = re.compile(r"^comm\.recv_stall_s\.from_rank_(-?\d+)$")

#: Transport counters that count as storm events (receiver-attributed).
_STORM_COUNTERS = ("transport.retries", "transport.retransmits",
                   "transport.corrupt_detected")


@dataclass
class Thresholds:
    """Detector knobs; defaults tuned so healthy runs stay silent."""

    #: Minimum total stall (seconds) attributed to one source before the
    #: straggler/slow-link rule may speak.
    stall_floor_s: float = 0.2
    #: Top source's stall must exceed the runner-up by this factor.
    #: Synchronous collectives cascade waits (everyone eventually waits
    #: on the slowest), so perfect concentration never happens; 2x over
    #: the runner-up with the absolute floor already met is decisive.
    stall_dominance: float = 2.0
    #: Receivers that must report the stall for it to be a *rank*
    #: problem; fewer makes it an *edge* problem.
    straggler_min_reporters: int = 2
    #: A receiver counts as a reporter above this share of the top
    #: source's total stall.
    reporter_share: float = 0.15
    #: Minimum storm events (retries + retransmits + corruptions).
    storm_min_events: int = 20
    #: ... and at least this many events per accounted collective.
    storm_events_per_collective: float = 0.5
    #: Overlap-collapse rule: need this many samples, a healthy early
    #: mean, and a late mean at most this fraction of the early one.
    overlap_min_samples: int = 6
    overlap_healthy: float = 0.4
    overlap_collapse_factor: float = 0.5
    #: Desync rule: frontier spread (collectives) before flagging.
    desync_seq_spread: int = 8


@dataclass
class Signals:
    """The fused per-rank inputs every detector reads."""

    ranks: List[int]
    #: stall[dst][src] = receive-wait seconds dst attributed to src.
    stall: Dict[int, Dict[int, float]]
    #: Per-rank storm-event counts (retries + retransmits + corruption).
    storm_events: Dict[int, float]
    #: Per-rank transport counter detail (evidence).
    transport: Dict[int, Dict[str, float]]
    #: Per-rank accounted-collective counts.
    collectives: Dict[int, float]
    #: Per-rank overlap-ratio history, oldest first.
    overlap: Dict[int, List[float]]
    #: Per-group, per-rank highest started collective sequence.
    frontier: Dict[int, Dict[int, int]]
    #: Per-rank mean cost-model efficiency (evidence; may be empty).
    model_efficiency: Dict[int, float]


def _signals_from_snapshots(
    snapshots: Sequence[dict],
    frontier: Optional[Dict[int, Dict[int, int]]] = None,
    overlap_series: Optional[Dict[int, List[float]]] = None,
) -> Signals:
    """Normalize registry-style per-rank snapshots into :class:`Signals`.

    Accepts both live ``MetricsRegistry.snapshot()`` dicts and the
    ``per_rank`` entries of a sampler tick (same shape minus histogram
    sample lists).  Ragged or partial snapshots are tolerated.
    """
    ranks: List[int] = []
    stall: Dict[int, Dict[int, float]] = {}
    storm: Dict[int, float] = {}
    transport: Dict[int, Dict[str, float]] = {}
    collectives: Dict[int, float] = {}
    overlap: Dict[int, List[float]] = dict(overlap_series or {})
    model_eff: Dict[int, float] = {}
    for snap in snapshots:
        if not isinstance(snap, dict):
            continue
        rank = snap.get("rank")
        if rank is None or rank < 0:
            continue
        ranks.append(rank)
        counters = snap.get("counters", {}) or {}
        for name, value in counters.items():
            match = _STALL_FROM.match(name)
            if match:
                stall.setdefault(rank, {})[int(match.group(1))] = float(value)
        events = sum(float(counters.get(name, 0.0)) for name in _STORM_COUNTERS)
        if events:
            storm[rank] = events
        detail = {name: float(counters[name]) for name in _STORM_COUNTERS
                  if counters.get(name)}
        if counters.get("transport.duplicates_dropped"):
            detail["transport.duplicates_dropped"] = float(
                counters["transport.duplicates_dropped"]
            )
        if detail:
            transport[rank] = detail
        collectives[rank] = float(counters.get("health.collectives_accounted", 0.0))
        hists = snap.get("histograms", {}) or {}
        overlap_hist = hists.get("iteration.overlap_ratio_dist")
        if rank not in overlap and overlap_hist and overlap_hist.get("samples"):
            overlap[rank] = [float(v) for v in overlap_hist["samples"]]
        eff = hists.get("comm.model_efficiency")
        if eff and eff.get("count"):
            model_eff[rank] = float(eff.get("mean", 0.0))
    return Signals(
        ranks=sorted(set(ranks)),
        stall=stall,
        storm_events=storm,
        transport=transport,
        collectives=collectives,
        overlap=overlap,
        frontier=dict(frontier or {}),
        model_efficiency=model_eff,
    )


# ----------------------------------------------------------------------
# detectors
# ----------------------------------------------------------------------
def _detect_stall_culprit(
    signals: Signals, th: Thresholds, exclude: frozenset = frozenset()
) -> List[Diagnosis]:
    """Straggler vs slow link from the per-source stall attribution.

    ``exclude`` removes retransmit-storm culprits from the matrix on
    both axes: as receivers their waits measure retransmission backoff,
    not peer speed, and as senders they are late *because* of the storm
    — either way the storm diagnosis already owns that time, and
    leaving it in would drown a co-occurring straggler's signal.
    """
    totals: Dict[int, float] = {}
    stall_rows = {
        dst: {src: s for src, s in by_src.items() if src not in exclude}
        for dst, by_src in signals.stall.items()
        if dst not in exclude
    }
    for dst, by_src in stall_rows.items():
        for src, seconds in by_src.items():
            totals[src] = totals.get(src, 0.0) + seconds
    if not totals:
        return []
    top_src = max(totals, key=totals.get)
    top_total = totals[top_src]
    if top_total < th.stall_floor_s:
        return []
    others = sorted((v for s, v in totals.items() if s != top_src), reverse=True)
    runner_up = others[0] if others else 0.0
    if top_total < th.stall_dominance * max(runner_up, 1e-9):
        return []
    reporters = sorted(
        dst
        for dst, by_src in stall_rows.items()
        if by_src.get(top_src, 0.0) >= th.reporter_share * top_total
    )
    confidence = min(1.0, 1.0 - runner_up / top_total)
    evidence = {
        "stall_from_culprit_s": round(top_total, 4),
        "runner_up_stall_s": round(runner_up, 4),
        "reporters": reporters,
        "stall_by_receiver_s": {
            dst: round(by_src.get(top_src, 0.0), 4)
            for dst, by_src in sorted(stall_rows.items())
            if by_src.get(top_src)
        },
    }
    if signals.model_efficiency:
        evidence["model_efficiency_by_rank"] = {
            rank: round(value, 4)
            for rank, value in sorted(signals.model_efficiency.items())
        }
    if len(reporters) >= th.straggler_min_reporters:
        return [
            Diagnosis(
                kind=PERSISTENT_STRAGGLER,
                summary=(
                    f"rank {top_src} stalls {len(reporters)} receiving peers "
                    f"for {top_total:.2f}s total — "
                    f"{top_total / max(runner_up, 1e-9):.1f}x any other rank"
                ),
                culprit_rank=top_src,
                confidence=confidence,
                evidence=evidence,
            )
        ]
    dst = reporters[0] if reporters else max(
        stall_rows, key=lambda d: stall_rows[d].get(top_src, 0.0)
    )
    return [
        Diagnosis(
            kind=SLOW_LINK,
            summary=(
                f"edge {top_src}→{dst} is the only stalled path "
                f"({stall_rows.get(dst, {}).get(top_src, 0.0):.2f}s of "
                f"receive wait concentrates on one link)"
            ),
            culprit_edge=(top_src, dst),
            confidence=confidence,
            evidence=evidence,
        )
    ]


def _detect_retransmit_storm(
    signals: Signals, th: Thresholds,
    storm_edges: Optional[Dict[int, Dict[int, int]]] = None,
) -> List[Diagnosis]:
    total_events = sum(signals.storm_events.values())
    if total_events < th.storm_min_events:
        return []
    total_collectives = sum(signals.collectives.values())
    culprit = max(signals.storm_events, key=signals.storm_events.get)
    # Rate-gate on the culprit rank itself: its incident count must be a
    # real fraction of the collectives *it* ran, so a long healthy run
    # with a handful of absorbed retries stays silent.
    culprit_collectives = max(1.0, signals.collectives.get(culprit, 0.0))
    if signals.storm_events[culprit] < (
        th.storm_events_per_collective * culprit_collectives
    ):
        return []
    evidence = {
        "total_storm_events": int(total_events),
        "collectives_accounted": int(total_collectives),
        "events_by_rank": {
            rank: int(v) for rank, v in sorted(signals.storm_events.items())
        },
        "transport_counters": {
            rank: detail for rank, detail in sorted(signals.transport.items())
        },
    }
    edge = None
    if storm_edges and storm_edges.get(culprit):
        src = max(storm_edges[culprit], key=storm_edges[culprit].get)
        edge = (src, culprit)
        evidence["incidents_by_source"] = dict(sorted(storm_edges[culprit].items()))
    share = signals.storm_events[culprit] / total_events
    return [
        Diagnosis(
            kind=RETRANSMIT_STORM,
            summary=(
                f"transport absorbed {int(total_events)} retry/retransmit/"
                f"corruption events over {int(total_collectives)} collectives; "
                f"rank {culprit} received {share:.0%} of them"
                + (f" (mostly from rank {edge[0]})" if edge else "")
            ),
            culprit_rank=culprit,
            culprit_edge=edge,
            confidence=min(1.0, 0.5 + share / 2.0),
            evidence=evidence,
        )
    ]


def _detect_overlap_collapse(signals: Signals, th: Thresholds) -> List[Diagnosis]:
    out: List[Diagnosis] = []
    for rank in sorted(signals.overlap):
        values = [v for v in signals.overlap[rank] if v == v]  # drop NaN
        if len(values) < th.overlap_min_samples:
            continue
        half = len(values) // 2
        early = sum(values[:half]) / half
        late = sum(values[half:]) / (len(values) - half)
        if early >= th.overlap_healthy and late <= th.overlap_collapse_factor * early:
            out.append(
                Diagnosis(
                    kind=OVERLAP_COLLAPSE,
                    summary=(
                        f"rank {rank}'s comm/compute overlap fell from "
                        f"{early:.2f} to {late:.2f} — communication is no "
                        f"longer hidden by backward compute"
                    ),
                    culprit_rank=rank,
                    confidence=min(1.0, 1.0 - late / max(early, 1e-9)),
                    evidence={
                        "early_overlap_mean": round(early, 4),
                        "late_overlap_mean": round(late, 4),
                        "samples": len(values),
                    },
                )
            )
    return out


def _detect_desync_precursor(signals: Signals, th: Thresholds) -> List[Diagnosis]:
    out: List[Diagnosis] = []
    for group, per_rank in sorted(signals.frontier.items()):
        if len(per_rank) < 2:
            continue
        leader = max(per_rank, key=per_rank.get)
        laggard = min(per_rank, key=per_rank.get)
        spread = per_rank[leader] - per_rank[laggard]
        if spread < th.desync_seq_spread:
            continue
        out.append(
            Diagnosis(
                kind=DESYNC_PRECURSOR,
                summary=(
                    f"rank {laggard} trails the collective frontier of group "
                    f"{group} by {spread} collectives (leader rank {leader} "
                    f"at seq {per_rank[leader]}, laggard at "
                    f"{per_rank[laggard]})"
                ),
                culprit_rank=laggard,
                confidence=min(1.0, spread / (4.0 * th.desync_seq_spread) + 0.5),
                evidence={
                    "group": group,
                    "seq_by_rank": dict(sorted(per_rank.items())),
                    "spread": spread,
                },
            )
        )
    return out


def _run_detectors(
    signals: Signals,
    th: Thresholds,
    storm_edges: Optional[Dict[int, Dict[int, int]]] = None,
) -> List[Diagnosis]:
    diagnoses: List[Diagnosis] = []
    storms = _detect_retransmit_storm(signals, th, storm_edges)
    diagnoses.extend(storms)
    # A storm receiver's waits measure retransmission backoff, not peer
    # speed — exclude its stall rows so a co-occurring straggler is
    # still attributable (and a storm isn't double-reported as a link).
    storm_ranks = frozenset(d.culprit_rank for d in storms)
    diagnoses.extend(_detect_stall_culprit(signals, th, exclude=storm_ranks))
    diagnoses.extend(_detect_overlap_collapse(signals, th))
    diagnoses.extend(_detect_desync_precursor(signals, th))
    return diagnoses


# ----------------------------------------------------------------------
# live entry point
# ----------------------------------------------------------------------
def _storm_edges_from_events() -> Dict[int, Dict[int, int]]:
    """incidents[dst][src] from the live event log's resilience marks."""
    from repro.telemetry.health.events import all_event_logs

    edges: Dict[int, Dict[int, int]] = {}
    for rank, log in all_event_logs().items():
        for event in log.events():
            if event.kind in ("retransmit", "retry", "corrupt_detected"):
                src = (event.extra or {}).get("src")
                if src is not None:
                    by_src = edges.setdefault(rank, {})
                    by_src[src] = by_src.get(src, 0) + 1
    return edges


def analyze_snapshots(
    snapshots: Optional[Sequence[dict]] = None,
    thresholds: Optional[Thresholds] = None,
) -> List[Diagnosis]:
    """Run every detector over live (or given) per-rank snapshots.

    With no arguments this is the live health check: all registries are
    snapshotted, the event log supplies the collective frontier and
    storm-edge attribution, and — live only — the diagnosis count is
    published as the ``health.diagnoses_active`` gauge (rank −1) so a
    Prometheus alert can fire on it.
    """
    th = thresholds or Thresholds()
    live = snapshots is None
    frontier: Dict[int, Dict[int, int]] = {}
    storm_edges: Optional[Dict[int, Dict[int, int]]] = None
    if live:
        from repro.telemetry.metrics import all_snapshots
        from repro.telemetry.health.events import seq_frontier

        snapshots = all_snapshots()
        frontier = seq_frontier()
        storm_edges = _storm_edges_from_events()
    signals = _signals_from_snapshots(snapshots, frontier=frontier)
    diagnoses = _run_detectors(signals, th, storm_edges)
    if live:
        from repro.telemetry.metrics import registry_for
        from repro.telemetry.spans import TRACER

        if TRACER.enabled:
            registry_for(-1).gauge("health.diagnoses_active").set(len(diagnoses))
    return diagnoses


# ----------------------------------------------------------------------
# offline entry point (sampler JSONL dumps → healthctl)
# ----------------------------------------------------------------------
def analyze_ticks(
    ticks: Sequence[dict], thresholds: Optional[Thresholds] = None
) -> dict:
    """Replay a sampler tick log (``dump_jsonl`` records) offline.

    Counters in ticks are cumulative, so the final tick carries the run
    totals; the overlap-ratio *gauge* is followed across ticks to give
    the collapse detector its history; the desync frontier is
    approximated by each rank's ``health.collectives_accounted`` at the
    final tick (sequence numbers and execution counts advance together,
    so a frozen or trailing count is the same drift signal).
    """
    th = thresholds or Thresholds()
    ticks = [t for t in ticks if isinstance(t, dict)]
    if not ticks:
        return {"ticks": 0, "ranks": [], "diagnoses": []}
    final = ticks[-1].get("per_rank", []) or []

    overlap_series: Dict[int, List[float]] = {}
    for tick in ticks:
        for snap in tick.get("per_rank", []) or []:
            rank = snap.get("rank")
            if rank is None or rank < 0:
                continue
            value = (snap.get("gauges", {}) or {}).get("iteration.overlap_ratio")
            if value is not None:
                series = overlap_series.setdefault(rank, [])
                # Gauges repeat between iterations; keep transitions only
                # so the history reflects iterations, not tick cadence.
                if not series or series[-1] != value:
                    series.append(float(value))

    frontier: Dict[int, Dict[int, int]] = {}
    for snap in final:
        rank = snap.get("rank")
        if rank is None or rank < 0:
            continue
        count = (snap.get("counters", {}) or {}).get("health.collectives_accounted")
        if count:
            frontier.setdefault(0, {})[rank] = int(count)

    signals = _signals_from_snapshots(
        final, frontier=frontier, overlap_series=overlap_series
    )
    diagnoses = _run_detectors(signals, th)
    return {
        "ticks": len(ticks),
        "ranks": signals.ranks,
        "collectives_accounted": int(sum(signals.collectives.values())),
        "storm_events": int(sum(signals.storm_events.values())),
        "diagnoses": [d.as_dict() for d in diagnoses],
    }


def analyze_jsonl(path: str, thresholds: Optional[Thresholds] = None) -> dict:
    """Load a ``MetricsSampler.dump_jsonl`` file and analyze it."""
    ticks: List[dict] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                ticks.append(json.loads(line))
    report = analyze_ticks(ticks, thresholds)
    report["path"] = path
    return report


# ----------------------------------------------------------------------
# ddp_stats()["health"]
# ----------------------------------------------------------------------
_HIST_SUMMARY_FIELDS = ("count", "mean", "min", "max", "p50", "p95", "p99")


def health_report(
    rank: Optional[int] = None, last_detail: Optional[dict] = None
) -> dict:
    """The per-rank health section ``ddp_stats`` embeds.

    Efficiency summaries come from this rank's registry; the diagnosis
    list is cross-rank (all registries live in this process).  The
    overlap ratio is served from the always-on recorder detail, so the
    field is meaningful even with telemetry (and thus the accounting)
    disabled.
    """
    from repro.telemetry.health import accounting
    from repro.telemetry.health.events import all_event_logs
    from repro.telemetry.metrics import registry_for

    snap = registry_for(rank).snapshot()
    hists = snap.get("histograms", {})
    counters = snap.get("counters", {})

    def summarize(name: str) -> Optional[dict]:
        summary = hists.get(name)
        if not summary or not summary.get("count"):
            return None
        return {k: summary[k] for k in _HIST_SUMMARY_FIELDS if k in summary}

    enabled = accounting.collecting_enabled()
    log = all_event_logs().get(rank if rank is not None else -1)
    return {
        "enabled": enabled,
        "overlap_ratio": float(
            (last_detail or {}).get("comm_compute_overlap_ratio", 0.0)
        ),
        "achieved_busbw_gbps": summarize("comm.achieved_busbw_gbps"),
        "chunk_pipeline_utilization": summarize("comm.chunk_pipeline_utilization"),
        "collective_latency_s": summarize("comm.collective_latency_s"),
        "model_efficiency": summarize("comm.model_efficiency"),
        "recv_stall_s": float(counters.get("comm.recv_stall_s", 0.0)),
        "collectives_accounted": int(
            counters.get("health.collectives_accounted", 0)
        ),
        "event_log_depth": log.depth() if log is not None else 0,
        "diagnoses": (
            [d.as_dict() for d in analyze_snapshots()] if enabled else []
        ),
    }
