"""Chrome-trace export of *measured* multi-rank timelines.

The simulator already exports its predicted timeline in the Trace Event
Format (``repro.simulation.trace``).  This module emits the **measured**
timeline of a real threaded run in the same format — one ``pid`` per
rank, separate ``tid`` rows for compute vs. communication vs. transport
streams — so a measured trace and a simulated trace of the same model
drop into Perfetto side by side and the paper's Fig. 4 overlap picture
can be compared prediction-vs-reality.

All ranks share one process clock (``perf_counter``), so cross-rank
alignment is exact; timestamps are rebased to the earliest recorded
span and expressed in microseconds, as the format requires.

:func:`merged_trace_events` widens the picture into one timeline:
telemetry spans, the :mod:`repro.debug` flight recorder's collective
lifecycles, and :mod:`repro.resilience` retry/heartbeat instants all
render as distinct tracks per rank — the span rows as duration events,
the flight-recorder rows as ``op#seq`` lifecycle bars, and resilience
events as instant markers.  Because every source stamps the same
``perf_counter`` clock, a retransmit marker lines up exactly under the
collective it delayed.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from repro.telemetry.spans import SpanTracer, TRACER

#: Stable tid assignment so compute is always the top row per rank.
_STREAM_ORDER = {"compute": 0, "comm": 1, "transport": 2,
                 "resilience": 3, "flight": 4, "health": 5}


def _tid_for(stream: str, streams: Dict[str, int]) -> int:
    return _STREAM_ORDER.get(stream, len(_STREAM_ORDER) + len(streams))


def _metadata_events(seen_tids: Dict[int, Dict[str, int]]) -> List[dict]:
    """Process/thread naming records for each (rank, stream) row."""
    events: List[dict] = []
    for rank, streams in sorted(seen_tids.items()):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": rank,
                "tid": 0,
                "args": {"name": f"rank {rank}" if rank >= 0 else "unattributed"},
            }
        )
        for stream, tid in sorted(streams.items(), key=lambda kv: kv[1]):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": rank,
                    "tid": tid,
                    "args": {"name": stream},
                }
            )
    return events


def trace_events(tracer: Optional[SpanTracer] = None) -> List[dict]:
    """Trace Event Format records for every span the tracer holds."""
    tracer = tracer or TRACER
    events: List[dict] = []
    all_spans = tracer.spans()
    if not all_spans:
        return events
    epoch = min(span.t_start for span in all_spans)
    seen_tids: Dict[int, Dict[str, int]] = {}
    for span in all_spans:
        streams = seen_tids.setdefault(span.rank, {})
        if span.stream not in streams:
            streams[span.stream] = _tid_for(span.stream, streams)
        args = dict(span.args) if span.args else {}
        events.append(
            {
                "name": span.name,
                "cat": span.cat,
                "ph": "X",
                "ts": (span.t_start - epoch) * 1e6,
                "dur": max(0.0, span.t_end - span.t_start) * 1e6,
                "pid": span.rank,
                "tid": streams[span.stream],
                "args": args,
            }
        )
    # Metadata: name each rank's process and each stream's thread row.
    events.extend(_metadata_events(seen_tids))
    return events


def export_chrome_trace(path: str, tracer: Optional[SpanTracer] = None) -> str:
    """Write the measured timeline as chrome://tracing JSON; returns path."""
    events = trace_events(tracer)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, handle)
    return path


# ----------------------------------------------------------------------
# merged timeline: spans + flight recorder + resilience instants
# ----------------------------------------------------------------------
def merged_trace_events(
    tracer: Optional[SpanTracer] = None,
    include_flight: bool = True,
    include_resilience: bool = True,
    include_health: bool = True,
) -> List[dict]:
    """One timeline for every evidence source the runtime keeps.

    Four tracks per rank, all on the shared ``perf_counter`` clock:

    * telemetry spans (the same rows :func:`trace_events` emits);
    * the ``repro.debug`` flight recorder — one ``op#seq`` bar per
      collective lifecycle (scheduled → completed), on a ``flight``
      row; records that never finished render up to their last known
      timestamp with the terminal state in ``args``;
    * ``repro.resilience`` events (retries, retransmits, corruption
      drops, heartbeats) — zero-duration spans rendered as instant
      (``ph: "i"``) markers on a ``resilience`` row;
    * the ``repro.telemetry.health`` event log — collective lifecycle
      and bucket-launch marks (``kind#seq``) as instants on a
      ``health`` row, carrying the ``(group, seq)`` trace context that
      stitches the same collective across ranks.
    """
    tracer = tracer or TRACER
    all_spans = tracer.spans()

    flight_dumps: List[dict] = []
    if include_flight:
        from repro.debug.flight_recorder import all_recorders

        flight_dumps = [rec.dump() for _, rec in sorted(all_recorders().items())]

    health_events: List[dict] = []
    if include_health:
        from repro.telemetry.health.events import all_event_logs

        for _, log in sorted(all_event_logs().items()):
            health_events.extend(log.as_dicts())

    # One epoch across every source so the tracks stay aligned.
    starts = [span.t_start for span in all_spans]
    starts.extend(
        record["t_sched"]
        for dump in flight_dumps
        for record in dump.get("records", ())
        if record.get("t_sched") is not None
    )
    starts.extend(event["t"] for event in health_events)
    if not starts:
        return []
    epoch = min(starts)

    events: List[dict] = []
    seen_tids: Dict[int, Dict[str, int]] = {}

    def tid(rank: int, stream: str) -> int:
        streams = seen_tids.setdefault(rank, {})
        if stream not in streams:
            streams[stream] = _tid_for(stream, streams)
        return streams[stream]

    for span in all_spans:
        if span.cat == "resilience" and not include_resilience:
            continue
        args = dict(span.args) if span.args else {}
        if span.cat == "resilience":
            # Point-in-time markers: a retry has no meaningful duration.
            events.append(
                {
                    "name": span.name,
                    "cat": span.cat,
                    "ph": "i",
                    "s": "t",
                    "ts": (span.t_start - epoch) * 1e6,
                    "pid": span.rank,
                    "tid": tid(span.rank, span.stream),
                    "args": args,
                }
            )
            continue
        events.append(
            {
                "name": span.name,
                "cat": span.cat,
                "ph": "X",
                "ts": (span.t_start - epoch) * 1e6,
                "dur": max(0.0, span.t_end - span.t_start) * 1e6,
                "pid": span.rank,
                "tid": tid(span.rank, span.stream),
                "args": args,
            }
        )

    for dump in flight_dumps:
        rank = dump["rank"]
        for record in dump.get("records", ()):
            t_sched = record.get("t_sched")
            if t_sched is None:
                continue
            t_close = record.get("t_end") or record.get("t_start") or t_sched
            events.append(
                {
                    "name": f"{record['op']}#{record['seq']}",
                    "cat": "flight",
                    "ph": "X",
                    "ts": (t_sched - epoch) * 1e6,
                    "dur": max(0.0, t_close - t_sched) * 1e6,
                    "pid": rank,
                    "tid": tid(rank, "flight"),
                    "args": {
                        "state": record.get("state"),
                        "group_id": record.get("group_id"),
                        "nbytes": record.get("nbytes"),
                        "context": record.get("context"),
                        "error": record.get("error"),
                    },
                }
            )

    for event in health_events:
        name = event["kind"]
        if event.get("seq") is not None:
            name = f"{name}#{event['seq']}"
        args = {
            key: event[key]
            for key in ("iteration", "group", "seq", "op", "bucket",
                        "nbytes", "extra")
            if event.get(key) is not None
        }
        events.append(
            {
                "name": name,
                "cat": "health",
                "ph": "i",
                "s": "t",
                "ts": (event["t"] - epoch) * 1e6,
                "pid": event["rank"],
                "tid": tid(event["rank"], "health"),
                "args": args,
            }
        )

    events.extend(_metadata_events(seen_tids))
    return events


def export_merged_trace(path: str, tracer: Optional[SpanTracer] = None,
                        include_flight: bool = True,
                        include_resilience: bool = True,
                        include_health: bool = True) -> str:
    """Write the merged (spans + flight + resilience + health) timeline;
    returns path."""
    events = merged_trace_events(tracer, include_flight=include_flight,
                                 include_resilience=include_resilience,
                                 include_health=include_health)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, handle)
    return path
