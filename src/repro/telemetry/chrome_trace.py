"""Chrome-trace export of *measured* multi-rank timelines.

The simulator already exports its predicted timeline in the Trace Event
Format (``repro.simulation.trace``).  This module emits the **measured**
timeline of a real threaded run in the same format — one ``pid`` per
rank, separate ``tid`` rows for compute vs. communication vs. transport
streams — so a measured trace and a simulated trace of the same model
drop into Perfetto side by side and the paper's Fig. 4 overlap picture
can be compared prediction-vs-reality.

All ranks share one process clock (``perf_counter``), so cross-rank
alignment is exact; timestamps are rebased to the earliest recorded
span and expressed in microseconds, as the format requires.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from repro.telemetry.spans import SpanTracer, TRACER

#: Stable tid assignment so compute is always the top row per rank.
_STREAM_ORDER = {"compute": 0, "comm": 1, "transport": 2}


def trace_events(tracer: Optional[SpanTracer] = None) -> List[dict]:
    """Trace Event Format records for every span the tracer holds."""
    tracer = tracer or TRACER
    events: List[dict] = []
    all_spans = tracer.spans()
    if not all_spans:
        return events
    epoch = min(span.t_start for span in all_spans)
    seen_tids: Dict[int, Dict[str, int]] = {}
    for span in all_spans:
        streams = seen_tids.setdefault(span.rank, {})
        if span.stream not in streams:
            streams[span.stream] = _STREAM_ORDER.get(span.stream, 3 + len(streams))
        args = dict(span.args) if span.args else {}
        events.append(
            {
                "name": span.name,
                "cat": span.cat,
                "ph": "X",
                "ts": (span.t_start - epoch) * 1e6,
                "dur": max(0.0, span.t_end - span.t_start) * 1e6,
                "pid": span.rank,
                "tid": streams[span.stream],
                "args": args,
            }
        )
    # Metadata: name each rank's process and each stream's thread row.
    for rank, streams in sorted(seen_tids.items()):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": rank,
                "tid": 0,
                "args": {"name": f"rank {rank}" if rank >= 0 else "unattributed"},
            }
        )
        for stream, tid in sorted(streams.items(), key=lambda kv: kv[1]):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": rank,
                    "tid": tid,
                    "args": {"name": stream},
                }
            )
    return events


def export_chrome_trace(path: str, tracer: Optional[SpanTracer] = None) -> str:
    """Write the measured timeline as chrome://tracing JSON; returns path."""
    events = trace_events(tracer)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, handle)
    return path
