"""Low-overhead span tracing for real (non-simulated) runs.

A *span* is one timed interval on one rank's timeline — a forward pass,
a bucket AllReduce executing on the communication worker, a blocked
transport ``recv``.  Spans land in per-rank ring buffers (bounded
memory, oldest dropped first) and are exported to the Chrome Trace
Event Format by :mod:`repro.telemetry.chrome_trace`.

Design constraints, in order:

1. **Disabled cost ≈ zero.**  Tracing is off unless ``enable()`` was
   called (or ``REPRO_TELEMETRY=1`` at import).  Every entry point
   checks one attribute and the context-manager form returns a shared
   no-op span, so the hot autograd/collective paths pay one branch.
2. **Thread safety.**  Rank threads and their communication workers
   record concurrently; the buffer append holds one short lock.
3. **Comparable clocks.**  All ranks are threads of one process, so
   ``time.perf_counter()`` timestamps are directly comparable across
   ranks — measured timelines align in Perfetto without clock sync.

Rank attribution defaults to the calling thread's rank contextvar
(:mod:`repro.utils.rank`); spans recorded outside any rank context land
on rank ``-1``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Dict, List, Optional

from repro.utils.rank import get_current_rank

#: Spans retained per rank before the ring buffer drops the oldest.
DEFAULT_RING_CAPACITY = 65536


class SpanRecord:
    """One completed span (times in seconds from ``perf_counter``)."""

    __slots__ = ("name", "cat", "stream", "rank", "t_start", "t_end", "depth", "args")

    def __init__(self, name, cat, stream, rank, t_start, t_end, depth, args):
        self.name = name
        self.cat = cat
        self.stream = stream
        self.rank = rank
        self.t_start = t_start
        self.t_end = t_end
        self.depth = depth
        self.args = args

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    def __repr__(self) -> str:
        return (
            f"<SpanRecord {self.name!r} rank={self.rank} stream={self.stream} "
            f"[{self.t_start:.6f}, {self.t_end:.6f}] depth={self.depth}>"
        )


class _NullSpan:
    """Shared no-op returned by ``span()``/``begin()`` while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def end(self) -> None:
        pass

    def set(self, **args) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class Span:
    """A live span: either used as a context manager or closed with
    :meth:`end` (the explicit begin/end form for non-lexical scopes)."""

    __slots__ = ("_tracer", "name", "cat", "stream", "rank", "args",
                 "t_start", "_depth", "_closed")

    def __init__(self, tracer: "SpanTracer", name: str, cat: str, stream: str,
                 rank: Optional[int], args: Optional[dict]):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.stream = stream
        self.rank = rank if rank is not None else _resolve_rank()
        self.args = args
        self._depth = tracer._push()
        self._closed = False
        self.t_start = time.perf_counter()

    def set(self, **args) -> "Span":
        """Attach/extend span arguments (visible in the trace viewer)."""
        if self.args is None:
            self.args = {}
        self.args.update(args)
        return self

    def end(self) -> None:
        if self._closed:
            return
        self._closed = True
        t_end = time.perf_counter()
        self._tracer._pop()
        self._tracer.record(
            self.name, self.t_start, t_end, cat=self.cat, stream=self.stream,
            rank=self.rank, args=self.args, depth=self._depth,
        )

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc) -> bool:
        self.end()
        return False


def _resolve_rank() -> int:
    rank = get_current_rank()
    return rank if rank is not None else -1


class SpanTracer:
    """Per-rank ring buffers of :class:`SpanRecord`."""

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY):
        self.enabled = False
        self.capacity = capacity
        self._lock = threading.Lock()
        self._buffers: Dict[int, deque] = {}
        self._tls = threading.local()

    # -- nesting depth (per thread) ------------------------------------
    def _push(self) -> int:
        depth = getattr(self._tls, "depth", 0)
        self._tls.depth = depth + 1
        return depth

    def _pop(self) -> None:
        self._tls.depth = max(0, getattr(self._tls, "depth", 1) - 1)

    # -- recording ------------------------------------------------------
    def record(
        self,
        name: str,
        t_start: float,
        t_end: float,
        *,
        cat: str = "compute",
        stream: str = "compute",
        rank: Optional[int] = None,
        args: Optional[dict] = None,
        depth: Optional[int] = None,
    ) -> None:
        """Append a completed span; a no-op while the tracer is disabled.

        ``t_start``/``t_end`` are ``perf_counter`` seconds, so callers
        may stamp times early and record retroactively (the reducer
        emits its phase spans at finalize time).
        """
        if not self.enabled:
            return
        if rank is None:
            rank = _resolve_rank()
        if depth is None:
            depth = getattr(self._tls, "depth", 0)
        record = SpanRecord(name, cat, stream, rank, t_start, t_end, depth, args)
        with self._lock:
            buffer = self._buffers.get(rank)
            if buffer is None:
                buffer = deque(maxlen=self.capacity)
                self._buffers[rank] = buffer
            buffer.append(record)

    def span(self, name: str, cat: str = "compute", stream: str = "compute",
             rank: Optional[int] = None, **args):
        """Context manager measuring the enclosed block; no-op if disabled."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, cat, stream, rank, args or None)

    def begin(self, name: str, cat: str = "compute", stream: str = "compute",
              rank: Optional[int] = None, **args):
        """Explicit-form start; caller must invoke ``.end()``."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, cat, stream, rank, args or None)

    # -- introspection ---------------------------------------------------
    def ranks(self) -> List[int]:
        with self._lock:
            return sorted(self._buffers)

    def spans(self, rank: Optional[int] = None) -> List[SpanRecord]:
        """Recorded spans, oldest first (one rank, or all interleaved)."""
        with self._lock:
            if rank is not None:
                return list(self._buffers.get(rank, ()))
            merged: List[SpanRecord] = []
            for buffer in self._buffers.values():
                merged.extend(buffer)
        merged.sort(key=lambda s: s.t_start)
        return merged

    def span_count(self) -> int:
        with self._lock:
            return sum(len(b) for b in self._buffers.values())

    def clear(self) -> None:
        with self._lock:
            self._buffers.clear()


#: The process-wide tracer every instrumentation site checks.
TRACER = SpanTracer()


def get_tracer() -> SpanTracer:
    return TRACER


def is_enabled() -> bool:
    return TRACER.enabled


def enable() -> None:
    """Turn on span + metric recording (idempotent)."""
    TRACER.enabled = True


def disable() -> None:
    """Stop recording; already-captured spans remain until ``reset()``."""
    TRACER.enabled = False


def span(name: str, cat: str = "compute", stream: str = "compute",
         rank: Optional[int] = None, **args):
    """Module-level shorthand for ``get_tracer().span(...)``."""
    if not TRACER.enabled:
        return NULL_SPAN
    return Span(TRACER, name, cat, stream, rank, args or None)


def begin(name: str, cat: str = "compute", stream: str = "compute",
          rank: Optional[int] = None, **args):
    """Module-level shorthand for ``get_tracer().begin(...)``."""
    if not TRACER.enabled:
        return NULL_SPAN
    return Span(TRACER, name, cat, stream, rank, args or None)
