"""Observability for real (non-simulated) distributed runs.

The paper's whole evaluation (§6, Figs. 2/6/8) is an exercise in seeing
where an iteration's time goes — backward compute, bucket AllReduce,
and the exposed tail where the two fail to overlap.  The simulator
could always draw that picture; this package draws it for the *real*
threaded ``Reducer``/``ProcessGroup`` path:

* :mod:`~repro.telemetry.metrics` — per-rank counters/gauges/histograms
  with snapshot + cross-rank merge (``allreduce.bytes``,
  ``bucket.ready_to_launch_delay``, ``hook.fire_count``, ...).
* :mod:`~repro.telemetry.spans` — low-overhead span tracer: per-rank
  ring buffers, context-manager and explicit begin/end forms, one-branch
  no-op fast path while disabled.
* :mod:`~repro.telemetry.recorder` — the reducer's single timing source
  (phases, per-bucket ready→launch→comm intervals, overlap ratio).
* :mod:`~repro.telemetry.chrome_trace` — measured-timeline export in
  the Trace Event Format (one ``pid`` per rank, compute vs. comm
  ``tid`` rows), directly comparable with the simulator's exporter.
* :mod:`~repro.telemetry.straggler` — cross-rank AllGather of timing
  samples with outlier flagging.

Telemetry is **off by default** and costs one attribute check per
instrumentation site while off.  Turn it on with::

    from repro import telemetry
    telemetry.enable()              # or REPRO_TELEMETRY=1 in the env

    ... run training ...

    telemetry.export_chrome_trace("trace.json")   # open in Perfetto
    print(telemetry.merge_snapshots(telemetry.all_snapshots()))

See ``docs/observability.md`` for the metric catalog and a trace
walkthrough.
"""

from __future__ import annotations

import os

from repro.telemetry.chrome_trace import (
    export_chrome_trace,
    export_merged_trace,
    merged_trace_events,
    trace_events,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    all_snapshots,
    clear_all_registries,
    merge_snapshots,
    registry_for,
)
from repro.telemetry.recorder import IterationRecorder, work_interval
from repro.telemetry.spans import (
    Span,
    SpanRecord,
    SpanTracer,
    begin,
    disable,
    enable,
    get_tracer,
    is_enabled,
    span,
)
from repro.telemetry.straggler import StragglerReport, detect_stragglers
from repro.telemetry import health
from repro.telemetry.health import (
    Diagnosis,
    EventLog,
    HealthEvent,
    all_event_logs,
    analyze_snapshots,
    clear_event_logs,
    event_log_for,
    health_report,
    merge_causal_timeline,
    render_diagnoses,
    seq_frontier,
)
from repro.telemetry.observatory import (
    CriticalPathProfiler,
    IterationProfile,
    MetricsSampler,
    PrometheusExporter,
    profile_from_detail,
    prometheus_text,
    start_exporter,
)
from repro.telemetry.observatory.exporter import maybe_start_from_env


def get_metrics(rank=None) -> MetricsRegistry:
    """The calling rank's metrics registry (alias of ``registry_for``)."""
    return registry_for(rank)


def reset() -> None:
    """Drop every recorded span, metric, and health event (enabled state
    unchanged)."""
    get_tracer().clear()
    clear_all_registries()
    clear_event_logs()


__all__ = [
    "Counter",
    "CriticalPathProfiler",
    "Diagnosis",
    "EventLog",
    "Gauge",
    "HealthEvent",
    "Histogram",
    "IterationProfile",
    "IterationRecorder",
    "MetricsRegistry",
    "MetricsSampler",
    "PrometheusExporter",
    "Span",
    "SpanRecord",
    "SpanTracer",
    "StragglerReport",
    "all_event_logs",
    "all_snapshots",
    "analyze_snapshots",
    "begin",
    "clear_event_logs",
    "clear_all_registries",
    "detect_stragglers",
    "disable",
    "enable",
    "event_log_for",
    "export_chrome_trace",
    "export_merged_trace",
    "get_metrics",
    "get_tracer",
    "health",
    "health_report",
    "is_enabled",
    "maybe_start_from_env",
    "merge_causal_timeline",
    "merge_snapshots",
    "merged_trace_events",
    "profile_from_detail",
    "prometheus_text",
    "registry_for",
    "render_diagnoses",
    "reset",
    "seq_frontier",
    "span",
    "start_exporter",
    "trace_events",
    "work_interval",
]

if os.environ.get("REPRO_TELEMETRY", "").lower() in ("1", "true", "on", "yes"):
    enable()

# REPRO_METRICS_PORT=<port> serves /metrics for the whole run (and
# implies telemetry on — a scrape endpoint without data is useless).
maybe_start_from_env()
