"""The reducer's single timing source of truth.

The :class:`Reducer` used to keep ad-hoc ``_t_prepare`` /
``_t_first_grad`` fields next to the telemetry clock.  This module
replaces both: an :class:`IterationRecorder` always captures the
handful of coarse per-iteration timestamps (a few ``perf_counter``
calls — cheap enough to stay on even with telemetry disabled, and the
source of ``Reducer.last_iteration_stats`` and ``ddp_stats()``), and
when telemetry *is* enabled the same timestamps are additionally
emitted as spans into the global tracer, so the numbers in
``last_iteration_stats`` and the intervals in an exported Chrome trace
can never disagree.

Phase model per synchronized iteration (paper Fig. 4 / Fig. 6):

```
prepare ──► first_grad ───────────► all_grads ──► done
   │  loss+early backward │ backward compute │ finalize: wait+copy-back
   └ bucket i: ready ► launch ► [comm start ── comm end] (worker thread)
```

The communication intervals come from the ``Work`` handles, which the
process-group worker loop stamps with execution start/end times; the
**overlap ratio** is the fraction of total AllReduce wall time hidden
inside the backward-compute window ``[first_grad, all_grads]``.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.telemetry.spans import TRACER


def work_interval(work) -> Optional[Tuple[float, float]]:
    """Execution interval stamped on a ``Work`` handle, if available.

    Communication hooks wrap the real handle (``_HookWork``); unwrap
    one level of ``_inner`` so compressed buckets still report comm
    time.  Returns ``None`` for handles that never executed.
    """
    for candidate in (work, getattr(work, "_inner", None)):
        if candidate is None:
            continue
        t_start = getattr(candidate, "_t_start", None)
        t_end = getattr(candidate, "_t_end", None)
        if t_start is not None and t_end is not None:
            return (t_start, t_end)
    return None


class IterationRecorder:
    """Per-reducer phase timestamps for the current/last iteration."""

    def __init__(self, rank: Optional[int] = None):
        self.rank = rank
        self.iteration = -1
        self.t_prepare = 0.0
        self.t_first_grad: Optional[float] = None
        self.t_all_grads: Optional[float] = None
        # bucket index -> timestamps
        self._ready: Dict[int, float] = {}
        self._launched: Dict[int, float] = {}
        self._launch_bytes: Dict[int, int] = {}
        #: Extended stats of the last finished iteration (``ddp_stats``).
        self.last_detail: Dict[str, object] = {}

    # -- marks ----------------------------------------------------------
    def start_iteration(self, iteration: int) -> None:
        self.iteration = iteration
        self.t_first_grad = None
        self.t_all_grads = None
        self._ready.clear()
        self._launched.clear()
        self._launch_bytes.clear()
        self.t_prepare = time.perf_counter()

    def mark_first_grad(self) -> None:
        if self.t_first_grad is None:
            self.t_first_grad = time.perf_counter()

    def bucket_ready(self, index: int) -> None:
        self._ready[index] = time.perf_counter()

    def bucket_launched(self, index: int, nbytes: int) -> None:
        self._launched[index] = time.perf_counter()
        self._launch_bytes[index] = nbytes

    def mark_all_grads(self) -> float:
        self.t_all_grads = time.perf_counter()
        return self.t_all_grads

    # -- finalize --------------------------------------------------------
    def finish(self, bucket_works: Sequence[Tuple[int, object]]) -> Dict[str, float]:
        """Close the iteration; returns the legacy 4-phase stats dict.

        ``bucket_works`` pairs each bucket index with its ``Work``
        handle (or ``None``).  Extended per-bucket/overlap data is left
        in :attr:`last_detail`; when telemetry is enabled the phases,
        buckets, and the iteration envelope are emitted as spans.
        """
        t_done = time.perf_counter()
        t_first = self.t_first_grad if self.t_first_grad is not None else (
            self.t_all_grads if self.t_all_grads is not None else t_done
        )
        t_all = self.t_all_grads if self.t_all_grads is not None else t_done

        comm_intervals: List[Tuple[int, float, float]] = []
        for index, work in bucket_works:
            interval = work_interval(work) if work is not None else None
            if interval is not None:
                comm_intervals.append((index, interval[0], interval[1]))

        total_comm = sum(end - start for _, start, end in comm_intervals)
        hidden = sum(
            max(0.0, min(end, t_all) - max(start, t_first))
            for _, start, end in comm_intervals
        )
        overlap_ratio = (hidden / total_comm) if total_comm > 0 else 0.0

        stats = {
            # forward + loss + any pre-backward work since prepare()
            "prepare_to_first_grad": t_first - self.t_prepare,
            # local gradient computation window
            "backward_compute": t_all - t_first,
            # communication not hidden by backward compute
            "comm_exposed_wait": t_done - t_all,
            "total": t_done - self.t_prepare,
        }

        buckets_detail = []
        for index, start, end in comm_intervals:
            ready = self._ready.get(index)
            launched = self._launched.get(index)
            buckets_detail.append(
                {
                    "bucket": index,
                    "bytes": self._launch_bytes.get(index, 0),
                    "ready_to_launch_delay_s": (
                        launched - ready
                        if ready is not None and launched is not None
                        else 0.0
                    ),
                    "allreduce_latency_s": end - start,
                    # Raw perf_counter endpoints, so the critical-path
                    # profiler can re-derive hidden/exposed portions
                    # without loading a trace.
                    "comm_start": start,
                    "comm_end": end,
                }
            )
        self.last_detail = {
            "iteration": self.iteration,
            "phases": dict(stats),
            "comm_total_s": total_comm,
            "comm_hidden_s": hidden,
            "comm_compute_overlap_ratio": overlap_ratio,
            "buckets": buckets_detail,
            # Phase boundary timestamps (perf_counter seconds), the same
            # clock the span tracer uses.
            "timestamps": {
                "prepare": self.t_prepare,
                "first_grad": t_first,
                "all_grads": t_all,
                "done": t_done,
            },
        }

        if TRACER.enabled:
            self._emit_spans(t_first, t_all, t_done, overlap_ratio)
        return stats

    def _emit_spans(self, t_first: float, t_all: float, t_done: float,
                    overlap_ratio: float) -> None:
        from repro.telemetry.metrics import registry_for

        rank = self.rank
        iteration = self.iteration
        registry = registry_for(rank)
        delay_hist = registry.histogram("bucket.ready_to_launch_delay")
        for index, t_ready in self._ready.items():
            launched = self._launched.get(index)
            if launched is not None and launched >= t_ready:
                delay_hist.observe(launched - t_ready)
        registry.gauge("iteration.overlap_ratio").set(overlap_ratio)
        # History ring of the same ratio: the health engine's overlap-
        # collapse detector compares early vs late samples per rank.
        registry.histogram("iteration.overlap_ratio_dist").observe(overlap_ratio)
        registry.counter("iterations.synced").add(1)
        TRACER.record(
            f"iteration {iteration}", self.t_prepare, t_done,
            cat="iteration", stream="compute", rank=rank,
            args={"iteration": iteration, "overlap_ratio": round(overlap_ratio, 4)},
        )
        if t_first > self.t_prepare:
            TRACER.record(
                "prepare_to_first_grad", self.t_prepare, t_first,
                cat="compute", stream="compute", rank=rank, depth=1,
                args={"iteration": iteration},
            )
        if t_all > t_first:
            TRACER.record(
                "backward_compute", t_first, t_all,
                cat="compute", stream="compute", rank=rank, depth=1,
                args={"iteration": iteration},
            )
        TRACER.record(
            "finalize(wait+copy_back)", t_all, t_done,
            cat="compute", stream="compute", rank=rank, depth=1,
            args={"iteration": iteration},
        )
        for index, t_ready in self._ready.items():
            launched = self._launched.get(index)
            if launched is not None and launched >= t_ready:
                TRACER.record(
                    f"bucket {index} ready→launch", t_ready, launched,
                    cat="bucket", stream="compute", rank=rank, depth=2,
                    args={"iteration": iteration, "bucket": index,
                          "bytes": self._launch_bytes.get(index, 0)},
                )
