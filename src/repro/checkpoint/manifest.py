"""Checkpoint manifests: atomic multi-file commits with retention.

A checkpoint *generation* is a directory of verified files
(``ckpt-<generation>/`` under one rank's checkpoint root) plus exactly
one manifest (``manifest-<generation>.json`` next to it).  The manifest
is written **last**, atomically — its existence is the commit record.
A crash mid-save leaves data files without a manifest; readers never
see them, and the next save of the same generation simply overwrites.

Each manifest lists every committed file with its byte count and the
CRC32 of its payload (the same checksum the file's own trailer
carries), so :func:`verify_generation` can audit a whole commit without
parsing a single array, and a reader can tell "file missing" apart from
"file torn" apart from "file substituted".

Retention is generation-numbered: :func:`apply_retention` keeps the
newest ``keep`` committed generations per rank directory and deletes
the data *and* manifest of everything older — oldest first, so an
interrupted cleanup still leaves the newest commits intact.
"""

from __future__ import annotations

import json
import os
import re
import shutil
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.checkpoint.format import ChecksumError, crc_of

_MANIFEST_RE = re.compile(r"^manifest-(\d{8})\.json$")


def generation_dirname(generation: int) -> str:
    """Data directory name of one committed generation."""
    return f"ckpt-{int(generation):08d}"


def manifest_filename(generation: int) -> str:
    """Manifest (commit record) file name of one generation."""
    return f"manifest-{int(generation):08d}.json"


@dataclass
class ManifestFile:
    """One committed file: name (relative to the generation dir), its
    on-disk byte count, and the CRC32 of its *payload* (pre-trailer)."""

    name: str
    nbytes: int
    crc32: int


@dataclass
class Manifest:
    """Commit record for one rank's part of one checkpoint generation.

    ``mode`` is ``"full"`` (a replicated full-model payload, present on
    the writing rank only) or ``"sharded"`` (every rank owns a shard).
    ``meta`` carries whatever the engine needs to restore — iteration,
    world size, span tables — and is opaque to this module.
    """

    generation: int
    rank: int
    world_size: int
    iteration: int
    mode: str = "full"
    files: List[ManifestFile] = field(default_factory=list)
    meta: Dict = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(
            {
                "generation": self.generation,
                "rank": self.rank,
                "world_size": self.world_size,
                "iteration": self.iteration,
                "mode": self.mode,
                "files": [
                    {"name": f.name, "nbytes": f.nbytes, "crc32": f.crc32}
                    for f in self.files
                ],
                "meta": self.meta,
            },
            indent=1,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "Manifest":
        raw = json.loads(text)
        return cls(
            generation=int(raw["generation"]),
            rank=int(raw["rank"]),
            world_size=int(raw["world_size"]),
            iteration=int(raw["iteration"]),
            mode=raw.get("mode", "full"),
            files=[
                ManifestFile(f["name"], int(f["nbytes"]), int(f["crc32"]))
                for f in raw.get("files", [])
            ],
            meta=raw.get("meta", {}),
        )


def write_manifest(rank_dir: str, manifest: Manifest) -> str:
    """Atomically write the commit record; returns its path.

    This is the last step of a save — every data file the manifest
    names must already be durably in place.
    """
    os.makedirs(rank_dir, exist_ok=True)
    path = os.path.join(rank_dir, manifest_filename(manifest.generation))
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as handle:
        handle.write(manifest.to_json())
    os.replace(tmp, path)
    return path


def read_manifest(path: str) -> Manifest:
    """Parse one manifest file; malformed JSON raises ChecksumError."""
    try:
        with open(path) as handle:
            return Manifest.from_json(handle.read())
    except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
        raise ChecksumError(f"unreadable manifest ({exc})", path=path) from exc


def list_generations(rank_dir: str) -> List[int]:
    """Committed generation numbers in one rank directory, ascending."""
    if not os.path.isdir(rank_dir):
        return []
    found = []
    for name in os.listdir(rank_dir):
        match = _MANIFEST_RE.match(name)
        if match:
            found.append(int(match.group(1)))
    return sorted(found)


def load_generation_manifest(rank_dir: str, generation: int) -> Optional[Manifest]:
    """The manifest of ``generation`` in ``rank_dir``, or None."""
    path = os.path.join(rank_dir, manifest_filename(generation))
    if not os.path.isfile(path):
        return None
    return read_manifest(path)


def verify_generation(rank_dir: str, manifest: Manifest) -> None:
    """Audit one commit: every listed file present, sized, CRC-valid.

    Raises :class:`ChecksumError` naming the first failing file.  Reads
    each file once; the CRC is computed over the payload (trailer
    stripped), matching the value recorded at save time.
    """
    from repro.checkpoint.format import verify_bytes

    gen_dir = os.path.join(rank_dir, generation_dirname(manifest.generation))
    for entry in manifest.files:
        path = os.path.join(gen_dir, entry.name)
        if not os.path.isfile(path):
            raise ChecksumError(
                f"manifest names missing file {entry.name!r}", path=path
            )
        with open(path, "rb") as handle:
            data = handle.read()
        if len(data) != entry.nbytes:
            raise ChecksumError(
                f"file is {len(data)} bytes, manifest recorded {entry.nbytes}",
                path=path,
            )
        payload = verify_bytes(data, path=path)
        actual = crc_of(payload)
        if actual != entry.crc32:
            raise ChecksumError(
                f"payload CRC {actual:#010x} does not match manifest "
                f"record {entry.crc32:#010x}",
                path=path,
            )


def apply_retention(rank_dir: str, keep: int) -> List[int]:
    """Delete all but the newest ``keep`` committed generations.

    Returns the deleted generation numbers.  Deletion order is oldest
    first, data directory before manifest, so an interruption can only
    strand an uncommitted (manifest-less) directory — which readers
    already ignore.
    """
    if keep < 1:
        raise ValueError("retention keep must be >= 1")
    generations = list_generations(rank_dir)
    victims = generations[:-keep] if len(generations) > keep else []
    for generation in victims:
        gen_dir = os.path.join(rank_dir, generation_dirname(generation))
        shutil.rmtree(gen_dir, ignore_errors=True)
        try:
            os.remove(os.path.join(rank_dir, manifest_filename(generation)))
        except FileNotFoundError:
            pass
    return victims
