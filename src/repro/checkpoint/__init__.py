"""repro.checkpoint: verified, async, replicated checkpointing.

Layers, bottom up:

- :mod:`repro.checkpoint.format` — bytes: magic + CRC32 trailer over an
  ordinary ``.npz`` payload, backward-compatible with legacy files, and
  :class:`ChecksumError` raised before any torn byte is interpreted.
- :mod:`repro.checkpoint.manifest` — commits: per-generation manifests
  written last as the atomic multi-file commit record, audit via
  :func:`verify_generation`, generation-numbered retention.
- :mod:`repro.checkpoint.engine` — orchestration:
  :class:`CheckpointEngine` does snapshot-then-write async saves, buddy
  replication over the transport hub, and newest-recoverable restore
  with replica fallback and cross-world resharding.

See ``docs/checkpointing.md`` for the full design.
"""

from repro.checkpoint.format import (
    MAGIC,
    TRAILER_SIZE,
    ChecksumError,
    append_trailer,
    crc_of,
    load_verified_npz,
    npz_bytes,
    parse_npz,
    read_verified,
    split_trailer,
    verify_bytes,
    write_verified,
)
from repro.checkpoint.manifest import (
    Manifest,
    ManifestFile,
    apply_retention,
    generation_dirname,
    list_generations,
    load_generation_manifest,
    manifest_filename,
    read_manifest,
    verify_generation,
    write_manifest,
)
from repro.checkpoint.engine import (
    ASYNC_ENV,
    REPLICATION_ENV,
    CheckpointEngine,
    default_async_write,
    default_replication_factor,
    stats_for,
)

__all__ = [
    "MAGIC",
    "TRAILER_SIZE",
    "ChecksumError",
    "append_trailer",
    "crc_of",
    "load_verified_npz",
    "npz_bytes",
    "parse_npz",
    "read_verified",
    "split_trailer",
    "verify_bytes",
    "write_verified",
    "Manifest",
    "ManifestFile",
    "apply_retention",
    "generation_dirname",
    "list_generations",
    "load_generation_manifest",
    "manifest_filename",
    "read_manifest",
    "verify_generation",
    "write_manifest",
    "ASYNC_ENV",
    "REPLICATION_ENV",
    "CheckpointEngine",
    "default_async_write",
    "default_replication_factor",
    "stats_for",
]
