"""Verified checkpoint bytes: magic + CRC trailer over any payload.

Atomic renames guarantee a checkpoint *file name* never points at a
half-written file — but they cannot protect against a torn write that
happened before the rename (a crashed writer that already renamed), a
disk that lied about durability, or bit rot on the stored bytes.  Every
checkpoint this package writes therefore carries a fixed-size trailer::

    MAGIC(8) | payload_length u64 LE | crc32 u32 LE | MAGIC(8)

appended *after* the payload bytes.  The payload of the plain training
checkpoints stays a perfectly ordinary ``.npz`` — ``zipfile`` locates
the end-of-central-directory record by scanning backwards, so a legacy
reader that knows nothing about the trailer still opens the file — and
readers here verify the CRC before a single byte is unpickled, raising
:class:`ChecksumError` on any mismatch instead of handing numpy a torn
archive.

Files written before this format existed carry no trailer; they are
accepted as-is (backward-compatible read) but still get structural
validation: a payload ``zipfile`` cannot parse is reported as a
:class:`ChecksumError`, never as a raw ``BadZipFile`` five frames deep
in numpy.
"""

from __future__ import annotations

import io
import os
import struct
import zipfile
import zlib
from typing import Dict, Optional, Tuple

import numpy as np

#: Trailer framing: magic on both sides so a truncated trailer is
#: distinguishable from a legacy (trailer-less) file.
MAGIC = b"RPROCKPT"
_TRAILER_STRUCT = struct.Struct("<QI")
#: Total trailer size in bytes: MAGIC + u64 length + u32 crc + MAGIC.
TRAILER_SIZE = len(MAGIC) * 2 + _TRAILER_STRUCT.size


class ChecksumError(RuntimeError):
    """A checkpoint's bytes failed verification (torn write, bit rot).

    Raised *before* any payload byte is interpreted, so a corrupted
    file can never be half-loaded into a model.  Carries ``path`` when
    the bytes came from a file.
    """

    def __init__(self, message: str, path: Optional[str] = None):
        super().__init__(message if path is None else f"{path}: {message}")
        self.path = path


def append_trailer(payload: bytes) -> bytes:
    """Return ``payload`` with the verification trailer appended."""
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return payload + MAGIC + _TRAILER_STRUCT.pack(len(payload), crc) + MAGIC


def split_trailer(data: bytes) -> Tuple[bytes, Optional[int]]:
    """Split raw file bytes into ``(payload, expected_crc)``.

    ``expected_crc`` is ``None`` for legacy files without a trailer.
    A *recognizably damaged* trailer (magic present on one side only,
    or a length field pointing outside the file) raises
    :class:`ChecksumError` — that is a torn write, not a legacy file.
    """
    if len(data) < TRAILER_SIZE or not data.endswith(MAGIC):
        if MAGIC in data[-(TRAILER_SIZE + 64):] if data else False:
            raise ChecksumError(
                "truncated checkpoint trailer (torn write at the tail)"
            )
        return data, None
    trailer = data[-TRAILER_SIZE:]
    if not trailer.startswith(MAGIC):
        raise ChecksumError("malformed checkpoint trailer framing")
    length, crc = _TRAILER_STRUCT.unpack(
        trailer[len(MAGIC): len(MAGIC) + _TRAILER_STRUCT.size]
    )
    if length != len(data) - TRAILER_SIZE:
        raise ChecksumError(
            f"checkpoint trailer declares {length} payload bytes but the "
            f"file holds {len(data) - TRAILER_SIZE} (torn or doubly-"
            "appended write)"
        )
    return data[:-TRAILER_SIZE], crc


def verify_bytes(data: bytes, path: Optional[str] = None) -> bytes:
    """Return the verified payload of raw checkpoint bytes.

    Trailer present: CRC must match or :class:`ChecksumError` is
    raised.  Trailer absent (legacy file): the bytes pass through
    unverified — structural validation happens at parse time.
    """
    try:
        payload, expected = split_trailer(data)
    except ChecksumError as exc:
        raise ChecksumError(str(exc) if path is None else exc.args[0], path=path) from None
    if expected is not None:
        actual = zlib.crc32(payload) & 0xFFFFFFFF
        if actual != expected:
            raise ChecksumError(
                f"checkpoint CRC mismatch (expected {expected:#010x}, "
                f"computed {actual:#010x}); the file is torn or corrupt",
                path=path,
            )
    return payload


def read_verified(path: str) -> bytes:
    """Read a file and return its CRC-verified payload bytes."""
    with open(path, "rb") as handle:
        return verify_bytes(handle.read(), path=path)


def write_verified(path: str, payload: bytes, fault_hook=None, rank: int = 0) -> int:
    """Atomically write ``payload`` + trailer to ``path``; returns bytes.

    ``fault_hook(rank, name, data) -> data`` is the checkpoint-scoped
    fault-injection point (:meth:`repro.resilience.FaultPlan
    .on_checkpoint_write`): it sees the final on-disk bytes, so a
    ``corrupt_file`` rule produces exactly the torn-write signature the
    CRC check exists to catch.
    """
    data = append_trailer(payload)
    if fault_hook is not None:
        data = fault_hook(rank, path, data)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as handle:
        handle.write(data)
    os.replace(tmp, path)
    return len(data)


def npz_bytes(payload: Dict[str, np.ndarray]) -> bytes:
    """Serialize an array mapping to in-memory ``.npz`` bytes."""
    buffer = io.BytesIO()
    np.savez(buffer, **payload)
    return buffer.getvalue()


def parse_npz(payload: bytes, path: Optional[str] = None) -> Dict[str, np.ndarray]:
    """Parse verified ``.npz`` payload bytes into an array dict.

    Structural damage (a legacy file torn before the trailer era, or a
    file whose trailer somehow validated over garbage) surfaces as
    :class:`ChecksumError`, never as a bare ``BadZipFile``.
    """
    try:
        with np.load(io.BytesIO(payload)) as data:
            return {key: data[key] for key in data.files}
    except (zipfile.BadZipFile, EOFError, OSError, ValueError, KeyError) as exc:
        raise ChecksumError(
            f"checkpoint payload is not a readable npz archive ({exc}); "
            "the file is truncated or corrupt",
            path=path,
        ) from exc


def load_verified_npz(path: str) -> Dict[str, np.ndarray]:
    """Read + CRC-verify + parse one checkpoint file in a single call."""
    return parse_npz(read_verified(path), path=path)


def crc_of(payload: bytes) -> int:
    """CRC32 of raw payload bytes (manifest bookkeeping)."""
    return zlib.crc32(payload) & 0xFFFFFFFF
