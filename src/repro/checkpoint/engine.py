"""Async, verified, replicated checkpointing: the engine.

The training thread pays only for a **snapshot** — an in-memory copy of
model/optimizer arrays taken at a safe iteration boundary.  A background
writer thread serializes the snapshot to verified npz bytes
(:mod:`repro.checkpoint.format`), writes the files, commits them with a
manifest (:mod:`repro.checkpoint.manifest`), pushes replicas to buddy
ranks, and applies retention — all overlapped with the next training
iterations.  ``stats()["snapshot_s"]`` is the cumulative training-thread
blocked time; ``benchmarks/bench_checkpoint.py`` gates it against a
synchronous save.

Replication: with ``replication_factor = k``, rank ``r``'s files are
also pushed — over the ordinary
:class:`~repro.comm.transport.TransportHub` wire, so chaos plans and
transport accounting apply — to buddies ``(r+1) % world .. (r+k-1) %
world``.  Each buddy persists them under
``rank{buddy}/replica/rank{r}/`` in the exact owner layout (manifest
included), so losing any single rank's local directory leaves every
shard of the newest generation recoverable from a surviving buddy.

Restore (:meth:`CheckpointEngine.load_latest`) walks committed
generations newest-first and, per source, prefers the owner's local
files but silently falls back to any CRC-valid replica; a generation
with an unrecoverable shard is skipped entirely (atomic multi-file
semantics: a commit restores whole or not at all).

Generation numbers are the save's iteration count, so every rank of a
collective save agrees on the commit id without communication, and
numbers stay monotonic across elastic re-rendezvous generations.
"""

from __future__ import annotations

import os
import queue
import threading
import time
import weakref
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.checkpoint.format import (
    ChecksumError,
    TRAILER_SIZE,
    append_trailer,
    crc_of,
    load_verified_npz,
    npz_bytes,
    parse_npz,
    read_verified,
    verify_bytes,
)
from repro.checkpoint.manifest import (
    Manifest,
    ManifestFile,
    apply_retention,
    generation_dirname,
    list_generations,
    load_generation_manifest,
    manifest_filename,
)
from repro.telemetry.spans import TRACER
from repro.utils.logging import logger

#: Env knob: default replication factor for engines that are not given
#: one explicitly (1 = no replication).
REPLICATION_ENV = "REPRO_CKPT_REPLICATION"
#: Env knob: set to ``0`` to force synchronous (write-on-training-thread)
#: saves even where the engine would default to async.
ASYNC_ENV = "REPRO_CKPT_ASYNC"

#: Replication arrivals later than this many seconds after the owner's
#: snapshot are annotated in the health event log.
REPLICATION_LAG_WARN_S = 2.0

_ENGINES: "weakref.WeakValueDictionary[int, CheckpointEngine]" = (
    weakref.WeakValueDictionary()
)


def default_replication_factor() -> int:
    """Replication factor from ``REPRO_CKPT_REPLICATION`` (default 1)."""
    try:
        return max(1, int(os.environ.get(REPLICATION_ENV, "1")))
    except ValueError:
        return 1


def default_async_write() -> bool:
    """Async-save default from ``REPRO_CKPT_ASYNC`` (default on)."""
    return os.environ.get(ASYNC_ENV, "1") != "0"


def stats_for(rank: int) -> Optional[dict]:
    """Live stats of the newest engine registered for ``rank`` (the
    ``ddp_stats()["checkpoint"]`` section), or None."""
    engine = _ENGINES.get(rank)
    return engine.stats() if engine is not None else None


def _record_span(name: str, t_start: float, t_end: float, rank: int, **args) -> None:
    if TRACER.enabled:
        TRACER.record(
            name, t_start, t_end, cat="checkpoint", stream="checkpoint",
            rank=rank, args=args or None,
        )


def _health_event(rank: int, kind: str, **fields) -> None:
    from repro.telemetry.health.events import record_event

    record_event(rank, kind, **fields)


class _SaveJob:
    """One snapshot queued for background serialization + commit."""

    __slots__ = ("generation", "files", "manifest", "snapshot_t")

    def __init__(self, generation: int, files: Dict[str, Dict[str, np.ndarray]],
                 manifest: Manifest, snapshot_t: float):
        self.generation = generation
        self.files = files
        self.manifest = manifest
        self.snapshot_t = snapshot_t


class CheckpointEngine:
    """Per-rank async checkpoint engine with manifests and replication.

    Parameters
    ----------
    directory:
        Shared checkpoint root; this rank writes under
        ``directory/rank{rank}/``.
    rank / world:
        This rank's coordinates at save time (recorded in manifests so
        restores can reshard across world sizes).
    hub:
        Optional :class:`~repro.comm.transport.TransportHub` carrying
        replica pushes; required when ``replication_factor > 1``.
    replication_factor:
        Total copies of each rank's files (1 = local only); clamped to
        ``world``.  Defaults to ``REPRO_CKPT_REPLICATION``.
    keep:
        Committed generations retained per rank directory.
    async_write:
        Serialize + write on a background thread (default, overridable
        via ``REPRO_CKPT_ASYNC=0``); False runs the full save inline.
    fault_plan:
        Checkpoint-I/O chaos hook (defaults to the hub's installed
        plan): consulted per written file via ``on_checkpoint_write``.

    Thread-safety: ``save_*`` must be called from the owning rank's
    thread; stats/wait/close may be called from any thread.
    """

    def __init__(
        self,
        directory: str,
        rank: int,
        world: int,
        hub=None,
        replication_factor: Optional[int] = None,
        keep: int = 2,
        async_write: Optional[bool] = None,
        fault_plan=None,
        recv_slice_s: float = 0.05,
    ):
        if world < 1:
            raise ValueError("world must be >= 1")
        if not 0 <= rank < world:
            raise ValueError(f"rank {rank} out of range for world {world}")
        self.directory = directory
        self.rank = rank
        self.world = world
        self.hub = hub
        if replication_factor is None:
            replication_factor = default_replication_factor()
        self.replication_factor = max(1, min(int(replication_factor), world))
        if self.replication_factor > 1 and hub is None:
            raise ValueError("replication_factor > 1 requires a transport hub")
        self.keep = int(keep)
        self.async_write = (
            default_async_write() if async_write is None else bool(async_write)
        )
        self.fault_plan = fault_plan if fault_plan is not None else (
            getattr(hub, "fault_plan", None)
        )
        self.recv_slice_s = recv_slice_s
        self.rank_dir = os.path.join(directory, f"rank{rank}")
        os.makedirs(self.rank_dir, exist_ok=True)

        self._lock = threading.Lock()
        self._stats = {
            "saves": 0,
            "snapshot_s": 0.0,
            "serialize_s": 0.0,
            "write_s": 0.0,
            "bytes_written": 0,
            "replicas_sent": 0,
            "replica_bytes_sent": 0,
            "replicas_received": 0,
            "replication_lag_max_s": 0.0,
            "retention_deleted": 0,
            "verify_failures": 0,
            "write_errors": 0,
            "last_generation": None,
        }
        self._queue: "queue.Queue[Optional[_SaveJob]]" = queue.Queue()
        self._idle = threading.Event()
        self._idle.set()
        self._closed = False
        self._writer: Optional[threading.Thread] = None
        if self.async_write:
            self._writer = threading.Thread(
                target=self._writer_loop,
                name=f"ckpt-writer-rank{rank}",
                daemon=True,
            )
            self._writer.start()
        self._receivers: List[threading.Thread] = []
        for owner in self._replica_owners():
            thread = threading.Thread(
                target=self._receiver_loop,
                args=(owner,),
                name=f"ckpt-replica-rank{rank}-from{owner}",
                daemon=True,
            )
            thread.start()
            self._receivers.append(thread)
        _ENGINES[rank] = self

    # -- topology --------------------------------------------------------
    def buddies(self) -> List[int]:
        """Ranks that hold replicas of this rank's files."""
        return [
            (self.rank + i) % self.world
            for i in range(1, self.replication_factor)
        ]

    def _replica_owners(self) -> List[int]:
        """Ranks whose replicas this rank is responsible for storing."""
        return [
            (self.rank - i) % self.world
            for i in range(1, self.replication_factor)
            if (self.rank - i) % self.world != self.rank
        ]

    def replica_dir(self, owner: int) -> str:
        """Where this rank persists replicas of ``owner``'s files."""
        return os.path.join(self.rank_dir, "replica", f"rank{owner}")

    # -- saving ----------------------------------------------------------
    def save_full(self, module, optimizer=None, iteration: int = 0,
                  extra: Optional[Dict] = None) -> int:
        """Snapshot a replicated (DDP/plain) training state and enqueue
        the write; returns the committed generation number.

        Every rank calls this at the same boundary; only rank 0's
        manifest carries payload (state is replicated, one copy on disk
        suffices) but every rank commits a manifest, so restores can
        tell "rank never saved" from "rank's files were lost".
        """
        from repro.utils.checkpoint import training_payload

        t0 = time.perf_counter()
        files: Dict[str, Dict[str, np.ndarray]] = {}
        if self.rank == 0:
            files["full.npz"] = training_payload(
                module, optimizer, iteration=iteration, extra=extra, copy=True
            )
        manifest = Manifest(
            generation=int(iteration),
            rank=self.rank,
            world_size=self.world,
            iteration=int(iteration),
            mode="full",
            meta={"writer_rank": 0},
        )
        return self._submit(files, manifest, t0)

    def save_sharded(self, model, iteration: int = 0,
                     extra: Optional[Dict] = None) -> int:
        """Snapshot one rank's shard of a ``repro.sharded`` wrapper.

        Every rank calls this at the same boundary (no collectives —
        each rank persists only its own spans plus, on rank 0, the
        replicated buffers/meta).  The manifest's span table is what
        lets :meth:`load_latest` reshard into a different world size.
        """
        from repro.sharded.checkpoint import shard_payload

        t0 = time.perf_counter()
        arrays, meta = shard_payload(model, include_buffers=self.rank == 0)
        for key, value in (extra or {}).items():
            arrays[f"extra/{key}"] = np.asarray(value)
        manifest = Manifest(
            generation=int(iteration),
            rank=self.rank,
            world_size=self.world,
            iteration=int(iteration),
            mode="sharded",
            meta=meta,
        )
        return self._submit({"shard.npz": arrays}, manifest, t0)

    def _submit(self, files, manifest: Manifest, t0: float) -> int:
        if self._closed:
            raise RuntimeError("checkpoint engine is closed")
        job = _SaveJob(manifest.generation, files, manifest, t0)
        self._idle.clear()
        if self.async_write:
            self._queue.put(job)
        else:
            try:
                self._run_job(job)
            finally:
                if self._queue.empty():
                    self._idle.set()
        t1 = time.perf_counter()
        with self._lock:
            self._stats["saves"] += 1
            self._stats["snapshot_s"] += t1 - t0
            self._stats["last_generation"] = manifest.generation
        _record_span(
            "checkpoint.snapshot", t0, t1, self.rank,
            generation=manifest.generation, mode=manifest.mode,
        )
        return manifest.generation

    # -- background writer ----------------------------------------------
    def _writer_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                self._queue.task_done()
                break
            try:
                self._run_job(job)
            except Exception as exc:  # noqa: BLE001 - async context, report
                with self._lock:
                    self._stats["write_errors"] += 1
                logger.warning(
                    "checkpoint: rank %d background save of generation %d "
                    "failed: %s", self.rank, job.generation, exc,
                )
            finally:
                self._queue.task_done()
                if self._queue.empty():
                    self._idle.set()

    def _run_job(self, job: _SaveJob) -> None:
        gen_dir = os.path.join(self.rank_dir, generation_dirname(job.generation))
        entries: List[ManifestFile] = []
        wire_files: Dict[str, bytes] = {}
        hook = (
            self.fault_plan.on_checkpoint_write
            if self.fault_plan is not None
            and hasattr(self.fault_plan, "on_checkpoint_write")
            else None
        )
        t_ser = time.perf_counter()
        blobs = {name: npz_bytes(arrays) for name, arrays in job.files.items()}
        t_wr = time.perf_counter()
        written = 0
        for name, payload in blobs.items():
            data = append_trailer(payload)
            if hook is not None:
                data = hook(self.rank, os.path.join(gen_dir, name), data)
            os.makedirs(gen_dir, exist_ok=True)
            tmp = os.path.join(gen_dir, f".{name}.tmp.{os.getpid()}")
            with open(tmp, "wb") as handle:
                handle.write(data)
            os.replace(tmp, os.path.join(gen_dir, name))
            # Manifest records the *intended* bytes: a fault-injected
            # torn write is then caught by size/CRC at verify time.
            entries.append(
                ManifestFile(name, len(payload) + TRAILER_SIZE, crc_of(payload))
            )
            wire_files[name] = append_trailer(payload)
            written += len(data)
        job.manifest.files = entries
        from repro.checkpoint.manifest import write_manifest

        write_manifest(self.rank_dir, job.manifest)
        t_done = time.perf_counter()
        with self._lock:
            self._stats["serialize_s"] += t_wr - t_ser
            self._stats["write_s"] += t_done - t_wr
            self._stats["bytes_written"] += written
        _record_span(
            "checkpoint.write", t_ser, t_done, self.rank,
            generation=job.generation, bytes=written,
        )
        self._replicate(job, wire_files)
        deleted = apply_retention(self.rank_dir, self.keep)
        for owner in self._replica_owners():
            if os.path.isdir(self.replica_dir(owner)):
                deleted += apply_retention(self.replica_dir(owner), self.keep)
        if deleted:
            with self._lock:
                self._stats["retention_deleted"] += len(deleted)

    def _replicate(self, job: _SaveJob, wire_files: Dict[str, bytes]) -> None:
        if self.replication_factor <= 1 or self.hub is None:
            return
        message = {
            "generation": job.generation,
            "owner": self.rank,
            "snapshot_t": job.snapshot_t,
            "manifest": job.manifest.to_json(),
            "files": {
                name: np.frombuffer(data, dtype=np.uint8)
                for name, data in wire_files.items()
            },
        }
        nbytes = sum(len(data) for data in wire_files.values())
        t0 = time.perf_counter()
        for buddy in self.buddies():
            try:
                self.hub.send(self.rank, buddy, ("ckpt", self.rank), message)
            except Exception as exc:  # noqa: BLE001 - hub may be closing
                logger.warning(
                    "checkpoint: rank %d replica push gen %d -> rank %d "
                    "failed: %s", self.rank, job.generation, buddy, exc,
                )
                continue
            with self._lock:
                self._stats["replicas_sent"] += 1
                self._stats["replica_bytes_sent"] += nbytes
        _record_span(
            "checkpoint.replicate", t0, time.perf_counter(), self.rank,
            generation=job.generation, buddies=len(self.buddies()),
        )

    def _receiver_loop(self, owner: int) -> None:
        from repro.comm.transport import TransportClosedError, TransportTimeoutError

        while not self._closed:
            try:
                message = self.hub.recv(
                    self.rank, owner, ("ckpt", owner), timeout=self.recv_slice_s
                )
            except TransportTimeoutError:
                continue
            except (TransportClosedError, Exception):  # noqa: BLE001
                return
            try:
                self._store_replica(owner, message)
            except Exception as exc:  # noqa: BLE001 - keep receiving
                logger.warning(
                    "checkpoint: rank %d failed to store replica from "
                    "rank %d: %s", self.rank, owner, exc,
                )

    def _store_replica(self, owner: int, message: dict) -> None:
        t0 = time.perf_counter()
        generation = int(message["generation"])
        target = self.replica_dir(owner)
        gen_dir = os.path.join(target, generation_dirname(generation))
        os.makedirs(gen_dir, exist_ok=True)
        for name, data in message["files"].items():
            blob = np.asarray(data, dtype=np.uint8).tobytes()
            tmp = os.path.join(gen_dir, f".{name}.tmp.{os.getpid()}")
            with open(tmp, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, os.path.join(gen_dir, name))
        # Commit the replica with the owner's own manifest, so the
        # replica directory is a drop-in substitute for the owner's.
        path = os.path.join(target, manifest_filename(generation))
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as handle:
            handle.write(message["manifest"])
        os.replace(tmp, path)
        lag = time.perf_counter() - float(message.get("snapshot_t", t0))
        with self._lock:
            self._stats["replicas_received"] += 1
            self._stats["replication_lag_max_s"] = max(
                self._stats["replication_lag_max_s"], lag
            )
        _record_span(
            "checkpoint.replica_recv", t0, time.perf_counter(), self.rank,
            owner=owner, generation=generation, lag_s=round(lag, 6),
        )
        _health_event(
            self.rank, "checkpoint.replica",
            owner=owner, generation=generation, lag_s=lag,
        )
        if lag > REPLICATION_LAG_WARN_S:
            _health_event(
                self.rank, "checkpoint.replication_lag",
                owner=owner, generation=generation, lag_s=lag,
            )

    # -- restoring -------------------------------------------------------
    def _source_dirs(self) -> List[str]:
        """Every directory that may hold committed manifests: each
        rank's own dir plus each rank's replica mirrors."""
        sources: List[str] = []
        if not os.path.isdir(self.directory):
            return sources
        for name in sorted(os.listdir(self.directory)):
            rank_dir = os.path.join(self.directory, name)
            if not (name.startswith("rank") and os.path.isdir(rank_dir)):
                continue
            sources.append(rank_dir)
            replica_root = os.path.join(rank_dir, "replica")
            if os.path.isdir(replica_root):
                for sub in sorted(os.listdir(replica_root)):
                    path = os.path.join(replica_root, sub)
                    if os.path.isdir(path):
                        sources.append(path)
        return sources

    def _committed_generations(self) -> Dict[int, Dict[int, List[Tuple[str, Manifest]]]]:
        """``generation -> owner rank -> [(dir, manifest), ...]`` over
        every source directory (owner dirs first, replicas after)."""
        table: Dict[int, Dict[int, List[Tuple[str, Manifest]]]] = {}
        for source in self._source_dirs():
            is_replica = os.sep + "replica" + os.sep in source + os.sep
            for generation in list_generations(source):
                try:
                    manifest = load_generation_manifest(source, generation)
                except ChecksumError:
                    continue
                if manifest is None:
                    continue
                slots = table.setdefault(generation, {}).setdefault(
                    manifest.rank, []
                )
                if is_replica:
                    slots.append((source, manifest))
                else:
                    slots.insert(0, (source, manifest))
        return table

    def _load_rank_payload(
        self, sources: List[Tuple[str, Manifest]], name: str
    ) -> Optional[Tuple[Dict[str, np.ndarray], Manifest, str]]:
        """First CRC-valid copy of ``name`` across owner + replicas."""
        from repro.checkpoint.manifest import verify_generation

        for directory, manifest in sources:
            try:
                verify_generation(directory, manifest)
                path = os.path.join(
                    directory, generation_dirname(manifest.generation), name
                )
                return load_verified_npz(path), manifest, directory
            except (ChecksumError, FileNotFoundError) as exc:
                with self._lock:
                    self._stats["verify_failures"] += 1
                logger.warning(
                    "checkpoint: rejecting source %s for generation %d: %s",
                    directory, manifest.generation, exc,
                )
        return None

    def load_latest(self, module=None, optimizer=None, model=None) -> Optional[dict]:
        """Restore the newest fully-recoverable generation.

        ``module``/``optimizer`` restore a ``mode="full"`` commit;
        ``model`` (a ``repro.sharded`` wrapper) restores a
        ``mode="sharded"`` commit, resharding into the wrapper's own
        (possibly different) world size.  Returns ``None`` when no
        committed generation survives verification, else a dict with
        ``iteration``, ``generation``, ``extra``, ``saved_world_size``,
        and per-shard ``sources`` (``"local"`` / ``"replica"``).
        """
        table = self._committed_generations()
        for generation in sorted(table, reverse=True):
            restored = self._try_restore(
                generation, table[generation], module, optimizer, model
            )
            if restored is not None:
                return restored
        return None

    def _try_restore(self, generation, by_rank, module, optimizer, model):
        sample = next(iter(by_rank.values()))[0][1]
        if sample.mode == "full":
            writer = int(sample.meta.get("writer_rank", 0))
            sources = by_rank.get(writer)
            if not sources:
                return None
            loaded = self._load_rank_payload(sources, "full.npz")
            if loaded is None:
                return None
            payload, manifest, directory = loaded
            if module is None:
                return None
            from repro.utils.checkpoint import install_training_payload

            info = install_training_payload(payload, module, optimizer)
            info.update(
                generation=generation,
                saved_world_size=manifest.world_size,
                sources={
                    writer: "local" if directory == os.path.join(
                        self.directory, f"rank{writer}"
                    ) else "replica"
                },
            )
            return info
        # Sharded commit: every saving rank's shard must be recoverable.
        if model is None:
            return None
        saved_world = sample.world_size
        shards: Dict[int, Tuple[Dict[str, np.ndarray], Manifest]] = {}
        sources_used: Dict[int, str] = {}
        for old_rank in range(saved_world):
            slots = by_rank.get(old_rank)
            if not slots:
                return None
            loaded = self._load_rank_payload(slots, "shard.npz")
            if loaded is None:
                return None
            payload, manifest, directory = loaded
            shards[old_rank] = (payload, manifest)
            sources_used[old_rank] = (
                "local"
                if directory == os.path.join(self.directory, f"rank{old_rank}")
                else "replica"
            )
        from repro.sharded.checkpoint import load_shard_payloads

        info = load_shard_payloads(model, shards)
        info.update(
            generation=generation,
            saved_world_size=saved_world,
            sources=sources_used,
        )
        return info

    # -- lifecycle -------------------------------------------------------
    def wait(self, timeout: float = 30.0) -> bool:
        """Block until every queued save is committed; True on drain."""
        return self._idle.wait(timeout)

    def close(self, timeout: float = 5.0) -> None:
        """Drain the writer, stop the replica receivers (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._writer is not None:
            self._queue.put(None)
            self._writer.join(timeout=timeout)
        for thread in self._receivers:
            thread.join(timeout=self.recv_slice_s * 4 + 0.2)
        if _ENGINES.get(self.rank) is self:
            _ENGINES.pop(self.rank, None)

    def stats(self) -> dict:
        """Counter snapshot: the ``ddp_stats()["checkpoint"]`` section."""
        with self._lock:
            snap = dict(self._stats)
        snap["async_write"] = self.async_write
        snap["replication_factor"] = self.replication_factor
        snap["pending_writes"] = self._queue.qsize()
        snap["keep"] = self.keep
        return snap

    def __repr__(self) -> str:
        return (
            f"CheckpointEngine(rank={self.rank}, world={self.world}, "
            f"replication={self.replication_factor}, "
            f"async={self.async_write}, dir={self.directory!r})"
        )
