"""Fixed-width table rendering for experiment rows."""

from __future__ import annotations

from typing import Iterable, Sequence


def _format_cell(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.4f}" if abs(cell) < 100 else f"{cell:.1f}"
    return str(cell)


def render_rows(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render a title + header + rows as fixed-width text."""
    rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rows)) if rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = [title]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
