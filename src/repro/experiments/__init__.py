"""Programmatic access to every paper experiment.

Each function returns the rows of one paper table/figure; the benchmark
harness (``benchmarks/``) wraps these with timing and shape assertions,
and ``python -m repro.experiments <name>`` prints any of them from the
command line:

    python -m repro.experiments list
    python -m repro.experiments fig09
    python -m repro.experiments table1
"""

from repro.experiments import ablations, figures
from repro.experiments.tables import render_rows

__all__ = ["figures", "ablations", "render_rows"]
