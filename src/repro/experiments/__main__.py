"""CLI: print any paper experiment's regenerated rows.

    python -m repro.experiments list
    python -m repro.experiments fig02a
    python -m repro.experiments fig09
    python -m repro.experiments table1
"""

from __future__ import annotations

import sys

from repro.core.taxonomy import render_table1
from repro.experiments import ablations, figures
from repro.experiments.tables import render_rows


def _fig02a():
    return render_rows(
        "Fig 2(a): NCCL AllReduce sweep (60M params)",
        ["params_per_op", "total_s"],
        figures.fig02_allreduce_sweep("nccl"),
    )


def _fig02b():
    return render_rows(
        "Fig 2(b): Gloo AllReduce sweep (60M params)",
        ["params_per_op", "total_s"],
        figures.fig02_allreduce_sweep("gloo"),
    )


def _fig02c():
    return render_rows(
        "Fig 2(c): ResNet152 GPU backward curve",
        ["ready_params_M", "median_s", "min_s", "max_s"],
        figures.fig02_backward_curve("gpu"),
    )


def _fig02d():
    return render_rows(
        "Fig 2(d): ResNet152 CPU backward curve",
        ["ready_params_M", "median_s", "min_s", "max_s"],
        figures.fig02_backward_curve("cpu"),
    )


def _fig05():
    from repro.simnet import dgx1_topology

    return dgx1_topology().render()


def _fig06():
    return render_rows(
        "Fig 6: latency breakdown at 32 GPUs (no-overlap total = 1)",
        ["model", "backend", "fwd", "bwd_comp", "comm_exposed", "opt",
         "overlap_total", "comm_total", "speedup"],
        figures.fig06_breakdown(),
    )


def _bucket(world: int):
    rows, best = figures.bucket_size_sweep(world)
    table = render_rows(
        f"Figs 7/8: latency vs bucket size at {world} GPUs",
        ["model", "backend", "bucket_MB", "median_s", "p25_s", "p75_s"],
        rows,
    )
    return table + f"\nbest: {best}"


def _fig09():
    results = figures.fig09_scalability()
    rows = [
        (model, backend, world, latency)
        for (model, backend), latencies in results.items()
        for world, latency in zip(figures.SCALABILITY_WORLDS, latencies)
    ]
    return render_rows(
        "Fig 9: median latency vs number of GPUs",
        ["model", "backend", "gpus", "median_s"],
        rows,
    )


def _fig10():
    results = figures.fig10_skip_sync()
    rows = [
        (backend, f"sync_every_{cadence}", world, latency)
        for (backend, cadence), latencies in results.items()
        for world, latency in zip(figures.SCALABILITY_WORLDS, latencies)
    ]
    return render_rows(
        "Fig 10: average latency, skipping gradient sync (ResNet50)",
        ["backend", "cadence", "gpus", "avg_s"],
        rows,
    )


def _fig12():
    results = figures.fig12_round_robin()
    rows = [
        (model, backend, f"rr{k}", world, latency)
        for (model, backend, k), latencies in results.items()
        for world, latency in zip(figures.ROUND_ROBIN_WORLDS, latencies)
    ]
    return render_rows(
        "Fig 12: round-robin process groups",
        ["model", "backend", "groups", "gpus", "median_s"],
        rows,
    )


def _ablation_design():
    return render_rows(
        "Ablation: naive -> bucketed -> overlapped (ResNet50)",
        ["backend", "gpus", "variant", "median_s", "vs_naive"],
        ablations.design_progression(),
    )


def _ablation_compression():
    return render_rows(
        "Ablation: compression hooks (projected, 32 GPUs)",
        ["model", "hook", "wire_MB", "allreduce_s", "volume"],
        ablations.compression_projection(),
    )


def _ablation_memory():
    from repro.simulation.memory import memory_report
    from repro.simulation.models import bert_profile, resnet50_profile

    rows = []
    for model in (resnet50_profile(), bert_profile()):
        for world in (8, 64, 256):
            for row in memory_report(model, world):
                rows.append((model.name, world) + row)
    return render_rows(
        "Ablation: per-GPU memory (MB), DDP vs ZeRO stages (Adam, fp32)",
        ["model", "gpus", "strategy", "params", "grads", "opt", "act", "total"],
        rows,
    )


def _ablation_architectures():
    return render_rows(
        "Ablation: gradient exchange architectures (ResNet50 gradients)",
        ["workers", "flat_ring_s", "hierarchical_s", "param_server_s", "ps_vs_ring"],
        ablations.architecture_comparison(),
    )


def _ablation_order():
    matched, mismatched, traced = ablations.order_prediction()
    return render_rows(
        "Ablation: gradient order prediction (ResNet50, 32 GPUs, NCCL)",
        ["policy", "median_s"],
        [("matched order", matched),
         ("mismatched + reverse-order buckets", mismatched),
         ("mismatched + traced rebucketing", traced)],
    )


EXPERIMENTS = {
    "fig02a": _fig02a,
    "fig02b": _fig02b,
    "fig02c": _fig02c,
    "fig02d": _fig02d,
    "fig05": _fig05,
    "fig06": _fig06,
    "fig07": lambda: _bucket(16),
    "fig08": lambda: _bucket(32),
    "fig09": _fig09,
    "fig10": _fig10,
    "fig12": _fig12,
    "table1": render_table1,
    "ablation-design": _ablation_design,
    "ablation-compression": _ablation_compression,
    "ablation-order": _ablation_order,
    "ablation-architectures": _ablation_architectures,
    "ablation-memory": _ablation_memory,
}


def main(argv=None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    if not argv or argv[0] in ("list", "--help", "-h"):
        print("available experiments:")
        for name in EXPERIMENTS:
            print(f"  {name}")
        print("  all    (run everything, separated by headers)")
        print("\nusage: python -m repro.experiments <name>")
        return 0
    name = argv[0]
    if name == "all":
        for key, fn in EXPERIMENTS.items():
            print(f"\n{'=' * 72}\n== {key}\n{'=' * 72}")
            print(fn())
        return 0
    if name not in EXPERIMENTS:
        print(f"unknown experiment {name!r}; try 'list'", file=sys.stderr)
        return 2
    print(EXPERIMENTS[name]())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
