"""Row generators for every figure in the paper's evaluation section.

All functions are pure (deterministic for fixed arguments) and cheap —
they run on the calibrated simulator, so a laptop regenerates the whole
evaluation in seconds.  The benchmark harness asserts the paper's
qualitative shapes on these exact rows.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.simnet import (
    CPU_SERVER,
    GPU_V100,
    GlooCostModel,
    NcclCostModel,
    SharedEntitlement,
)
from repro.simulation import SimulationConfig, TrainingSimulator
from repro.simulation.models import bert_profile, resnet50_profile, resnet152_profile

#: World sizes of the scalability experiments (Figs. 9/10).
SCALABILITY_WORLDS = [1, 2, 4, 8, 16, 32, 64, 128, 256]
#: Bucket sweeps (Figs. 7/8).
RESNET_BUCKET_CAPS = [0, 5, 10, 25, 50]
BERT_BUCKET_CAPS = [0, 5, 10, 25, 50, 100, 200]
#: Round-robin sweep (Fig. 12).
ROUND_ROBIN_WORLDS = [1, 2, 4, 8, 16, 24, 32]

#: The paper attributes the 128->256 jump to the specific machines its
#: NCCL jobs landed on; Gloo jobs degraded smoothly.
NCCL_ENTITLEMENT = SharedEntitlement(anomalies={256: 0.75})
GLOO_ENTITLEMENT = SharedEntitlement()

FIG2_SWEEP = [1_000, 5_000, 10_000, 50_000, 100_000, 500_000,
              1_000_000, 5_000_000, 10_000_000, 20_000_000]


def fig02_allreduce_sweep(backend: str, total_params: int = 60_000_000):
    """Fig. 2(a,b): total AllReduce time vs params per op (2 ranks)."""
    model = NcclCostModel() if backend == "nccl" else GlooCostModel()
    return [(size, model.sweep_total_time(total_params, size)) for size in FIG2_SWEEP]


def fig02_backward_curve(device_name: str, runs: int = 25):
    """Fig. 2(c,d): ResNet152 cumulative backward time (median + range)."""
    device = GPU_V100 if device_name == "gpu" else CPU_SERVER
    sim = TrainingSimulator(
        SimulationConfig(model=resnet152_profile(), world_size=1, device=device)
    )
    curves = np.stack(
        [np.sort(sim.gradient_ready_times(np.random.default_rng(run))) for run in range(runs)]
    )
    rows = []
    num = curves.shape[1]
    for fraction in (0.0, 0.25, 0.5, 0.75, 1.0):
        index = min(int(fraction * num), num - 1)
        column = curves[:, index]
        ready_m = round(fraction * resnet152_profile().num_params / 1e6, 1)
        rows.append((ready_m, float(np.median(column)), float(column.min()),
                     float(column.max())))
    return rows


def fig06_breakdown(world: int = 32):
    """Fig. 6: normalized latency breakdown (no-overlap total = 1)."""
    rows = []
    for model in (resnet50_profile(), bert_profile()):
        for backend in ("nccl", "gloo"):
            config = SimulationConfig(model=model, world_size=world, backend=backend)
            overlapped = TrainingSimulator(config).breakdown()
            boundary = TrainingSimulator(config.with_(overlap=False)).breakdown()
            norm = boundary["total"]
            speedup = 1.0 - overlapped["total"] / norm
            rows.append(
                (
                    model.name,
                    backend,
                    round(overlapped["forward"] / norm, 3),
                    round(overlapped["backward_compute"] / norm, 3),
                    round(overlapped["backward_comm_exposed"] / norm, 3),
                    round(overlapped["optimizer"] / norm, 3),
                    round(overlapped["total"] / norm, 3),
                    round(overlapped["backward_comm_total"] / norm, 3),
                    f"{speedup * 100:.1f}%",
                )
            )
    return rows


def bucket_size_sweep(world: int, iterations: int = 16):
    """Figs. 7/8: latency statistics per bucket size; returns (rows, best)."""
    rows: List[Tuple] = []
    best: Dict[Tuple[str, str], int] = {}
    for model, caps in ((resnet50_profile(), RESNET_BUCKET_CAPS),
                        (bert_profile(), BERT_BUCKET_CAPS)):
        for backend in ("nccl", "gloo"):
            medians = []
            for cap in caps:
                sim = TrainingSimulator(
                    SimulationConfig(
                        model=model, world_size=world, backend=backend,
                        bucket_cap_mb=cap,
                    )
                )
                samples = sim.per_iteration_latencies(iterations)
                medians.append(float(np.median(samples)))
                rows.append(
                    (
                        model.name,
                        backend,
                        cap,
                        float(np.median(samples)),
                        float(np.percentile(samples, 25)),
                        float(np.percentile(samples, 75)),
                    )
                )
            best[(model.name, backend)] = caps[int(np.argmin(medians))]
    return rows, best


def fig09_scalability(iterations: int = 8):
    """Fig. 9: median latency vs GPUs; returns {(model, backend): [lat]}."""
    results: Dict[Tuple[str, str], List[float]] = {}
    for model in (resnet50_profile(), bert_profile()):
        for backend in ("nccl", "gloo"):
            entitlement = NCCL_ENTITLEMENT if backend == "nccl" else GLOO_ENTITLEMENT
            latencies = []
            for world in SCALABILITY_WORLDS:
                sim = TrainingSimulator(
                    SimulationConfig(
                        model=model, world_size=world, backend=backend,
                        entitlement=entitlement,
                    )
                )
                latencies.append(sim.median_latency(iterations))
            results[(model.name, backend)] = latencies
    return results


def fig10_skip_sync(cadences=(1, 2, 4, 8), iterations: int = 32):
    """Fig. 10: average latency per sync cadence (ResNet50)."""
    results: Dict[Tuple[str, int], List[float]] = {}
    for backend in ("nccl", "gloo"):
        entitlement = NCCL_ENTITLEMENT if backend == "nccl" else GLOO_ENTITLEMENT
        for cadence in cadences:
            latencies = []
            for world in SCALABILITY_WORLDS:
                sim = TrainingSimulator(
                    SimulationConfig(
                        model=resnet50_profile(), world_size=world,
                        backend=backend, sync_every=cadence,
                        entitlement=entitlement,
                    )
                )
                latencies.append(sim.average_latency(iterations))
            results[(backend, cadence)] = latencies
    return results


def fig12_round_robin(streams=(1, 3, 5), iterations: int = 8):
    """Fig. 12: median latency with round-robin process groups."""
    results: Dict[Tuple[str, str, int], List[float]] = {}
    for model in (resnet50_profile(), bert_profile()):
        for backend in ("nccl", "gloo"):
            for k in streams:
                latencies = []
                for world in ROUND_ROBIN_WORLDS:
                    sim = TrainingSimulator(
                        SimulationConfig(
                            model=model, world_size=world, backend=backend,
                            num_comm_streams=k,
                        )
                    )
                    latencies.append(sim.median_latency(iterations))
                results[(model.name, backend, k)] = latencies
    return results
