"""Ablation row generators beyond the paper's figures.

These quantify the design choices DESIGN.md calls out: the §3.2 naive →
bucketed → overlapped progression, the §6.2 future-work directions
(order prediction, compression), and the §2.2 parameter-averaging
comparison.
"""

from __future__ import annotations

import numpy as np

from repro.core.order_prediction import BackwardOrderTracer
from repro.simnet import NcclCostModel
from repro.simulation import SimulationConfig, TrainingSimulator
from repro.simulation.models import bert_profile, resnet50_profile

DESIGN_VARIANTS = [
    ("naive", dict(bucket_cap_mb=0.0, overlap=False)),
    ("bucketed", dict(bucket_cap_mb=25.0, overlap=False)),
    ("overlapped", dict(bucket_cap_mb=25.0, overlap=True)),
]

#: wire bytes per fp32 gradient element for each hook implementation.
HOOK_WIRE_BYTES = {
    "fp32_allreduce": 4,
    "fp16": 2,
    "quantize8_int32": 4,
    "onebit_int8": 1,
}


def design_progression(backends=("nccl", "gloo"), worlds=(16, 32)):
    """§3.2 ablation: latency for naive / bucketed / overlapped DDP."""
    rows = []
    for backend in backends:
        for world in worlds:
            latencies = {}
            for name, overrides in DESIGN_VARIANTS:
                sim = TrainingSimulator(
                    SimulationConfig(
                        model=resnet50_profile(), world_size=world,
                        backend=backend, **overrides,
                    )
                )
                latencies[name] = sim.median_latency(8)
            for name, _ in DESIGN_VARIANTS:
                rows.append(
                    (
                        backend,
                        world,
                        name,
                        latencies[name],
                        f"{(1 - latencies[name] / latencies['naive']) * 100:.0f}%",
                    )
                )
    return rows


def compression_projection(world: int = 32):
    """§6.2.3 ablation: wire volume and projected AllReduce time per hook."""
    cost_model = NcclCostModel()
    rows = []
    for profile in (resnet50_profile(), bert_profile()):
        full_bytes = profile.num_params * 4
        for hook, wire_per_element in HOOK_WIRE_BYTES.items():
            wire = profile.num_params * wire_per_element
            latency = cost_model.allreduce_time(wire, world)
            rows.append(
                (
                    profile.name,
                    hook,
                    round(wire / 1e6, 1),
                    latency,
                    f"{wire / full_bytes:.2f}x",
                )
            )
    return rows


def order_prediction(world: int = 32, backend: str = "nccl", seed: int = 0):
    """§6.2.1 ablation: mismatched execution order vs traced rebucketing.

    Returns (matched, mismatched, traced) median latencies.
    """
    model = resnet50_profile()
    rng = np.random.default_rng(seed)
    blocks = np.array_split(np.arange(model.num_tensors), 12)
    rng.shuffle(blocks)
    execution_order = tuple(int(i) for block in blocks for i in block)

    matched = TrainingSimulator(
        SimulationConfig(model=model, world_size=world, backend=backend)
    ).median_latency(8)
    mismatched = TrainingSimulator(
        SimulationConfig(
            model=model, world_size=world, backend=backend,
            execution_order=execution_order,
        )
    ).median_latency(8)

    tracer = BackwardOrderTracer(model.num_tensors, stable_iterations=3)
    for _ in range(3):
        for index in execution_order:
            tracer.record(index)
    specs = tracer.suggest_assignment(list(model.params), bucket_cap_mb=25.0)
    traced = TrainingSimulator(
        SimulationConfig(
            model=model, world_size=world, backend=backend,
            execution_order=execution_order, bucket_specs=tuple(specs),
        )
    ).median_latency(8)
    return matched, mismatched, traced


def architecture_comparison(worlds=(2, 8, 16, 32), backend: str = "nccl"):
    """§2.3 / related-work ablation: AllReduce vs parameter server vs
    hierarchical AllReduce, per-iteration gradient-exchange time for
    ResNet50's 102 MB of fp32 gradients."""
    from repro.simnet import cost_model_for

    cost = cost_model_for(backend)
    nbytes = resnet50_profile().gradient_bytes
    rows = []
    for world in worlds:
        flat = cost.allreduce_time(nbytes, world)
        hierarchical = cost.hierarchical_allreduce_time(nbytes, world)
        ps = cost.parameter_server_time(nbytes, num_workers=world)
        rows.append((world, flat, hierarchical, ps, f"{ps / flat:.1f}x"))
    return rows


def param_averaging_timeline(backends=("nccl", "gloo"), worlds=(8, 32)):
    """§2.2 ablation: DDP (overlapped) vs phase-separated averaging."""
    rows = []
    for backend in backends:
        for world in worlds:
            ddp = TrainingSimulator(
                SimulationConfig(
                    model=resnet50_profile(), world_size=world, backend=backend
                )
            ).breakdown()
            separated = TrainingSimulator(
                SimulationConfig(
                    model=resnet50_profile(), world_size=world, backend=backend,
                    overlap=False,
                )
            ).breakdown()
            rows.append(
                (
                    backend,
                    world,
                    ddp["total"],
                    separated["total"],
                    f"{(1 - ddp['total'] / separated['total']) * 100:.0f}%",
                )
            )
    return rows
