"""Models with iteration-dependent sub-graphs.

These exercise the paper's "pluralized graphs" caveat (Fig. 3(b)): a
forward pass may touch only a subset of parameters, and the subset can
differ across iterations *and across ranks*.  ``BranchedModel`` selects
a branch explicitly; ``stochastic_depth`` mode drops blocks at random —
the layer-dropping technique of §6.2.2.
"""

from __future__ import annotations

from typing import Optional

from repro import nn
from repro.utils.seed import get_rng


class BranchedModel(nn.Module):
    """Shared trunk with selectable expert branches.

    ``forward(x, branch=i)`` routes through one branch, leaving the
    others unused for that iteration — they must keep their gradients
    intact unless some peer rank used them.
    """

    def __init__(self, in_features: int = 8, hidden: int = 16, num_classes: int = 4,
                 num_branches: int = 3):
        super().__init__()
        self.trunk = nn.Sequential(nn.Linear(in_features, hidden), nn.ReLU())
        self.branches = nn.ModuleList(
            [nn.Linear(hidden, num_classes) for _ in range(num_branches)]
        )

    def forward(self, x, branch: int = 0):
        if not 0 <= branch < len(self.branches):
            raise ValueError(f"branch {branch} out of range")
        return self.branches[branch](self.trunk(x))


class StochasticDepthMLP(nn.Module):
    """An MLP whose residual blocks drop out randomly during training.

    Skipped blocks do not appear in the autograd graph, so their
    parameters fire no hooks — with the same seed on every rank, all
    ranks skip the same blocks, which is the coordination strategy
    §6.2.2 suggests ("using the same random seed").
    """

    def __init__(self, features: int = 16, num_blocks: int = 4, drop_prob: float = 0.3,
                 num_classes: int = 4):
        super().__init__()
        self.blocks = nn.ModuleList(
            [nn.Linear(features, features) for _ in range(num_blocks)]
        )
        self.head = nn.Linear(features, num_classes)
        self.drop_prob = drop_prob
        self.last_kept: Optional[list] = None

    def forward(self, x):
        kept = []
        for index, block in enumerate(self.blocks):
            drop = self.training and get_rng().random() < self.drop_prob
            if not drop:
                x = x + block(x).relu()
                kept.append(index)
        self.last_kept = kept
        return self.head(x)
