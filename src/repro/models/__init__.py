"""Small, real, trainable models used by examples and tests.

These complement the large *profiles* in ``repro.simulation.models``:
profiles drive the timing benchmarks; these train for real on the
autograd engine, at laptop scale.
"""

from repro.models.mlp import MLP
from repro.models.convnet import ConvNet
from repro.models.transformer import TinyTransformer
from repro.models.dynamic import BranchedModel, StochasticDepthMLP

__all__ = ["MLP", "ConvNet", "TinyTransformer", "BranchedModel", "StochasticDepthMLP"]
