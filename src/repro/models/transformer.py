"""A tiny transformer encoder classifier (the NLP-side real model).

Structurally a miniature of the paper's BERT workload: token + position
embeddings, multi-head self-attention blocks with LayerNorm and GELU
feed-forwards, mean-pooled classification head.
"""

from __future__ import annotations

import math

import numpy as np

from repro import nn
from repro.autograd import ops
from repro.autograd.tensor import Tensor


class MultiHeadSelfAttention(nn.Module):
    def __init__(self, hidden: int, num_heads: int):
        super().__init__()
        if hidden % num_heads:
            raise ValueError("hidden must be divisible by num_heads")
        self.hidden = hidden
        self.num_heads = num_heads
        self.head_dim = hidden // num_heads
        self.query = nn.Linear(hidden, hidden)
        self.key = nn.Linear(hidden, hidden)
        self.value = nn.Linear(hidden, hidden)
        self.output = nn.Linear(hidden, hidden)

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        # (B, T, H) -> (B, heads, T, head_dim)
        x = x.reshape(batch, seq, self.num_heads, self.head_dim)
        return ops.transpose(x, 1, 2)

    def forward(self, x: Tensor) -> Tensor:
        batch, seq, _ = x.shape
        q = self._split_heads(self.query(x), batch, seq)
        k = self._split_heads(self.key(x), batch, seq)
        v = self._split_heads(self.value(x), batch, seq)
        scores = (q @ ops.transpose(k, 2, 3)) * (1.0 / math.sqrt(self.head_dim))
        weights = ops.softmax(scores, axis=-1)
        mixed = weights @ v  # (B, heads, T, head_dim)
        merged = ops.transpose(mixed, 1, 2).reshape(batch, seq, self.hidden)
        return self.output(merged)


class TransformerBlock(nn.Module):
    def __init__(self, hidden: int, num_heads: int, ffn_dim: int):
        super().__init__()
        self.attention = MultiHeadSelfAttention(hidden, num_heads)
        self.norm1 = nn.LayerNorm(hidden)
        self.ffn_in = nn.Linear(hidden, ffn_dim)
        self.ffn_out = nn.Linear(ffn_dim, hidden)
        self.norm2 = nn.LayerNorm(hidden)

    def forward(self, x: Tensor) -> Tensor:
        x = self.norm1(x + self.attention(x))
        hidden = self.ffn_out(ops.gelu(self.ffn_in(x)))
        return self.norm2(x + hidden)


class TinyTransformer(nn.Module):
    """Sequence classifier over integer tokens."""

    def __init__(
        self,
        vocab_size: int = 64,
        max_seq_len: int = 16,
        hidden: int = 32,
        num_heads: int = 4,
        num_layers: int = 2,
        ffn_dim: int = 64,
        num_classes: int = 4,
    ):
        super().__init__()
        self.token_embedding = nn.Embedding(vocab_size, hidden)
        self.position_embedding = nn.Embedding(max_seq_len, hidden)
        self.blocks = nn.ModuleList(
            [TransformerBlock(hidden, num_heads, ffn_dim) for _ in range(num_layers)]
        )
        self.head = nn.Linear(hidden, num_classes)

    def forward(self, tokens) -> Tensor:
        token_ids = tokens.data if isinstance(tokens, Tensor) else np.asarray(tokens)
        seq = token_ids.shape[1]
        positions = np.arange(seq)
        x = self.token_embedding(token_ids) + self.position_embedding(positions)
        for block in self.blocks:
            x = block(x)
        pooled = x.mean(axis=1)
        return self.head(pooled)
