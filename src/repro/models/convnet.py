"""A small CNN for the synthetic-MNIST convergence experiments (Fig. 11).

The paper "uses the MNIST dataset to train the ResNet"; at this
library's scale a compact BatchNorm'd CNN plays that role — it has the
same structural ingredients (convolutions, batch-norm buffers, a linear
head) while training in seconds.
"""

from __future__ import annotations

from repro import nn


class ConvNet(nn.Module):
    def __init__(self, num_classes: int = 10, channels: int = 8, image_size: int = 28):
        super().__init__()
        self.features = nn.Sequential(
            nn.Conv2d(1, channels, kernel_size=3, padding=1),
            nn.BatchNorm2d(channels),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Conv2d(channels, channels * 2, kernel_size=3, padding=1),
            nn.BatchNorm2d(channels * 2),
            nn.ReLU(),
            nn.MaxPool2d(2),
        )
        spatial = image_size // 4
        self.head = nn.Sequential(
            nn.Flatten(),
            nn.Linear(channels * 2 * spatial * spatial, 64),
            nn.ReLU(),
            nn.Linear(64, num_classes),
        )

    def forward(self, x):
        return self.head(self.features(x))
