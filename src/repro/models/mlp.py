"""Multi-layer perceptron."""

from __future__ import annotations

from typing import Sequence

from repro import nn


class MLP(nn.Module):
    """ReLU MLP with optional batch normalization.

    ``batch_norm=True`` adds buffers, exercising DDP's rank-0 buffer
    broadcast path.
    """

    def __init__(
        self,
        in_features: int,
        hidden: Sequence[int],
        out_features: int,
        batch_norm: bool = False,
    ):
        super().__init__()
        layers = []
        previous = in_features
        for width in hidden:
            layers.append(nn.Linear(previous, width))
            if batch_norm:
                layers.append(nn.BatchNorm1d(width))
            layers.append(nn.ReLU())
            previous = width
        layers.append(nn.Linear(previous, out_features))
        self.body = nn.Sequential(*layers)

    def forward(self, x):
        return self.body(x)
