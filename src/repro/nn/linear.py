"""Fully connected layer."""

from __future__ import annotations

import math

import numpy as np

from repro.autograd.tensor import Tensor
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.utils.seed import get_rng


class Linear(Module):
    """``y = x @ W^T + b`` over the last input dimension.

    Weight is registered before bias, so reverse-parameter-order bucketing
    sees ``(bias, weight)`` per layer — matching the gradient readiness
    order sketched in the paper's Fig. 4.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(np.empty((out_features, in_features)))
        init.kaiming_uniform_(self.weight)
        if bias:
            bound = 1.0 / math.sqrt(in_features)
            self.bias = Parameter(get_rng().uniform(-bound, bound, out_features))
        else:
            self.register_parameter("bias", None)
            object.__setattr__(self, "bias", None)

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        has_bias = self._parameters.get("bias") is not None
        return f"Linear(in={self.in_features}, out={self.out_features}, bias={has_bias})"
