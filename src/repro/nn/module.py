"""``Module`` and ``Parameter``: the layer composition system.

Registration order is load-bearing for the whole library: DDP allocates
parameters to buckets in the *reverse* of ``model.parameters()`` order,
assuming layers are registered roughly in forward-invocation order
(paper §3.2.3).  ``Module`` therefore keeps insertion-ordered dicts for
parameters, buffers, and submodules, and ``parameters()`` walks them
depth-first in definition order — deterministically identical across
ranks given identical model code.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.autograd.tensor import Tensor


class Parameter(Tensor):
    """A leaf tensor that a ``Module`` treats as trainable state."""

    def __init__(self, data, requires_grad: bool = True, device: str = "cpu"):
        if isinstance(data, Tensor):
            super().__init__(data.data, requires_grad=requires_grad, device=data.device)
        else:
            arr = np.asarray(data)
            if arr.dtype.kind != "f":
                arr = arr.astype(np.float64)
            super().__init__(arr, requires_grad, device)

    def __repr__(self) -> str:
        return "Parameter containing:\n" + super().__repr__()


class Module:
    """Base class for all layers and models.

    Subclasses define parameters/buffers/submodules as attributes in
    ``__init__`` and implement ``forward``.  Assignment order determines
    iteration order, exactly as in PyTorch.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        # Unified registration order across parameters and submodules —
        # this is the order ``parameters()`` walks, hence the order DDP
        # buckets in reverse.
        object.__setattr__(self, "_order", [])
        object.__setattr__(self, "training", True)

    def _note_order(self, kind: str, name: str) -> None:
        entry = (kind, name)
        if entry not in self._order:
            self._order.append(entry)

    # -- attribute magic ------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            self._note_order("param", name)
            self.__dict__.pop(name, None)
        elif isinstance(value, Module):
            self._modules[name] = value
            self._note_order("module", name)
            self.__dict__.pop(name, None)
        elif name in getattr(self, "_buffers", {}):
            # Re-assigning a registered buffer keeps it a buffer.
            self._buffers[name] = value
        else:
            if name in self._parameters:
                del self._parameters[name]
                self._order.remove(("param", name))
            if name in self._modules:
                del self._modules[name]
                self._order.remove(("module", name))
            object.__setattr__(self, name, value)

    def __getattr__(self, name: str):
        # Only called when normal lookup fails.
        for store in ("_parameters", "_buffers", "_modules"):
            registry = self.__dict__.get(store)
            if registry is not None and name in registry:
                return registry[name]
        raise AttributeError(f"{type(self).__name__!r} object has no attribute {name!r}")

    def register_buffer(self, name: str, tensor: Optional[Tensor]) -> None:
        """Register non-trainable state (e.g. BatchNorm running stats).

        DDP broadcasts buffers from rank 0 before every synchronized
        forward pass (paper §4.1, "Model Buffers").
        """
        self._buffers[name] = tensor
        self.__dict__.pop(name, None)

    def register_parameter(self, name: str, param: Optional[Parameter]) -> None:
        if param is None:
            self._parameters.pop(name, None)
        else:
            self._parameters[name] = param
            self._note_order("param", name)

    def add_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        self._note_order("module", name)

    # -- iteration -------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Depth-first, in exact registration order (as in PyTorch, where
        a parameter defined before a submodule also iterates before it)."""
        for kind, name in self._order:
            if kind == "param":
                param = self._parameters.get(name)
                if param is not None:
                    yield prefix + name, param
            else:
                module = self._modules.get(name)
                if module is not None:
                    yield from module.named_parameters(prefix + name + ".")

    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        for name, buf in self._buffers.items():
            if buf is not None:
                yield prefix + name, buf
        for mod_name, module in self._modules.items():
            if module is not None:
                yield from module.named_buffers(prefix + mod_name + ".")

    def buffers(self) -> Iterator[Tensor]:
        for _, buf in self.named_buffers():
            yield buf

    def modules(self) -> Iterator["Module"]:
        yield self
        for module in self._modules.values():
            if module is not None:
                yield from module.modules()

    def children(self) -> Iterator["Module"]:
        yield from (m for m in self._modules.values() if m is not None)

    # -- state ------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Flat name → array copy of all parameters and buffers."""
        state: Dict[str, np.ndarray] = OrderedDict()
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buf in self.named_buffers():
            state[name] = buf.data.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        own.update(dict(self.named_buffers()))
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, tensor in own.items():
            np.copyto(tensor.data, np.asarray(state[name]).reshape(tensor.data.shape))

    # -- training state -----------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for module in self.children():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    def to(self, device: str) -> "Module":
        """Retag every parameter and buffer onto ``device``."""
        for param in self.parameters():
            param.to(device)
        for buf in self.buffers():
            buf.to(device)
        return self

    # -- call protocol ---------------------------------------------------
    def forward(self, *inputs, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *inputs, **kwargs):
        return self.forward(*inputs, **kwargs)

    def __repr__(self) -> str:
        lines = [type(self).__name__ + "("]
        for name, module in self._modules.items():
            sub = repr(module).replace("\n", "\n  ")
            lines.append(f"  ({name}): {sub}")
        lines.append(")")
        return "\n".join(lines)

    def num_parameters(self) -> int:
        """Total trainable element count (used throughout the benchmarks)."""
        return sum(p.numel() for p in self.parameters())
