"""Additional layers: Identity, Softmax, GroupNorm."""

from __future__ import annotations

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.nn.module import Module, Parameter


class Identity(Module):
    """Pass-through (useful as a configurable no-op slot)."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Softmax(Module):
    def __init__(self, axis: int = -1):
        super().__init__()
        self.axis = axis

    def forward(self, x: Tensor) -> Tensor:
        return ops.softmax(x, axis=self.axis)


class GroupNorm(Module):
    """Normalizes channel groups of (N, C, *spatial) inputs.

    Unlike BatchNorm it keeps no running statistics (no buffers), so it
    is insensitive to per-rank batch composition — a property sometimes
    preferred in data parallel training precisely because it removes
    the buffer-broadcast coupling.
    """

    def __init__(self, num_groups: int, num_channels: int, eps: float = 1e-5):
        super().__init__()
        if num_channels % num_groups:
            raise ValueError(
                f"num_channels {num_channels} not divisible by num_groups {num_groups}"
            )
        self.num_groups = num_groups
        self.num_channels = num_channels
        self.eps = eps
        self.weight = Parameter(np.ones(num_channels))
        self.bias = Parameter(np.zeros(num_channels))

    def forward(self, x: Tensor) -> Tensor:
        n, c = x.shape[0], x.shape[1]
        if c != self.num_channels:
            raise ValueError(f"expected {self.num_channels} channels, got {c}")
        spatial = x.shape[2:]
        grouped = x.reshape(n, self.num_groups, -1)
        mean = ops.mean(grouped, axis=-1, keepdims=True)
        centered = grouped - mean
        var = ops.mean(centered * centered, axis=-1, keepdims=True)
        normalized = centered * (var + self.eps) ** -0.5
        out = normalized.reshape(n, c, *spatial)
        shape = (1, c) + (1,) * len(spatial)
        return out * self.weight.reshape(shape) + self.bias.reshape(shape)
