"""Weight initialization schemes.

All draws go through the thread-local seeded generator so that every rank
calling ``manual_seed(k)`` before model construction builds *identical*
initial parameters — one of DDP's two correctness preconditions (the
other being identical gradients; paper §3).
"""

from __future__ import annotations

import math

import numpy as np

from repro.autograd.tensor import Tensor
from repro.utils.seed import get_rng


def uniform_(tensor: Tensor, low: float = 0.0, high: float = 1.0) -> Tensor:
    tensor.data[...] = get_rng().uniform(low, high, size=tensor.shape)
    return tensor


def normal_(tensor: Tensor, mean: float = 0.0, std: float = 1.0) -> Tensor:
    tensor.data[...] = get_rng().normal(mean, std, size=tensor.shape)
    return tensor


def zeros_(tensor: Tensor) -> Tensor:
    tensor.data[...] = 0.0
    return tensor


def ones_(tensor: Tensor) -> Tensor:
    tensor.data[...] = 1.0
    return tensor


def constant_(tensor: Tensor, value: float) -> Tensor:
    tensor.data[...] = value
    return tensor


def _fan_in_out(tensor: Tensor) -> tuple[int, int]:
    shape = tensor.shape
    if len(shape) < 2:
        raise ValueError("fan in/out undefined for tensors with fewer than 2 dims")
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def kaiming_uniform_(tensor: Tensor, a: float = math.sqrt(5)) -> Tensor:
    """He-style uniform init, matching ``torch.nn.Linear``'s default."""
    fan_in, _ = _fan_in_out(tensor)
    gain = math.sqrt(2.0 / (1.0 + a * a))
    bound = gain * math.sqrt(3.0 / fan_in)
    return uniform_(tensor, -bound, bound)


def xavier_uniform_(tensor: Tensor, gain: float = 1.0) -> Tensor:
    fan_in, fan_out = _fan_in_out(tensor)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return uniform_(tensor, -bound, bound)


def xavier_normal_(tensor: Tensor, gain: float = 1.0) -> Tensor:
    fan_in, fan_out = _fan_in_out(tensor)
    std = gain * math.sqrt(2.0 / (fan_in + fan_out))
    return normal_(tensor, 0.0, std)
