"""Inverted dropout."""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.nn.module import Module
from repro.utils.seed import get_rng


class Dropout(Module):
    """Zeroes activations with probability ``p`` during training.

    The mask is drawn from the thread-local generator; ranks that want
    different masks (as in real data parallel training) seed per-rank,
    ranks that need identical replicas (equivalence tests) seed alike.
    """

    def __init__(self, p: float = 0.5):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (get_rng().random(x.shape) < keep).astype(np.float64) / keep
        return x * Tensor(mask)
