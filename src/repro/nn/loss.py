"""Loss functions.

The paper's experiments compute losses with ``CrossEntropyLoss`` and
``MSELoss`` (its §3.1 example); both are provided with mean/sum/none
reductions.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.nn.module import Module


def _reduce(value: Tensor, reduction: str) -> Tensor:
    if reduction == "mean":
        return value.mean()
    if reduction == "sum":
        return value.sum()
    if reduction == "none":
        return value
    raise ValueError(f"unknown reduction {reduction!r}")


class MSELoss(Module):
    def __init__(self, reduction: str = "mean"):
        super().__init__()
        self.reduction = reduction

    def forward(self, prediction: Tensor, target: Tensor) -> Tensor:
        diff = prediction - target
        return _reduce(diff * diff, self.reduction)


class NLLLoss(Module):
    """Negative log likelihood over log-probability inputs (N, C)."""

    def __init__(self, reduction: str = "mean"):
        super().__init__()
        self.reduction = reduction

    def forward(self, log_probs: Tensor, target) -> Tensor:
        target_idx = _target_indices(target)
        rows = np.arange(log_probs.shape[0])
        picked = log_probs[rows, target_idx]
        return _reduce(-picked, self.reduction)


class CrossEntropyLoss(Module):
    """Softmax cross entropy over raw logits (N, C)."""

    def __init__(self, reduction: str = "mean"):
        super().__init__()
        self.reduction = reduction

    def forward(self, logits: Tensor, target) -> Tensor:
        log_probs = ops.log_softmax(logits, axis=-1)
        target_idx = _target_indices(target)
        rows = np.arange(logits.shape[0])
        picked = log_probs[rows, target_idx]
        return _reduce(-picked, self.reduction)


def _target_indices(target) -> np.ndarray:
    data = target.data if isinstance(target, Tensor) else np.asarray(target)
    return data.astype(np.int64).reshape(-1)
