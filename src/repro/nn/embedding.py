"""Token embedding lookup."""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.nn import init
from repro.nn.module import Module, Parameter


class Embedding(Module):
    """Integer-index row lookup into a learnable table.

    The backward pass scatter-adds into the table, so repeated indices
    within a batch accumulate — the sparse-gradient pattern the paper's
    related work (Parallax) calls out for NLP models.
    """

    def __init__(self, num_embeddings: int, embedding_dim: int):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(np.empty((num_embeddings, embedding_dim)))
        init.normal_(self.weight, 0.0, 1.0)

    def forward(self, indices) -> Tensor:
        idx = indices.data if isinstance(indices, Tensor) else np.asarray(indices)
        return self.weight[idx.astype(np.int64)]
