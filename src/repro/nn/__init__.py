"""Neural-network layers built on the autograd substrate.

The ``Module`` system reproduces the PyTorch property DDP depends on:
parameters register in a deterministic, definition order, and
``model.parameters()`` yields them in that order on every rank — the
basis for DDP's reverse-order bucketing (paper §3.2.3).
"""

from repro.nn.module import Module, Parameter
from repro.nn.linear import Linear
from repro.nn.conv import Conv2d, MaxPool2d, AvgPool2d, Flatten
from repro.nn.norm import BatchNorm1d, BatchNorm2d, LayerNorm
from repro.nn.activation import ReLU, Tanh, Sigmoid, GELU
from repro.nn.container import Sequential, ModuleList
from repro.nn.loss import MSELoss, CrossEntropyLoss, NLLLoss
from repro.nn.embedding import Embedding
from repro.nn.dropout import Dropout
from repro.nn.extra import Identity, Softmax, GroupNorm
from repro.nn import init

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "Conv2d",
    "MaxPool2d",
    "AvgPool2d",
    "Flatten",
    "BatchNorm1d",
    "BatchNorm2d",
    "LayerNorm",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "GELU",
    "Sequential",
    "ModuleList",
    "MSELoss",
    "CrossEntropyLoss",
    "NLLLoss",
    "Embedding",
    "Dropout",
    "Identity",
    "Softmax",
    "GroupNorm",
    "init",
]
