"""Module containers."""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.nn.module import Module


class Sequential(Module):
    """Chains sub-modules; registration order == invocation order.

    This is the best case for DDP's reverse-order bucketing heuristic:
    the backward pass produces gradients in exactly the reverse of
    ``parameters()`` order.
    """

    def __init__(self, *modules: Module):
        super().__init__()
        for index, module in enumerate(modules):
            self.add_module(str(index), module)

    def forward(self, x):
        for module in self._modules.values():
            x = module(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]


class ModuleList(Module):
    """Holds sub-modules in a list; the caller drives invocation."""

    def __init__(self, modules: Iterable[Module] = ()):
        super().__init__()
        for index, module in enumerate(modules):
            self.add_module(str(index), module)

    def append(self, module: Module) -> "ModuleList":
        self.add_module(str(len(self._modules)), module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]
