"""Convolution and pooling layers (NCHW)."""

from __future__ import annotations

import math

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.utils.seed import get_rng


class Conv2d(Module):
    """2-D convolution with symmetric stride/padding and optional bias."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
    ):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            np.empty((out_channels, in_channels, kernel_size, kernel_size))
        )
        init.kaiming_uniform_(self.weight)
        if bias:
            fan_in = in_channels * kernel_size * kernel_size
            bound = 1.0 / math.sqrt(fan_in)
            self.bias = Parameter(get_rng().uniform(-bound, bound, out_channels))
        else:
            self.register_parameter("bias", None)
            object.__setattr__(self, "bias", None)

    def forward(self, x: Tensor) -> Tensor:
        out = ops.conv2d(x, self.weight, stride=self.stride, padding=self.padding)
        if self.bias is not None:
            out = out + self.bias.reshape(1, -1, 1, 1)
        return out

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"kernel={self.kernel_size}, stride={self.stride}, pad={self.padding})"
        )


class MaxPool2d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return ops.max_pool2d(x, kernel=self.kernel_size, stride=self.stride)


class AvgPool2d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return ops.avg_pool2d(x, kernel=self.kernel_size, stride=self.stride)


class Flatten(Module):
    """Flatten all but the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)
