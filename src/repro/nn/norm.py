"""Normalization layers.

``BatchNorm*`` keeps *buffers* (running mean/var and a batch counter) —
the model state that DDP must broadcast from rank 0 before synchronized
forward passes (paper §4.1, "Model Buffers").  Keeping them here makes
the buffer-broadcast code path real rather than hypothetical.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.nn.module import Module, Parameter


class _BatchNorm(Module):
    """Shared machinery for BatchNorm1d/2d (differing only in reduce axes)."""

    _reduce_axes: tuple

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(num_features))
        self.bias = Parameter(np.zeros(num_features))
        self.register_buffer("running_mean", Tensor(np.zeros(num_features)))
        self.register_buffer("running_var", Tensor(np.ones(num_features)))
        self.register_buffer("num_batches_tracked", Tensor(np.zeros(1)))

    def _param_shape(self, ndim: int) -> tuple:
        shape = [1] * ndim
        shape[1] = self.num_features
        return tuple(shape)

    def forward(self, x: Tensor) -> Tensor:
        axes = self._reduce_axes
        shape = self._param_shape(x.ndim)
        if self.training:
            mean = ops.mean(x, axis=axes, keepdims=True)
            centered = x - mean
            var = ops.mean(centered * centered, axis=axes, keepdims=True)
            # Update running statistics outside the tape.
            count = np.prod([x.shape[ax] for ax in axes])
            unbiased = var.data * count / max(count - 1, 1)
            m = self.momentum
            self.running_mean.data[...] = (
                (1 - m) * self.running_mean.data + m * mean.data.reshape(-1)
            )
            self.running_var.data[...] = (
                (1 - m) * self.running_var.data + m * unbiased.reshape(-1)
            )
            self.num_batches_tracked.data += 1
            inv_std = (var + self.eps) ** -0.5
            normalized = centered * inv_std
        else:
            mean = Tensor(self.running_mean.data.reshape(shape))
            var = Tensor(self.running_var.data.reshape(shape))
            normalized = (x - mean) * Tensor((var.data + self.eps) ** -0.5)
        return normalized * self.weight.reshape(shape) + self.bias.reshape(shape)


class BatchNorm1d(_BatchNorm):
    """Normalizes (N, C) or (N, C, L) inputs over the batch dimension(s)."""

    _reduce_axes = (0,)

    def forward(self, x: Tensor) -> Tensor:
        object.__setattr__(self, "_reduce_axes", (0,) if x.ndim == 2 else (0, 2))
        return super().forward(x)


class BatchNorm2d(_BatchNorm):
    """Normalizes (N, C, H, W) inputs over N, H, W."""

    _reduce_axes = (0, 2, 3)


class LayerNorm(Module):
    """Normalizes over the last dimension (transformer-style)."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5):
        super().__init__()
        self.normalized_shape = normalized_shape
        self.eps = eps
        self.weight = Parameter(np.ones(normalized_shape))
        self.bias = Parameter(np.zeros(normalized_shape))

    def forward(self, x: Tensor) -> Tensor:
        mean = ops.mean(x, axis=-1, keepdims=True)
        centered = x - mean
        var = ops.mean(centered * centered, axis=-1, keepdims=True)
        normalized = centered * (var + self.eps) ** -0.5
        return normalized * self.weight + self.bias
