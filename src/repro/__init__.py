"""repro: a from-scratch reproduction of *PyTorch Distributed:
Experiences on Accelerating Data Parallel Training* (Li et al., VLDB
2020).

Layered like the paper's Fig. 1, bottom-up:

* :mod:`repro.autograd` — tensors and the dynamic autograd engine with
  gradient-accumulator post-hooks.
* :mod:`repro.nn` / :mod:`repro.optim` — layers and optimizers.
* :mod:`repro.comm` — collective communication (the c10d analog):
  rendezvous store, transport, ring/tree/halving-doubling AllReduce,
  NCCL/Gloo-personality process groups, round-robin composition.
* :mod:`repro.core` — the contribution: ``DistributedDataParallel``
  with gradient bucketing, computation/communication overlap,
  ``no_sync``, unused-parameter detection, communication hooks.
* :mod:`repro.simnet` / :mod:`repro.simulation` — calibrated hardware
  cost models and the discrete-event iteration simulator behind every
  latency figure.
* :mod:`repro.data` / :mod:`repro.models` — data pipelines and small
  real models for correctness and convergence experiments.

Quickstart::

    import numpy as np
    from repro import nn, optim
    from repro.autograd import Tensor
    from repro.comm import run_distributed
    from repro.core import DistributedDataParallel
    from repro.utils import manual_seed

    def train(rank):
        manual_seed(0)                       # identical replicas
        net = nn.Linear(10, 10)
        net = DistributedDataParallel(net)   # the only changed line
        opt = optim.SGD(net.parameters(), lr=0.01)
        inp, exp = Tensor(np.random.randn(20, 10)), Tensor(np.random.randn(20, 10))
        out = net(inp)
        nn.MSELoss()(out, exp).backward()
        opt.step()

    run_distributed(world_size=4, fn=train, backend="gloo")
"""

from repro import (
    autograd,
    baselines,
    comm,
    core,
    data,
    debug,
    experiments,
    models,
    nn,
    optim,
    rpc,
    sharded,
    simnet,
    simulation,
    telemetry,
    utils,
)
from repro.core import DistributedDataParallel

__version__ = "1.0.0"

__all__ = [
    "autograd",
    "baselines",
    "comm",
    "core",
    "data",
    "debug",
    "experiments",
    "models",
    "nn",
    "optim",
    "rpc",
    "sharded",
    "simnet",
    "simulation",
    "telemetry",
    "utils",
    "DistributedDataParallel",
    "__version__",
]
