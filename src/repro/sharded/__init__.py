"""``repro.sharded``: ZeRO-1/2/3 sharded data parallelism.

Past DDP's ceiling — a full replica of parameters, gradients, and
optimizer state per rank — the ZeRO line of work shards each of those in
turn, trading collective traffic for per-rank memory (see
docs/sharding.md for the stage taxonomy, memory model, and knobs):

* :class:`~repro.sharded.optimizer.ShardedOptimizer` — ZeRO-1:
  optimizer state partitioned by flat spans.
* :class:`~repro.sharded.data_parallel.ShardedDataParallel` — ZeRO-2:
  gradients reduce-scattered; each rank keeps only its shard.
* :class:`~repro.sharded.fsdp.FullyShardedDataParallel` — ZeRO-3:
  parameters themselves sharded, gathered per submodule on demand.

All stages share one :class:`~repro.sharded.flat.FlatShardLayout`
(buckets + ``partition_spans`` ownership) and the
``reduce_scatter_flat`` / ``all_gather_flat`` collectives of
:class:`~repro.comm.process_group.ProcessGroup`, and every stage is
numerically exact against DDP: elementwise optimizers make span-sharded
updates bit-equal to replicated ones.
"""

from repro.sharded.checkpoint import (
    load_shard_payloads,
    load_sharded_training_checkpoint,
    reshard_state_dict,
    save_sharded_training_checkpoint,
    shard_payload,
)
from repro.sharded.data_parallel import ShardedDataParallel
from repro.sharded.flat import FlatShardLayout, unit_bucket_specs
from repro.sharded.fsdp import FullyShardedDataParallel
from repro.sharded.memory import (
    ShardedStats,
    measure_ddp_bytes,
    module_arrays,
    optimizer_state_arrays,
    storage_bytes,
)
from repro.sharded.optimizer import ShardedOptimizer

__all__ = [
    "FlatShardLayout",
    "FullyShardedDataParallel",
    "ShardedDataParallel",
    "ShardedOptimizer",
    "ShardedStats",
    "load_shard_payloads",
    "load_sharded_training_checkpoint",
    "measure_ddp_bytes",
    "module_arrays",
    "optimizer_state_arrays",
    "reshard_state_dict",
    "save_sharded_training_checkpoint",
    "shard_payload",
    "storage_bytes",
    "unit_bucket_specs",
]
