"""Sharded checkpointing: full-model snapshots and cross-world resharding.

Two families live here:

**Consolidated checkpoints** (PR-4 era, still the elastic wrappers'
`save_training_state` path): the on-disk format is exactly
:func:`repro.utils.checkpoint.save_training_checkpoint`'s
(``state/{name}``, ``opt/{index}/{key}``, ``meta/iteration``,
``extra/{key}`` in one atomically written, CRC-trailed npz), so a
checkpoint written mid-ZeRO-training restores into plain local training,
DDP, or any sharding stage — including a *different world size*.
:func:`reshard_state_dict` is the primitive that makes the cross-world
claim precise: it maps a consolidated (positionally keyed, full-array)
optimizer state dict onto any target :class:`~repro.sharded.flat
.FlatShardLayout` and rank, returning exactly the per-bucket span state
that rank's inner optimizer should hold.  Buckets are world-independent
(the bucket assignment depends only on parameters and cap), so shrink
4→2 and grow 2→4 round-trip bit-exactly for every ZeRO stage.

**Shard payloads** (the checkpoint-engine path): each rank persists only
its own spans (:func:`shard_payload`), no collectives at save time;
:func:`load_shard_payloads` reassembles full flats from any saved world
size — old spans are reconstructed with ``partition_spans(total,
saved_world)``, which is deterministic — and re-slices them into the
current layout.  This is what lets
:class:`~repro.checkpoint.engine.CheckpointEngine` restore a ZeRO run
into a grown or shrunk world from per-rank files (or their replicas).

Saving consolidated checkpoints is **collective** (state consolidation
all-gathers parameter and optimizer spans) but only rank 0 touches the
filesystem; loading is purely local.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.checkpoint.format import ChecksumError, load_verified_npz
from repro.utils.checkpoint import _atomic_savez, parse_training_payload


def save_sharded_training_checkpoint(
    path: str,
    model,
    iteration: int = 0,
    extra: Optional[Dict] = None,
) -> None:
    """Consolidate a sharded wrapper's state and write it on rank 0.

    ``model`` is a :class:`~repro.sharded.data_parallel.ShardedDataParallel`
    or :class:`~repro.sharded.fsdp.FullyShardedDataParallel`.  Every
    rank must call this (the consolidation gathers are collectives); the
    resulting file is byte-compatible with
    :func:`repro.utils.checkpoint.load_training_checkpoint`.
    """
    state = model.state_dict()
    opt_state = model.optimizer.consolidated_state_dict()
    if model.rank != 0:
        return
    payload = {f"state/{name}": value for name, value in state.items()}
    for index, per_param in opt_state["state"].items():
        for key, value in per_param.items():
            payload[f"opt/{index}/{key}"] = np.asarray(value)
    payload["meta/iteration"] = np.asarray(int(iteration))
    payload["meta/opt_num_params"] = np.asarray(int(opt_state["num_params"]))
    for key, value in (extra or {}).items():
        payload[f"extra/{key}"] = np.asarray(value)
    _atomic_savez(path, payload)


def load_sharded_training_checkpoint(path: str, model) -> Dict:
    """Restore a full-model checkpoint into a sharded wrapper.

    Local (no collectives): each rank reads the file, installs the model
    state through the wrapper (which re-shards it), and slices its spans
    of the positional optimizer state.  Accepts checkpoints written by
    either :func:`save_sharded_training_checkpoint` or plain
    :func:`repro.utils.checkpoint.save_training_checkpoint` — at any
    world size.  A torn or corrupt file raises
    :class:`~repro.checkpoint.format.ChecksumError`.
    Returns ``{"iteration": int, "extra": dict}``.
    """
    data = load_verified_npz(path)
    state, opt_state, iteration, num_params, extra = parse_training_payload(data)
    model.load_state_dict(state)
    consolidated: Dict = {"state": opt_state}
    if num_params is not None:
        consolidated["num_params"] = num_params
    model.optimizer.load_consolidated_state_dict(consolidated)
    return {"iteration": iteration, "extra": extra}


# -- cross-world resharding ------------------------------------------------
def reshard_state_dict(state_dict: Dict, layout, rank: int) -> List[Dict]:
    """Reshard a consolidated optimizer state dict onto a target layout.

    ``state_dict`` is what
    :meth:`~repro.sharded.optimizer.ShardedOptimizer.consolidated_state_dict`
    returns (``{"state": {param_index: {key: full array | scalar}},
    "num_params": N}``), written at *any* world size; ``layout`` is the
    target :class:`~repro.sharded.flat.FlatShardLayout` and ``rank`` the
    target rank.  Returns one dict per bucket mapping each state key to
    the rank's span of the bucket's flat order (scalars pass through) —
    exactly what the inner optimizer should hold for that bucket's shard
    tensor.  Buckets whose parameters carry no state get ``{}``.

    Purely local and world-agnostic: the consolidated dict has no span
    structure left in it, so shrink 4→2 and grow 2→4 both reduce to
    "re-slice the full arrays along the new span table".
    """
    num_params = state_dict.get("num_params")
    if num_params is not None and int(num_params) != len(layout.params):
        raise ValueError(
            f"consolidated optimizer state covers {int(num_params)} "
            f"parameters but the target layout has {len(layout.params)}"
        )
    state = state_dict.get("state", {})
    for index in state:
        if not 0 <= int(index) < len(layout.params):
            raise ValueError(
                f"optimizer state refers to parameter {index} but only "
                f"{len(layout.params)} parameters are registered"
            )

    def per_param(index: int) -> Dict:
        return state.get(index, state.get(str(index), {}))

    resharded: List[Dict] = []
    for bucket in range(layout.num_buckets):
        keys = set()
        bucket_param_indices = [
            index for index, _, _ in layout.bucket_entries(bucket)
        ]
        for index in bucket_param_indices:
            keys.update(per_param(index).keys())
        shard_state: Dict = {}
        lo, hi = layout.span(bucket, rank)
        for key in sorted(keys):
            sample = None
            for index in bucket_param_indices:
                if key in per_param(index):
                    sample = per_param(index)[key]
                    break
            value = np.asarray(sample)
            if value.ndim == 0:
                shard_state[key] = value.item()
                continue
            flat = np.zeros(
                layout.buckets[bucket].total_elements,
                dtype=layout.bucket_dtype(bucket),
            )
            for index, offset, size in layout.bucket_entries(bucket):
                per = per_param(index)
                if key in per:
                    entry = np.asarray(per[key]).reshape(-1)
                    if entry.size != size:
                        raise ValueError(
                            f"state '{key}' for parameter {index} has "
                            f"{entry.size} elements, expected {size}"
                        )
                    flat[offset : offset + size] = entry
            shard_state[key] = flat[lo:hi].copy()
        resharded.append(shard_state)
    return resharded


# -- per-rank shard payloads (checkpoint-engine path) ----------------------
def shard_payload(model, include_buffers: bool = False) -> Tuple[Dict, Dict]:
    """One rank's checkpoint shard of a sharded wrapper, no collectives.

    Returns ``(arrays, meta)``: arrays hold this rank's parameter span
    per bucket (``param/b{b}`` — the shard tensors, which are the
    authoritative span storage in every ZeRO stage) and its optimizer
    state spans (``opt/b{b}/{key}``, scalars as 0-d arrays); with
    ``include_buffers`` (rank 0) the module's full buffers ride along as
    ``buffer/{name}``.  ``meta`` records what a restore at a different
    world size must validate: bucket totals, parameter count, stage, and
    this rank's spans.
    """
    optimizer = model.optimizer
    layout = optimizer.layout
    arrays: Dict[str, np.ndarray] = {}
    for bucket, shard in enumerate(optimizer.shards):
        arrays[f"param/b{bucket}"] = np.array(shard.data, copy=True)
        state = optimizer.inner.state.get(id(shard)) or {}
        for key in sorted(state):
            value = state[key]
            arrays[f"opt/b{bucket}/{key}"] = np.array(value, copy=True)
    if include_buffers:
        for name, buf in model.module.named_buffers():
            arrays[f"buffer/{name}"] = np.array(buf.data, copy=True)
    meta = {
        "stage": getattr(getattr(model, "stats", None), "stage", "sharded"),
        "num_params": len(optimizer.params),
        "bucket_totals": [int(b.total_elements) for b in layout.buckets],
        "span": [
            [int(lo), int(hi)]
            for lo, hi in (
                layout.span(b, optimizer.rank) for b in range(layout.num_buckets)
            )
        ],
    }
    return arrays, meta


def load_shard_payloads(model, shards: Dict[int, Tuple[Dict, object]]) -> Dict:
    """Reassemble per-rank shard payloads into a (possibly re-worlded)
    sharded wrapper.

    ``shards`` maps every *saved* rank to its ``(arrays, manifest)``
    pair (:func:`shard_payload` output; the manifest supplies the saved
    world size and meta).  The saved span table is reconstructed with
    ``partition_spans(total, saved_world)`` — deterministic, so nothing
    but the shards themselves needs to survive — full flats are
    assembled per bucket, and this rank's *new* spans are sliced into
    the shard tensors, the live parameters (except ZeRO-3, whose freed
    stubs regather lazily from the shards), and the inner optimizer's
    state.  Purely local.  Returns ``{"iteration", "extra"}``.
    """
    from repro.comm.algorithms import partition_spans

    optimizer = model.optimizer
    layout = optimizer.layout
    if 0 not in shards:
        raise ValueError("shard payloads must include saved rank 0")
    rank0_arrays, rank0_manifest = shards[0]
    saved_world = int(rank0_manifest.world_size)
    meta = rank0_manifest.meta
    missing = [r for r in range(saved_world) if r not in shards]
    if missing:
        raise ValueError(
            f"shard payloads cover saved world {saved_world} but ranks "
            f"{missing} are absent"
        )
    bucket_totals = [int(x) for x in meta.get("bucket_totals", [])]
    ours = [int(b.total_elements) for b in layout.buckets]
    if bucket_totals and bucket_totals != ours:
        raise ValueError(
            f"saved bucket layout {bucket_totals} does not match the target "
            f"layout {ours}; bucket caps or the model differ"
        )
    num_params = meta.get("num_params")
    if num_params is not None and int(num_params) != len(optimizer.params):
        raise ValueError(
            f"saved shards cover {int(num_params)} parameters but the "
            f"target model has {len(optimizer.params)}"
        )

    sharded_params = hasattr(model, "summon_full_params")
    for bucket, shard in enumerate(optimizer.shards):
        total = int(layout.buckets[bucket].total_elements)
        old_spans = partition_spans(total, saved_world)
        flat = np.zeros(total, dtype=layout.bucket_dtype(bucket))
        keys = set()
        prefix = f"opt/b{bucket}/"
        for old_rank in range(saved_world):
            arrays, _ = shards[old_rank]
            lo, hi = old_spans[old_rank]
            piece = arrays.get(f"param/b{bucket}")
            if piece is None or piece.size != hi - lo:
                raise ChecksumError(
                    f"saved rank {old_rank} shard of bucket {bucket} holds "
                    f"{0 if piece is None else piece.size} elements, "
                    f"expected {hi - lo}"
                )
            flat[lo:hi] = np.asarray(piece).reshape(-1)
            keys.update(
                key[len(prefix):] for key in arrays if key.startswith(prefix)
            )
        new_lo, new_hi = layout.span(bucket, optimizer.rank)
        shard.data[...] = flat[new_lo:new_hi]
        if not sharded_params:
            layout.scatter_into_params(bucket, flat)
        shard_state: Dict = {}
        for key in sorted(keys):
            scalar = None
            pieces: Dict[int, np.ndarray] = {}
            for old_rank in range(saved_world):
                arrays, _ = shards[old_rank]
                value = arrays.get(f"{prefix}{key}")
                if value is None:
                    continue
                value = np.asarray(value)
                if value.ndim == 0:
                    scalar = value.item()
                else:
                    pieces[old_rank] = value
            if not pieces:
                if scalar is not None:
                    shard_state[key] = scalar
                continue
            key_flat = np.zeros(total, dtype=next(iter(pieces.values())).dtype)
            for old_rank, value in pieces.items():
                lo, hi = old_spans[old_rank]
                if value.size != hi - lo:
                    raise ChecksumError(
                        f"saved rank {old_rank} state '{key}' of bucket "
                        f"{bucket} holds {value.size} elements, expected "
                        f"{hi - lo}"
                    )
                key_flat[lo:hi] = value.reshape(-1)
            shard_state[key] = key_flat[new_lo:new_hi].copy()
        if shard_state:
            optimizer.inner.state[id(shard)] = shard_state
        else:
            optimizer.inner.state.pop(id(shard), None)

    own_buffers = dict(model.module.named_buffers())
    for key, value in rank0_arrays.items():
        if key.startswith("buffer/"):
            name = key[len("buffer/"):]
            if name in own_buffers:
                np.copyto(own_buffers[name].data, value)
    extra = {
        key[len("extra/"):]: value
        for key, value in rank0_arrays.items()
        if key.startswith("extra/")
    }
    return {"iteration": int(rank0_manifest.iteration), "extra": extra}
