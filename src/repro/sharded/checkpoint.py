"""Sharded checkpointing: full-model snapshots from sharded training.

The on-disk format is exactly :func:`repro.utils.checkpoint.save_training_checkpoint`'s
(``state/{name}``, ``opt/{index}/{key}``, ``meta/iteration``,
``extra/{key}`` in one atomically written npz), so a checkpoint written
mid-ZeRO-training restores into plain local training, DDP, or any
sharding stage — including a *different world size*, which is what lets
these compose with :func:`repro.resilience.elastic.run_elastic`'s
shrink-to-survive recovery: survivors re-wrap at the new world and load
the same file.

Saving is **collective** (state consolidation all-gathers parameter and
optimizer spans), but only rank 0 touches the filesystem.  Loading is
purely local: every rank parses the file and keeps its own spans.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.utils.checkpoint import _atomic_savez


def save_sharded_training_checkpoint(
    path: str,
    model,
    iteration: int = 0,
    extra: Optional[Dict] = None,
) -> None:
    """Consolidate a sharded wrapper's state and write it on rank 0.

    ``model`` is a :class:`~repro.sharded.data_parallel.ShardedDataParallel`
    or :class:`~repro.sharded.fsdp.FullyShardedDataParallel`.  Every
    rank must call this (the consolidation gathers are collectives); the
    resulting file is byte-compatible with
    :func:`repro.utils.checkpoint.load_training_checkpoint`.
    """
    state = model.state_dict()
    opt_state = model.optimizer.consolidated_state_dict()
    if model.rank != 0:
        return
    payload = {f"state/{name}": value for name, value in state.items()}
    for index, per_param in opt_state["state"].items():
        for key, value in per_param.items():
            payload[f"opt/{index}/{key}"] = np.asarray(value)
    payload["meta/iteration"] = np.asarray(int(iteration))
    payload["meta/opt_num_params"] = np.asarray(int(opt_state["num_params"]))
    for key, value in (extra or {}).items():
        payload[f"extra/{key}"] = np.asarray(value)
    _atomic_savez(path, payload)


def load_sharded_training_checkpoint(path: str, model) -> Dict:
    """Restore a full-model checkpoint into a sharded wrapper.

    Local (no collectives): each rank reads the file, installs the model
    state through the wrapper (which re-shards it), and slices its spans
    of the positional optimizer state.  Accepts checkpoints written by
    either :func:`save_sharded_training_checkpoint` or plain
    :func:`repro.utils.checkpoint.save_training_checkpoint`.
    Returns ``{"iteration": int, "extra": dict}``.
    """
    with np.load(path) as data:
        state = {}
        opt_state: Dict[int, Dict] = {}
        extra = {}
        iteration = 0
        num_params = None
        for key in data.files:
            if key.startswith("state/"):
                state[key[len("state/"):]] = data[key]
            elif key.startswith("opt/"):
                _, index, name = key.split("/", 2)
                opt_state.setdefault(int(index), {})[name] = data[key]
            elif key == "meta/iteration":
                iteration = int(data[key])
            elif key == "meta/opt_num_params":
                num_params = int(data[key])
            elif key.startswith("extra/"):
                extra[key[len("extra/"):]] = data[key]
    model.load_state_dict(state)
    consolidated: Dict = {"state": opt_state}
    if num_params is not None:
        consolidated["num_params"] = num_params
    model.optimizer.load_consolidated_state_dict(consolidated)
    return {"iteration": iteration, "extra": extra}
