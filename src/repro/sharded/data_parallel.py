"""``ShardedDataParallel``: gradient + optimizer-state sharding (ZeRO-2).

The training loop looks like DDP's, but the wrapper owns the optimizer
(construction must know the shard layout) and the backward communicates
with ``reduce_scatter_flat`` instead of allreduce:

* autograd post-hooks count gradients per bucket, exactly like the
  reducer's readiness protocol;
* when a bucket's last gradient lands, its flat gradient buffer is
  reduce-scattered **asynchronously** behind a bucket-order launch
  frontier (the paper's Fig. 3(a) discipline — every rank must launch
  collectives in the same order);
* :meth:`ShardedDataParallel.step` waits for the spans, hands each rank
  its averaged shard, **frees the full per-parameter gradients** (the
  ZeRO-2 memory property: full gradients exist only transiently between
  backward and step), runs the sharded optimizer, and all-gathers the
  updated parameter spans.

Models whose autograd graph skips parameters are rejected with a named
error at :meth:`step` — sharded mode has no unused-parameter bitmap, so
a never-ready bucket would otherwise hang every rank.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.nn.module import Module
from repro.sharded.flat import FlatShardLayout
from repro.sharded.memory import (
    ShardedStats,
    module_arrays,
    optimizer_state_arrays,
    storage_bytes,
)
from repro.sharded.optimizer import ShardedOptimizer, _resolve_group


class ShardedDataParallel(Module):
    """ZeRO-2 wrapper: each rank keeps only its gradient + state shard.

    Parameters
    ----------
    module:
        The local model; rank 0's parameters and buffers are broadcast
        so replicas start identical, as in DDP.
    optimizer_factory:
        Builds the inner optimizer over this rank's shard tensors, e.g.
        ``lambda ps: Adam(ps, lr=1e-3)``.
    process_group:
        Group for the collectives; defaults to the rank's default group.
    bucket_cap_mb:
        Bucket size knob (reverse-parameter-order assignment, shared
        with the optimizer's span layout).

    Thread-safety: per-rank object; drive it from the rank's thread.
    """

    def __init__(
        self,
        module: Module,
        optimizer_factory: Callable,
        process_group=None,
        bucket_cap_mb: float = 25.0,
    ):
        super().__init__()
        self.module = module
        self.process_group = _resolve_group(process_group)
        self.world = int(self.process_group.size)
        self.rank = self.process_group.group_rank
        self._params = list(module.parameters())
        if not self._params:
            raise ValueError("ShardedDataParallel requires a model with parameters")
        self._param_names = [name for name, _ in module.named_parameters()]

        for param in self._params:
            self.process_group.broadcast(param, src=0)
        for buffer in self.module.buffers():
            self.process_group.broadcast(buffer, src=0)

        self.layout = FlatShardLayout(
            self._params, self.world, bucket_cap_mb=bucket_cap_mb
        )
        self.optimizer = ShardedOptimizer(
            self._params,
            optimizer_factory,
            process_group=self.process_group,
            layout=self.layout,
            gather_after_step=True,
        )
        self.stats = ShardedStats("zero2", self.world)

        # Readiness protocol state (the reducer's, minus unused-param
        # bitmaps): bucket of each param, pending count per bucket.
        self._bucket_of: Dict[int, int] = {}
        for bucket in range(self.layout.num_buckets):
            for index, _, _ in self.layout.bucket_entries(bucket):
                self._bucket_of[index] = bucket
        self._acc_to_index = {}
        self._hook_removers = []
        for index, param in enumerate(self._params):
            acc = param.accumulator()
            self._acc_to_index[id(acc)] = index
            self._hook_removers.append(acc.register_post_hook(self._grad_hook))

        self._reset_iteration()

    # -- iteration bookkeeping ------------------------------------------
    def _reset_iteration(self) -> None:
        self._grad_seen = [False] * len(self._params)
        self._pending = [
            len(self.layout.buckets[b].param_indices)
            for b in range(self.layout.num_buckets)
        ]
        self._bucket_ready = [False] * self.layout.num_buckets
        self._frontier = 0
        self._works: List[Optional[object]] = [None] * self.layout.num_buckets
        self._flats: List[Optional[np.ndarray]] = [None] * self.layout.num_buckets

    def _grad_hook(self, accumulator) -> None:
        index = self._acc_to_index.get(id(accumulator))
        if index is None or self._grad_seen[index]:
            return
        self._grad_seen[index] = True
        bucket = self._bucket_of[index]
        self._pending[bucket] -= 1
        if self._pending[bucket] == 0:
            self._bucket_ready[bucket] = True
            self._advance_frontier()

    def _advance_frontier(self) -> None:
        # Launch ready buckets strictly in bucket-index order so every
        # rank issues the same collective sequence (no cross-rank
        # deadlock even though per-rank backward order may differ).
        while (
            self._frontier < self.layout.num_buckets
            and self._bucket_ready[self._frontier]
        ):
            bucket = self._frontier
            flat = np.empty(
                self.layout.buckets[bucket].total_elements,
                dtype=self.layout.bucket_dtype(bucket),
            )
            self.layout.copy_grads_into(bucket, flat)
            self._flats[bucket] = flat
            self._works[bucket] = self.process_group.reduce_scatter_flat(
                flat, async_op=True
            )
            self.stats.reduce_scatter_count += 1
            self.stats.reduce_scatter_bytes += flat.nbytes
            self._frontier += 1

    # -- module protocol -------------------------------------------------
    def forward(self, *inputs, **kwargs):
        """Run the wrapped module's forward; resets the readiness state
        so the coming backward starts a fresh launch frontier."""
        self._reset_iteration()
        return self.module(*inputs, **kwargs)

    def state_dict(self):
        """The wrapped module's state dict (no ``module.`` prefix)."""
        return self.module.state_dict()

    def load_state_dict(self, state) -> None:
        """Load into the wrapped module and refresh optimizer shards."""
        self.module.load_state_dict(state)
        self.optimizer.refresh_shards_from_params()

    # -- training step ---------------------------------------------------
    def _unready_report(self) -> str:
        names = [
            self._param_names[index]
            for index, seen in enumerate(self._grad_seen)
            if not seen
        ]
        return (
            "ShardedDataParallel: backward produced no gradient for "
            f"{len(names)} parameter(s) {names}; sharded mode requires every "
            "parameter to participate (no unused-parameter support)"
        )

    def step(self) -> None:
        """Wait for the reduce-scatters, free full gradients, run the
        sharded optimizer update, and all-gather new parameters."""
        if self._frontier < self.layout.num_buckets:
            raise RuntimeError(self._unready_report())
        # Peak of the iteration: full gradients + shards + state all live.
        self.stats.observe(self.live_bytes())
        for bucket, work in enumerate(self._works):
            work.wait()
            span = work.result[0]
            span /= self.world
            self.optimizer.set_shard_grad(bucket, span)
            self._flats[bucket] = None
            self._works[bucket] = None
        # The ZeRO-2 property: full per-parameter gradients are dropped
        # before the weight update — only the averaged shard survives.
        for param in self._params:
            param.grad = None
        self.stats.free_count += len(self._params)
        gathers_before = self.optimizer.all_gather_count
        self.optimizer.step()
        gathers = self.optimizer.all_gather_count - gathers_before
        self.stats.gather_count += gathers
        self.stats.all_gather_bytes += sum(
            self.layout.buckets[b].total_elements
            * self.layout.bucket_dtype(b).itemsize
            for b in range(min(gathers, self.layout.num_buckets))
        )
        self.stats.iterations += 1
        self.stats.observe(self.live_bytes())

    def zero_grad(self) -> None:
        """Clear parameter and shard gradients; reset readiness state."""
        self.optimizer.zero_grad()
        self._reset_iteration()

    # -- elastic checkpoint protocol -------------------------------------
    def save_training_state(self, path: str, iteration: int = 0, extra=None) -> None:
        """Collective checkpoint save (rank 0 writes); the protocol
        :func:`repro.resilience.elastic.run_elastic` drives."""
        from repro.sharded.checkpoint import save_sharded_training_checkpoint

        save_sharded_training_checkpoint(path, self, iteration=iteration, extra=extra)

    def load_training_state(self, path: str) -> dict:
        """Local checkpoint restore; returns ``{"iteration", "extra"}``."""
        from repro.sharded.checkpoint import load_sharded_training_checkpoint

        return load_sharded_training_checkpoint(path, self)

    # -- observability ---------------------------------------------------
    def live_bytes(self) -> int:
        """Measured bytes this rank currently holds for training state:
        module arrays, shard tensors + grads, optimizer state, and any
        in-flight flat communication buffers."""
        arrays = list(module_arrays(self.module))
        for shard in self.optimizer.shards:
            arrays.append(shard.data)
            if shard.grad is not None:
                arrays.append(shard.grad.data)
        arrays.extend(optimizer_state_arrays(self.optimizer.inner))
        arrays.extend(flat for flat in self._flats if flat is not None)
        return storage_bytes(arrays)

    def ddp_stats(self) -> dict:
        """DDP-style stats report with the ``"sharded"`` section the
        observability docs describe (peak bytes, gather/free counters)."""
        return {
            "world_size": self.world,
            "rank": self.rank,
            "num_buckets": self.layout.num_buckets,
            "bucket_sizes_bytes": [
                self.layout.buckets[b].total_elements
                * self.layout.bucket_dtype(b).itemsize
                for b in range(self.layout.num_buckets)
            ],
            "sharded": self.stats.snapshot(),
        }
