"""Measured per-rank memory accounting for the sharded stack.

The bench's ZeRO-vs-DDP crossover claims rest on *measured* bytes, not
the analytic model in :mod:`repro.simulation.memory`: these helpers walk
the live numpy arrays a rank actually holds — parameters, gradients,
buffers, optimizer state, shard storage, and any transient flat
gather/reduce buffers — and sum the bytes of their **unique backing
storages**.  Views are free (they count their base exactly once), and
the zero-stride stub a :class:`~repro.sharded.fsdp.FullyShardedDataParallel`
installs for a freed parameter counts as its tiny scalar base, which is
what makes the ZeRO-3 savings visible to the meter instead of assumed.

Thread-safety: per-rank data only; call from the owning rank's thread.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

import numpy as np


def _storage_base(array: np.ndarray) -> np.ndarray:
    base = array
    while isinstance(base.base, np.ndarray):
        base = base.base
    return base


def storage_bytes(arrays: Iterable[Optional[np.ndarray]]) -> int:
    """Bytes of unique backing storage behind ``arrays``.

    Each distinct base array is counted once no matter how many views
    alias it, so flat bucket buffers and their per-parameter gradient
    views do not double-count (nor do a parameter and the gathered flat
    it is a view of).
    """
    seen: set = set()
    total = 0
    for array in arrays:
        if array is None:
            continue
        base = _storage_base(np.asarray(array))
        key = id(base)
        if key in seen:
            continue
        seen.add(key)
        total += base.nbytes
    return total


def module_arrays(module) -> Iterator[Optional[np.ndarray]]:
    """Every array a plain module holds: params, grads, buffers."""
    for param in module.parameters():
        yield param.data
        if param.grad is not None:
            yield param.grad.data
    for buffer in module.buffers():
        data = getattr(buffer, "data", None)
        if isinstance(data, np.ndarray):
            yield data


def optimizer_state_arrays(optimizer) -> Iterator[np.ndarray]:
    """Every ndarray inside an optimizer's per-parameter state."""
    state = getattr(optimizer, "state", None)
    if not state:
        return
    for per_param in state.values():
        for value in per_param.values():
            if isinstance(value, np.ndarray):
                yield value


def measure_ddp_bytes(ddp, optimizer=None) -> int:
    """Live per-rank bytes of a DDP replica: module + reducer flats +
    optimizer state.  The DDP side of the bench's crossover table,
    measured with the same walker as the sharded wrappers."""
    arrays = list(module_arrays(ddp.module))
    reducer = getattr(ddp, "reducer", None)
    if reducer is not None:
        for bucket in getattr(reducer, "_buckets", []):
            flat = getattr(bucket, "flat", None)
            if isinstance(flat, np.ndarray):
                arrays.append(flat)
    if optimizer is not None:
        arrays.extend(optimizer_state_arrays(optimizer))
    return storage_bytes(arrays)


class ShardedStats:
    """Counters + peak-byte meter behind ``ddp_stats()["sharded"]``.

    ``observe(nbytes)`` feeds a measured live-byte sample; the wrappers
    call it at the peaks of their lifecycle (post-gather, post-backward,
    pre-free), so ``peak_bytes`` tracks the worst point of an iteration
    rather than a steady state.
    """

    def __init__(self, stage: str, world: int):
        self.stage = stage
        self.world = world
        self.gather_count = 0
        self.free_count = 0
        self.reduce_scatter_count = 0
        self.reduce_scatter_bytes = 0
        self.all_gather_bytes = 0
        self.peak_bytes = 0
        self.current_bytes = 0
        self.iterations = 0

    def observe(self, nbytes: int) -> None:
        """Record a live-bytes sample; updates current and peak."""
        self.current_bytes = int(nbytes)
        if self.current_bytes > self.peak_bytes:
            self.peak_bytes = self.current_bytes

    def snapshot(self) -> dict:
        """The ``ddp_stats()["sharded"]`` payload."""
        return {
            "stage": self.stage,
            "world_size": self.world,
            "iterations": self.iterations,
            "gather_count": self.gather_count,
            "free_count": self.free_count,
            "reduce_scatter_count": self.reduce_scatter_count,
            "reduce_scatter_bytes": self.reduce_scatter_bytes,
            "all_gather_bytes": self.all_gather_bytes,
            "peak_bytes_per_rank": self.peak_bytes,
            "current_bytes_per_rank": self.current_bytes,
        }
