"""Flat-span shard layout shared by every ZeRO stage.

The sharded stack reuses DDP's bucket machinery
(:mod:`repro.core.bucket`): parameters are coalesced into flat buckets
— by :func:`~repro.core.bucket.cached_bucket_assignment` for ZeRO-1/2,
or one bucket per ``repro.nn`` submodule for ZeRO-3 — and each bucket's
flat element range is partitioned across ranks with
:func:`~repro.comm.algorithms.partition_spans`.  Rank ``r`` owns span
``r`` of every bucket: exactly the span
:meth:`~repro.comm.process_group.ProcessGroup.reduce_scatter_flat`
returns to it and the span it contributes to
:meth:`~repro.comm.process_group.ProcessGroup.all_gather_flat`.

Splitting *within* parameters (flat spans, not whole-parameter
ownership) keeps shards balanced to ±1 element regardless of layer
sizes; it is numerically free because every optimizer here (SGD, Adam)
updates elementwise, so the sharded update equals the replicated one
bit for bit.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.comm.algorithms import partition_spans
from repro.core.bucket import BucketSpec, cached_bucket_assignment
from repro.utils.units import MB

#: Bucket cap used when the caller does not want size-based splitting:
#: large enough that only device/dtype changes close a bucket.
UNBOUNDED_CAP_BYTES = 1 << 62


def unit_bucket_specs(unit_param_indices: Sequence[Sequence[int]], params) -> List[BucketSpec]:
    """Build one :class:`BucketSpec` per explicit parameter grouping.

    ZeRO-3 shards per ``repro.nn`` submodule rather than by byte cap;
    this adapts those module-defined groups onto the same spec type the
    reducer and :class:`FlatShardLayout` already understand.
    """
    specs: List[BucketSpec] = []
    for indices in unit_param_indices:
        sizes = tuple(params[i].numel() for i in indices)
        offsets = []
        offset = 0
        for size in sizes:
            offsets.append(offset)
            offset += size
        first = params[indices[0]]
        specs.append(
            BucketSpec(
                index=len(specs),
                param_indices=tuple(indices),
                offsets=tuple(offsets),
                sizes=sizes,
                device=getattr(first, "device", "cpu"),
                dtype=str(first.dtype),
            )
        )
    return specs


class FlatShardLayout:
    """Maps parameters ↔ flat bucket windows ↔ per-rank spans.

    One instance is shared by a sharded wrapper and its
    :class:`~repro.sharded.optimizer.ShardedOptimizer`, so gradients are
    reduce-scattered, optimizer state partitioned, and parameters
    all-gathered over the *same* element ranges.

    Thread-safety: immutable after construction; the copy helpers write
    only into caller-provided arrays.
    """

    def __init__(
        self,
        params: Sequence,
        world: int,
        bucket_cap_mb: Optional[float] = None,
        specs: Optional[List[BucketSpec]] = None,
    ):
        self.params = list(params)
        if not self.params:
            raise ValueError("FlatShardLayout requires at least one parameter")
        if world < 1:
            raise ValueError("world must be >= 1")
        self.world = int(world)
        if specs is None:
            cap = (
                int(bucket_cap_mb * MB)
                if bucket_cap_mb is not None
                else UNBOUNDED_CAP_BYTES
            )
            specs = cached_bucket_assignment(self.params, bucket_cap_bytes=cap)
        self.buckets: List[BucketSpec] = list(specs)
        #: Per bucket: the ``partition_spans`` ownership table.
        self.spans: List[List[Tuple[int, int]]] = [
            partition_spans(b.total_elements, self.world) for b in self.buckets
        ]

    # -- sizes -----------------------------------------------------------
    @property
    def num_buckets(self) -> int:
        """Number of flat buckets in the layout."""
        return len(self.buckets)

    def total_numel(self) -> int:
        """Total parameter elements across all buckets."""
        return sum(b.total_elements for b in self.buckets)

    def shard_numel(self, rank: int) -> int:
        """Elements rank ``rank`` owns, summed over all buckets."""
        return sum(hi - lo for spans in self.spans for lo, hi in [spans[rank]])

    def span(self, bucket: int, rank: int) -> Tuple[int, int]:
        """Rank ``rank``'s ``(lo, hi)`` window of bucket ``bucket``."""
        return self.spans[bucket][rank]

    def bucket_dtype(self, bucket: int) -> np.dtype:
        """The numpy dtype of a bucket's flat buffer."""
        return np.dtype(self.buckets[bucket].dtype)

    # -- parameter <-> flat copies --------------------------------------
    def bucket_entries(self, bucket: int) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(param_index, flat_offset, size)`` for one bucket."""
        spec = self.buckets[bucket]
        for param_index, offset, size in zip(
            spec.param_indices, spec.offsets, spec.sizes
        ):
            yield param_index, offset, size

    def copy_params_into(self, bucket: int, flat: np.ndarray) -> None:
        """Copy parameter values into the bucket's flat buffer."""
        for index, offset, size in self.bucket_entries(bucket):
            flat[offset : offset + size] = self.params[index].data.reshape(-1)

    def copy_grads_into(self, bucket: int, flat: np.ndarray) -> List[int]:
        """Copy parameter gradients into the flat buffer; missing
        gradients contribute zeros.  Returns the indices of parameters
        that had no gradient (for the caller's unused-parameter error)."""
        missing: List[int] = []
        for index, offset, size in self.bucket_entries(bucket):
            grad = self.params[index].grad
            if grad is None:
                flat[offset : offset + size] = 0.0
                missing.append(index)
            else:
                flat[offset : offset + size] = grad.data.reshape(-1)
        return missing

    def scatter_into_params(self, bucket: int, flat: np.ndarray) -> None:
        """Write the bucket's flat buffer back into the parameters."""
        for index, offset, size in self.bucket_entries(bucket):
            param = self.params[index]
            np.copyto(
                param.data, flat[offset : offset + size].reshape(param.data.shape)
            )

    # -- shard <-> parameter mapping ------------------------------------
    def shard_overlaps(
        self, bucket: int, rank: int
    ) -> Iterator[Tuple[int, slice, slice]]:
        """Parameters overlapping rank ``rank``'s span of ``bucket``.

        Yields ``(param_index, param_flat_slice, shard_slice)``: the
        slice of the parameter's flattened data covered by the shard and
        where it lands inside the shard array.  This is the mapping the
        sharded checkpoint code uses to reassemble (and re-slice)
        positionally keyed optimizer state.
        """
        lo, hi = self.spans[bucket][rank]
        for index, offset, size in self.bucket_entries(bucket):
            p_lo = max(lo, offset)
            p_hi = min(hi, offset + size)
            if p_lo < p_hi:
                yield (
                    index,
                    slice(p_lo - offset, p_hi - offset),
                    slice(p_lo - lo, p_hi - lo),
                )
