"""``FullyShardedDataParallel``: parameter sharding (ZeRO-3).

Parameters themselves live sharded: each rank permanently stores only
its flat span of every *unit* (a ``repro.nn`` submodule with directly
registered parameters, one bucket per unit via
:func:`~repro.sharded.flat.unit_bucket_specs`).  The full parameter
arrays exist only while a unit is *materialized*:

* **forward** — each unit's ``forward`` is wrapped (instance-attribute
  override, so ``Module.__call__`` picks it up) to first all-gather the
  unit's flat from the per-rank shards; parameters become zero-copy
  views into the gathered flat;
* **backward** — the autograd tape saw the gathered views, so gradients
  flow normally; when the unit's last parameter gradient lands (the
  engine's dependency counting guarantees gradients are final), the
  unit's flat gradient is reduce-scattered asynchronously behind a
  reverse-unit-order launch frontier, and both the full gradients *and*
  the full parameters are freed immediately — each parameter's ``data``
  becomes a zero-stride broadcast stub (shape/dtype preserved, ~0
  backing bytes);
* **step** — the inner optimizer updates the shard tensors in place; no
  gather happens (``gather_after_step=False``): the next forward lazily
  re-materializes each unit from its updated shard.

Limitations (checked or documented): a parameter registered under two
modules (weight tying) raises ``NotImplementedError``; every parameter
must participate in backward (no unused-parameter bitmap); parameters
must not be mutated outside :meth:`FullyShardedDataParallel.summon_full_params`.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.nn.module import Module
from repro.sharded.flat import FlatShardLayout, unit_bucket_specs
from repro.sharded.memory import (
    ShardedStats,
    optimizer_state_arrays,
    storage_bytes,
)
from repro.sharded.optimizer import ShardedOptimizer, _resolve_group


def _stub(shape, dtype) -> np.ndarray:
    """A freed parameter's placeholder: right shape/dtype, ~0 bytes.

    Zero-stride broadcast of a single zero — reads see zeros, writes
    raise, and the memory meter counts only the scalar base.
    """
    return np.broadcast_to(np.zeros(1, dtype=dtype), shape)


class FullyShardedDataParallel(Module):
    """ZeRO-3 wrapper: parameters, gradients, and optimizer state all
    sharded; full per-unit parameters exist only forward-through-backward.

    Parameters
    ----------
    module:
        The local model.  Submodules with direct parameters become the
        gather/free units.
    optimizer_factory:
        Builds the inner optimizer over this rank's shard tensors.
    process_group:
        Group for the collectives; defaults to the rank's default group.

    Thread-safety: per-rank object; drive it from the rank's thread.
    """

    def __init__(
        self,
        module: Module,
        optimizer_factory: Callable,
        process_group=None,
    ):
        super().__init__()
        self.module = module
        self.process_group = _resolve_group(process_group)
        self.world = int(self.process_group.size)
        self.rank = self.process_group.group_rank
        self._params = list(module.parameters())
        if not self._params:
            raise ValueError(
                "FullyShardedDataParallel requires a model with parameters"
            )
        self._param_names = [name for name, _ in module.named_parameters()]
        index_of: Dict[int, int] = {}
        for index, param in enumerate(self._params):
            if id(param) in index_of:
                raise NotImplementedError(
                    "FullyShardedDataParallel does not support shared "
                    f"(tied) parameters: {self._param_names[index]!r} is "
                    "registered more than once"
                )
            index_of[id(param)] = index

        # Units: submodules with direct parameters, in depth-first
        # registration order — the granularity of gather/free.
        self._unit_modules: List[Module] = []
        unit_param_indices: List[List[int]] = []
        for sub in module.modules():
            direct = [p for p in sub._parameters.values() if p is not None]
            if not direct:
                continue
            self._unit_modules.append(sub)
            unit_param_indices.append([index_of[id(p)] for p in direct])
        self._unit_names = [type(m).__name__ for m in self._unit_modules]

        for param in self._params:
            self.process_group.broadcast(param, src=0)
        for buffer in self.module.buffers():
            self.process_group.broadcast(buffer, src=0)

        self.layout = FlatShardLayout(
            self._params,
            self.world,
            specs=unit_bucket_specs(unit_param_indices, self._params),
        )
        # The optimizer's shard tensors ARE the authoritative parameter
        # storage between materializations (gather_after_step=False: the
        # next forward regathers lazily from the updated shards).
        self.optimizer = ShardedOptimizer(
            self._params,
            optimizer_factory,
            process_group=self.process_group,
            layout=self.layout,
            gather_after_step=False,
        )
        self.stats = ShardedStats("zero3", self.world)

        self.num_units = len(self._unit_modules)
        self._materialized = [False] * self.num_units
        self._unit_flats: List[Optional[np.ndarray]] = [None] * self.num_units
        self._unit_of: Dict[int, int] = {}
        for unit in range(self.num_units):
            for index, _, _ in self.layout.bucket_entries(unit):
                self._unit_of[index] = unit

        self._acc_to_index = {}
        self._hook_removers = []
        for index, param in enumerate(self._params):
            acc = param.accumulator()
            self._acc_to_index[id(acc)] = index
            self._hook_removers.append(acc.register_post_hook(self._grad_hook))

        self._wrap_unit_forwards()
        self._reset_iteration()
        # Shards were initialized from the broadcast values; now drop the
        # full parameters — from here on they exist only materialized.
        for unit in range(self.num_units):
            self._free_unit(unit, count=False)

    # -- unit materialization -------------------------------------------
    def _wrap_unit_forwards(self) -> None:
        for unit, sub in enumerate(self._unit_modules):
            original = sub.forward

            def wrapped(*inputs, _unit=unit, _original=original, **kwargs):
                self._materialize(_unit)
                return _original(*inputs, **kwargs)

            # Instance attribute wins over the class method in
            # Module.__call__'s ``self.forward`` lookup.
            sub.forward = wrapped

    def _materialize(self, unit: int) -> None:
        """All-gather one unit's flat from the rank shards; parameters
        become zero-copy views into the gathered buffer.  Synchronous —
        forward executes units in the same order on every rank."""
        if self._materialized[unit]:
            return
        spec = self.layout.buckets[unit]
        flat = np.empty(spec.total_elements, dtype=self.layout.bucket_dtype(unit))
        self.process_group.all_gather_flat(
            flat, shard=self.optimizer.shards[unit].data
        )
        for index, offset, size in self.layout.bucket_entries(unit):
            param = self._params[index]
            param.data = flat[offset : offset + size].reshape(param.data.shape)
        self._unit_flats[unit] = flat
        self._materialized[unit] = True
        self.stats.gather_count += 1
        self.stats.all_gather_bytes += flat.nbytes
        self.stats.observe(self.live_bytes())

    def _free_unit(self, unit: int, count: bool = True) -> None:
        for index, _, _ in self.layout.bucket_entries(unit):
            param = self._params[index]
            param.data = _stub(param.data.shape, param.data.dtype)
            param.grad = None
        self._unit_flats[unit] = None
        self._materialized[unit] = False
        if count:
            self.stats.free_count += 1

    # -- backward protocol ----------------------------------------------
    def _reset_iteration(self) -> None:
        self._grad_seen = [False] * len(self._params)
        self._pending = [
            len(self.layout.buckets[u].param_indices) for u in range(self.num_units)
        ]
        self._unit_ready = [False] * self.num_units
        # Backward reaches the last-registered unit first; launch
        # reduce-scatters in descending unit order so every rank issues
        # the same collective sequence.
        self._frontier = self.num_units - 1
        self._works: List[Optional[object]] = [None] * self.num_units
        self._grad_flats: List[Optional[np.ndarray]] = [None] * self.num_units

    def _grad_hook(self, accumulator) -> None:
        index = self._acc_to_index.get(id(accumulator))
        if index is None or self._grad_seen[index]:
            return
        self._grad_seen[index] = True
        unit = self._unit_of[index]
        self._pending[unit] -= 1
        if self._pending[unit] == 0:
            self._unit_ready[unit] = True
            self._advance_frontier()

    def _advance_frontier(self) -> None:
        while self._frontier >= 0 and self._unit_ready[self._frontier]:
            unit = self._frontier
            flat = np.empty(
                self.layout.buckets[unit].total_elements,
                dtype=self.layout.bucket_dtype(unit),
            )
            self.layout.copy_grads_into(unit, flat)
            self._grad_flats[unit] = flat
            self._works[unit] = self.process_group.reduce_scatter_flat(
                flat, async_op=True
            )
            self.stats.reduce_scatter_count += 1
            self.stats.reduce_scatter_bytes += flat.nbytes
            # The unit's backward is complete (dependency counting made
            # its gradients final), so the full parameters and gradients
            # can be dropped right now — the ZeRO-3 memory shape.
            self._free_unit(unit)
            self._frontier -= 1

    # -- module protocol -------------------------------------------------
    def forward(self, *inputs, **kwargs):
        """Run the wrapped module; units gather themselves on demand."""
        self._reset_iteration()
        return self.module(*inputs, **kwargs)

    def state_dict(self):
        """Full (unsharded) state dict; gathers and re-frees each unit."""
        with self.summon_full_params(writeback=False):
            return self.module.state_dict()

    def load_state_dict(self, state) -> None:
        """Load a full state dict into the sharded storage."""
        with self.summon_full_params(writeback=True):
            self.module.load_state_dict(state)

    @contextlib.contextmanager
    def summon_full_params(self, writeback: bool = False):
        """Materialize every unit for the duration of the block.

        With ``writeback=True`` the (possibly mutated) full parameters
        are re-sliced into the rank's shard tensors on exit; either way
        the full arrays are freed again.  Collective: every rank must
        enter (the gathers synchronize), and with writeback each rank
        keeps only its own span — cross-rank consistency of the mutation
        is the caller's responsibility (checkpoint loads satisfy it).
        """
        for unit in range(self.num_units):
            self._materialize(unit)
        try:
            yield self
        finally:
            if writeback:
                self.optimizer.refresh_shards_from_params()
            for unit in range(self.num_units):
                self._free_unit(unit)

    # -- training step ---------------------------------------------------
    def _unready_report(self) -> str:
        names = [
            self._param_names[index]
            for index, seen in enumerate(self._grad_seen)
            if not seen
        ]
        return (
            "FullyShardedDataParallel: backward produced no gradient for "
            f"{len(names)} parameter(s) {names}; sharded mode requires every "
            "parameter to participate (no unused-parameter support)"
        )

    def step(self) -> None:
        """Wait for the gradient reduce-scatters and update the shards.

        No parameter gather happens here — the next forward lazily
        re-materializes each unit from its updated shard."""
        if self._frontier >= 0:
            raise RuntimeError(self._unready_report())
        self.stats.observe(self.live_bytes())
        for unit in reversed(range(self.num_units)):
            work = self._works[unit]
            work.wait()
            span = work.result[0]
            span /= self.world
            self.optimizer.set_shard_grad(unit, span)
            self._grad_flats[unit] = None
            self._works[unit] = None
        self.optimizer.step(gather=False)
        self.stats.iterations += 1
        self.stats.observe(self.live_bytes())

    def zero_grad(self) -> None:
        """Clear shard gradients and reset the readiness state."""
        self.optimizer.zero_grad()
        self._reset_iteration()

    # -- elastic checkpoint protocol -------------------------------------
    def save_training_state(self, path: str, iteration: int = 0, extra=None) -> None:
        """Collective checkpoint save (rank 0 writes); the protocol
        :func:`repro.resilience.elastic.run_elastic` drives."""
        from repro.sharded.checkpoint import save_sharded_training_checkpoint

        save_sharded_training_checkpoint(path, self, iteration=iteration, extra=extra)

    def load_training_state(self, path: str) -> dict:
        """Local checkpoint restore; returns ``{"iteration", "extra"}``."""
        from repro.sharded.checkpoint import load_sharded_training_checkpoint

        return load_sharded_training_checkpoint(path, self)

    # -- observability ---------------------------------------------------
    def live_bytes(self) -> int:
        """Measured bytes this rank currently holds: materialized unit
        flats, parameter stubs/views, gradients, shards, optimizer
        state, and in-flight communication buffers."""
        arrays: List[Optional[np.ndarray]] = []
        for param in self._params:
            arrays.append(param.data)
            if param.grad is not None:
                arrays.append(param.grad.data)
        for buffer in self.module.buffers():
            data = getattr(buffer, "data", None)
            if isinstance(data, np.ndarray):
                arrays.append(data)
        arrays.extend(flat for flat in self._unit_flats if flat is not None)
        arrays.extend(flat for flat in self._grad_flats if flat is not None)
        for shard in self.optimizer.shards:
            arrays.append(shard.data)
            if shard.grad is not None:
                arrays.append(shard.grad.data)
        arrays.extend(optimizer_state_arrays(self.optimizer.inner))
        return storage_bytes(arrays)

    def ddp_stats(self) -> dict:
        """DDP-style stats report with the ``"sharded"`` section (peak
        bytes per rank, gather/free counters; see docs/observability.md)."""
        return {
            "world_size": self.world,
            "rank": self.rank,
            "num_buckets": self.layout.num_buckets,
            "units": list(self._unit_names),
            "bucket_sizes_bytes": [
                self.layout.buckets[b].total_elements
                * self.layout.bucket_dtype(b).itemsize
                for b in range(self.layout.num_buckets)
            ],
            "sharded": self.stats.snapshot(),
        }
