"""``ShardedOptimizer``: optimizer state partitioned by flat spans (ZeRO-1).

Each rank materializes one *shard tensor* per bucket — a contiguous copy
of its own :class:`~repro.sharded.flat.FlatShardLayout` span — and runs
an unmodified inner optimizer (:class:`~repro.optim.sgd.SGD`,
:class:`~repro.optim.adam.Adam`, ...) over those tensors only.  State
memory per rank therefore drops by ~``1/world``.  Because every
optimizer here updates elementwise, stepping a flat span with the same
gradient slice produces bit-identical parameters to the replicated
update, so ZeRO-1/2/3 parity with DDP is exact, not approximate.

Gradients arrive one of two ways:

* :meth:`ShardedOptimizer.set_grads_from_params` — ZeRO-1: the caller
  (DDP, or the baselines adapter) already holds full averaged
  gradients; each rank copies just its spans onto the shard tensors.
* :meth:`ShardedOptimizer.set_shard_grad` — ZeRO-2/3: the wrapper
  reduce-scattered gradients and hands each rank its span directly;
  full gradients never exist on any rank.

After the inner step, :meth:`ShardedOptimizer.step` all-gathers the
updated spans back into the real parameters (``gather_after_step=True``,
the ZeRO-1/2 flow) or leaves them sharded for
:class:`~repro.sharded.fsdp.FullyShardedDataParallel` to gather lazily.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.autograd.tensor import Tensor
from repro.comm.distributed import get_context
from repro.sharded.flat import FlatShardLayout


def _resolve_group(process_group):
    if process_group is not None:
        return process_group
    ctx = get_context()
    if ctx.default_group is None:
        raise RuntimeError(
            "no default process group; call init_process_group() first or "
            "pass process_group="
        )
    return ctx.default_group


class ShardedOptimizer:
    """Wraps an inner optimizer so its state covers only this rank's spans.

    Parameters
    ----------
    params:
        The model's parameters, identically ordered on every rank.
    optimizer_factory:
        Called with the rank's shard tensors; returns the inner
        optimizer (e.g. ``lambda ps: Adam(ps, lr=1e-3)``).
    process_group:
        Group to gather over; defaults to the rank's default group.
    bucket_cap_mb:
        Bucket size knob forwarded to the shared layout (None keeps
        whole device/dtype runs in one bucket).
    layout:
        An existing :class:`FlatShardLayout` to share with a wrapper
        module, so optimizer spans match its collective spans exactly.
    gather_after_step:
        All-gather updated parameter spans inside :meth:`step` (ZeRO-1
        and ZeRO-2).  ZeRO-3 passes False and regathers lazily.

    Thread-safety: per-rank object; call from the owning rank's thread.
    """

    def __init__(
        self,
        params: Sequence,
        optimizer_factory: Callable,
        process_group=None,
        bucket_cap_mb: Optional[float] = None,
        layout: Optional[FlatShardLayout] = None,
        gather_after_step: bool = True,
    ):
        self.params = list(params)
        if not self.params:
            raise ValueError("ShardedOptimizer got an empty parameter list")
        self.process_group = _resolve_group(process_group)
        self.world = int(self.process_group.size)
        self.rank = self.process_group.group_rank
        if layout is not None and layout.world != self.world:
            raise ValueError(
                f"layout was partitioned for world {layout.world} but the "
                f"process group has {self.world} ranks"
            )
        self.layout = layout or FlatShardLayout(
            self.params, self.world, bucket_cap_mb=bucket_cap_mb
        )
        self.gather_after_step = bool(gather_after_step)
        self.all_gather_count = 0

        # One contiguous shard tensor per bucket (possibly 0 elements on
        # some ranks for tiny buckets); the inner optimizer sees exactly
        # these and nothing else.
        self.shards: List[Tensor] = []
        for bucket in range(self.layout.num_buckets):
            lo, hi = self.layout.span(bucket, self.rank)
            data = np.zeros(hi - lo, dtype=self.layout.bucket_dtype(bucket))
            self.shards.append(Tensor(data, requires_grad=False))
        self.refresh_shards_from_params()
        self.inner = optimizer_factory(self.shards)

    # -- shard <-> parameter data movement ------------------------------
    def refresh_shards_from_params(self) -> None:
        """Recopy this rank's parameter spans into the shard tensors.

        Call after any out-of-band parameter mutation (constructor
        broadcast, checkpoint load) so the next step updates current
        values.
        """
        for bucket, shard in enumerate(self.shards):
            for index, p_slice, s_slice in self.layout.shard_overlaps(
                bucket, self.rank
            ):
                shard.data[s_slice] = self.params[index].data.reshape(-1)[p_slice]

    def set_grads_from_params(self) -> None:
        """ZeRO-1 gradient path: slice full per-parameter gradients.

        Copies each parameter's (already averaged) gradient span onto
        the shard tensors.  Parameters with no gradient contribute
        zeros — with ``weight_decay > 0`` that differs from the inner
        optimizer's skip-if-None behavior, matching what a flattened
        gradient buffer implies.
        """
        for bucket, shard in enumerate(self.shards):
            grad = np.zeros_like(shard.data)
            for index, p_slice, s_slice in self.layout.shard_overlaps(
                bucket, self.rank
            ):
                param_grad = self.params[index].grad
                if param_grad is not None:
                    grad[s_slice] = param_grad.data.reshape(-1)[p_slice]
            shard.grad = Tensor(grad)

    def set_shard_grad(self, bucket: int, grad: np.ndarray) -> None:
        """ZeRO-2/3 gradient path: install a reduce-scattered span.

        ``grad`` must be exactly this rank's span of ``bucket`` (what
        ``reduce_scatter_flat`` returned), already averaged.
        """
        shard = self.shards[bucket]
        flat = np.asarray(grad).reshape(-1)
        if flat.size != shard.data.size:
            raise ValueError(
                f"bucket {bucket} shard grad has {flat.size} elements, "
                f"expected {shard.data.size}"
            )
        shard.grad = Tensor(flat.astype(shard.data.dtype, copy=False))

    def gather_params(self) -> None:
        """All-gather every bucket's updated spans into the parameters.

        Launches one async ``all_gather_flat`` per bucket so transfers
        pipeline, then waits in order and scatters each flat back into
        its parameters.
        """
        flats: List[np.ndarray] = []
        works: List = []
        for bucket, shard in enumerate(self.shards):
            flat = np.empty(
                self.layout.buckets[bucket].total_elements,
                dtype=self.layout.bucket_dtype(bucket),
            )
            work = self.process_group.all_gather_flat(
                flat, shard=shard.data, async_op=True
            )
            flats.append(flat)
            works.append(work)
            self.all_gather_count += 1
        for bucket, work in enumerate(works):
            work.wait()
            self.layout.scatter_into_params(bucket, flats[bucket])

    # -- optimizer protocol ---------------------------------------------
    def step(self, gather: Optional[bool] = None) -> None:
        """Run the inner optimizer on the shards, then (by default for
        ZeRO-1/2) all-gather the updated parameter spans."""
        self.inner.step()
        do_gather = self.gather_after_step if gather is None else gather
        if do_gather:
            self.gather_params()

    def zero_grad(self) -> None:
        """Clear both shard gradients and the real parameters' gradients."""
        self.inner.zero_grad()
        for param in self.params:
            param.grad = None

    def shard_numel(self) -> int:
        """Parameter elements whose optimizer state lives on this rank."""
        return self.layout.shard_numel(self.rank)

    def state_bytes(self) -> int:
        """Measured bytes of ndarray state held by the inner optimizer."""
        from repro.sharded.memory import optimizer_state_arrays, storage_bytes

        return storage_bytes(optimizer_state_arrays(self.inner))

    # -- consolidated (positional, full-model) state --------------------
    def consolidated_state_dict(self) -> Dict:
        """Assemble a full, positionally-keyed optimizer state dict.

        **Collective**: every rank must call this; array state is
        all-gathered per bucket (in bucket order, keys sorted) and
        re-sliced per parameter, so the result matches what the inner
        optimizer's :meth:`~repro.optim.optimizer.Optimizer.state_dict`
        would contain had training been replicated.  Scalar state (e.g.
        Adam's ``step``) is identical on every rank and taken locally.
        Every rank returns the full dict.
        """
        per_param: Dict[int, Dict] = {}
        for bucket, shard in enumerate(self.shards):
            state = self.inner.state.get(id(shard))
            if not state:
                continue
            for key in sorted(state):
                value = state[key]
                if isinstance(value, np.ndarray) and value.ndim > 0:
                    flat = np.empty(
                        self.layout.buckets[bucket].total_elements,
                        dtype=value.dtype,
                    )
                    self.process_group.all_gather_flat(flat, shard=value)
                    self.all_gather_count += 1
                    for index, offset, size in self.layout.bucket_entries(bucket):
                        per_param.setdefault(index, {})[key] = (
                            flat[offset : offset + size]
                            .reshape(self.params[index].data.shape)
                            .copy()
                        )
                else:
                    for index, _, _ in self.layout.bucket_entries(bucket):
                        per_param.setdefault(index, {})[key] = value
        return {"state": per_param, "num_params": len(self.params)}

    def load_consolidated_state_dict(self, state_dict: Dict) -> None:
        """Install this rank's spans of a consolidated state dict.

        Purely local (every rank holds the full dict after loading a
        checkpoint): :func:`~repro.sharded.checkpoint.reshard_state_dict`
        reassembles array state into each bucket's flat order — against
        *this* layout and world, whatever world wrote the dict — and the
        rank's spans are copied onto the shard tensors' state.
        """
        from repro.sharded.checkpoint import reshard_state_dict

        resharded = reshard_state_dict(state_dict, self.layout, self.rank)
        self.inner.state.clear()
        for shard, shard_state in zip(self.shards, resharded):
            if shard_state:
                self.inner.state[id(shard)] = shard_state

    def __repr__(self) -> str:
        return (
            f"ShardedOptimizer(world={self.world}, rank={self.rank}, "
            f"buckets={self.layout.num_buckets}, "
            f"shard_numel={self.shard_numel()})"
        )
