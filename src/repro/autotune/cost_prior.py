"""Analytic prior over the autotune search space.

Measuring a candidate config costs a full measurement window (several
training iterations), so the sweep must not measure the whole knob
cross-product.  This module scores every candidate with the alpha-beta
collective cost models (``repro.simnet.cost_model``, per the DAG model
of synchronous SGD in arXiv:1805.03812) and keeps only the most
promising few — the *prior* the measured sweep then refines.

The estimate composes four effects the knobs control:

* **bucketing** — fewer, larger buckets amortize the per-collective
  launch cost (alpha); smaller buckets launch earlier and overlap more
  of the backward pass (the paper's Fig. 7 tradeoff);
* **chunk pipelining** — each bucket's collective is pipelined at
  ``chunk_bytes`` granularity: tiny chunks drown in per-hop latency,
  huge chunks lose the intra-collective overlap (the U-curve in
  docs/performance.md);
* **streams** — ``num_streams`` buckets reduce concurrently, divided by
  the link-capacity :meth:`~repro.simnet.cost_model.CollectiveCostModel.stream_penalty`;
* **algorithm** — ring is bandwidth-optimal, halving-doubling is
  latency-optimal, tree pays the full payload per round.

The absolute numbers do not need to match the thread transport — only
the *ordering* matters, and ordering is what the rollback guard
protects when the prior is wrong.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.simnet.cost_model import CollectiveCostModel, cost_model_for
from repro.utils.units import MB

from repro.autotune.knobs import TunedConfig

#: Wire-volume multipliers per comm hook, relative to fp32 allreduce.
#: fp16 halves bytes; top-k ships ~2x its density (indices + values);
#: PowerSGD's low-rank factors are a few percent of the dense payload.
HOOK_VOLUME_FACTOR = {
    None: 1.0,
    "fp16": 0.5,
    "topk": 0.08,
    "powersgd": 0.06,
}

#: Fixed per-bucket cost of running a compression hook (pack/unpack,
#: encode/decode) — keeps the prior from claiming compression is free.
HOOK_OVERHEAD_S = {
    None: 0.0,
    "fp16": 30e-6,
    "topk": 120e-6,
    "powersgd": 200e-6,
}


def _bucket_sizes(model_bytes: float, bucket_cap_mb: float) -> List[float]:
    """Bucket byte sizes for a model of ``model_bytes`` gradients."""
    cap = max(1.0, bucket_cap_mb) * MB
    if model_bytes <= 0:
        return []
    full, rest = divmod(model_bytes, cap)
    sizes = [cap] * int(full)
    if rest > 0:
        sizes.append(rest)
    return sizes or [model_bytes]


def _algorithm_time(
    model: CollectiveCostModel, algorithm: str, nbytes: float, world: int
) -> float:
    """One collective of ``nbytes`` under ``algorithm``'s alpha-beta shape."""
    if world <= 1 or nbytes <= 0:
        return model.launch_overhead
    ring = model.allreduce_time(nbytes, world)
    if algorithm == "ring":
        return ring
    hop = model.hop_latency(world)
    bandwidth = model.bottleneck_bandwidth(world)
    rounds = max(1, (world - 1).bit_length())  # ceil(log2(world))
    if algorithm == "halving_doubling":
        # Same 2(p-1)/p bytes through the bottleneck, but only 2*log2(p)
        # latency terms — wins when alpha dominates.
        transfer = (2.0 * (world - 1) / world * nbytes + model.ramp_bytes) / bandwidth
        return model.launch_overhead + 2.0 * rounds * hop + max(
            transfer, model.min_message_time
        )
    if algorithm == "tree":
        # Reduce up + broadcast down: log2(p) rounds each carrying the
        # full payload — latency-friendly, bandwidth-suboptimal.
        per_round = max((nbytes + model.ramp_bytes) / bandwidth, model.min_message_time)
        return model.launch_overhead + 2.0 * rounds * (hop + per_round)
    if algorithm == "hierarchical":
        return model.hierarchical_allreduce_time(nbytes, world)
    return ring


def _chunk_penalty(
    model: CollectiveCostModel, nbytes: float, chunk_bytes: int, world: int
) -> float:
    """Extra seconds from pipelining ``nbytes`` at ``chunk_bytes``.

    Each extra chunk pays one hop latency per ring step (alpha side of
    the U-curve); the first chunk's transfer is un-overlapped fill
    (bandwidth side — grows with chunk size).
    """
    if world <= 1 or nbytes <= 0:
        return 0.0
    chunks = max(1, math.ceil(nbytes / max(1, chunk_bytes)))
    hops = 2.0 * (world - 1)
    alpha_side = (chunks - 1) * hops * model.hop_latency(world) * 0.5
    fill = min(nbytes, chunk_bytes) / model.bottleneck_bandwidth(world)
    return alpha_side + fill


def estimate_iteration_time(
    config: TunedConfig,
    model_bytes: float,
    world_size: int,
    backward_compute_s: float = 0.0,
    cost_model: Optional[CollectiveCostModel] = None,
    backend: str = "gloo",
) -> float:
    """Predicted per-iteration time (seconds) under ``config``.

    ``backward_compute_s`` is the measured backward-pass compute time;
    communication launched while backward is still producing gradients
    is hidden behind it (the paper's §3.2.3 overlap), so the estimate
    returns ``backward + exposed_comm``.
    """
    model = cost_model or cost_model_for(backend)
    volume = HOOK_VOLUME_FACTOR.get(config.comm_hook, 1.0)
    per_bucket_overhead = HOOK_OVERHEAD_S.get(config.comm_hook, 0.0)
    serial_comm = 0.0
    sizes = _bucket_sizes(model_bytes, config.bucket_cap_mb)
    for nbytes in sizes:
        wire = nbytes * volume
        serial_comm += (
            _algorithm_time(model, config.algorithm, wire, world_size)
            + _chunk_penalty(model, wire, config.chunk_bytes, world_size)
            + per_bucket_overhead
        )
    # Streams let up to num_streams buckets reduce concurrently, but
    # concurrent streams share the link (stream_penalty) and cannot
    # help past the bucket count.
    concurrency = min(config.num_streams, max(1, len(sizes)))
    penalty = model.stream_penalty(config.num_streams, world_size)
    comm = serial_comm / concurrency * penalty
    # Buckets other than the last become ready while backward still
    # runs; that fraction of communication can hide behind compute.
    if len(sizes) > 1 and backward_compute_s > 0:
        hideable = comm * (len(sizes) - 1) / len(sizes)
        hidden = min(hideable, backward_compute_s)
        exposed = comm - hidden
    else:
        exposed = comm
    return backward_compute_s + exposed


def prune_candidates(
    candidates: Sequence[TunedConfig],
    model_bytes: float,
    world_size: int,
    backward_compute_s: float = 0.0,
    keep: int = 8,
    cost_model: Optional[CollectiveCostModel] = None,
    backend: str = "gloo",
) -> List[TunedConfig]:
    """The ``keep`` most promising candidates by predicted time.

    Deterministic: ties break on the candidates' original order, so
    every rank prunes to the identical shortlist.
    """
    scored = [
        (
            estimate_iteration_time(
                config,
                model_bytes,
                world_size,
                backward_compute_s,
                cost_model=cost_model,
                backend=backend,
            ),
            index,
            config,
        )
        for index, config in enumerate(candidates)
    ]
    scored.sort(key=lambda item: (item[0], item[1]))
    return [config for _, _, config in scored[: max(1, keep)]]
