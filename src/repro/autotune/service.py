"""The online autotuner: live retuning of the comm hot path.

:class:`Autotuner` closes the loop between the telemetry the runtime
already produces (per-bucket AllReduce latency, compute/comm overlap
ratio, backward-compute time, health events) and the knobs that shape
the hot path (``bucket_cap_mb``, ``chunk_bytes``, ``num_streams``,
collective algorithm, optionally the compression hook) — the adaptive
tuning the paper proposes as future work (§7), in the style of Bagua's
hyperparameter service.

Two halves, split by *who is allowed to do what*:

* A **background sampler thread** continuously snapshots the
  observatory/health signals between iteration boundaries (overlap
  ratio, per-bucket latencies, straggler diagnoses) into a rolling
  window.  It never touches knobs and never issues collectives — it
  only observes.
* The **training thread** calls :meth:`on_iteration` from
  ``DistributedDataParallel.forward`` — a deterministic point every
  rank reaches in lockstep.  Every ``window_iters`` synchronized
  iterations it closes a measurement window: the ranks agree on the
  window's iteration time with a single 1-element MAX-AllReduce (the
  slowest rank defines the truth, and every rank now holds the same
  number), feeds it to the seeded deterministic
  :class:`~repro.autotune.policy.SearchPolicy`, and applies whatever
  config the policy answers with.  Identical inputs + identical policy
  ⇒ identical decisions on every rank, with no extra broadcast.

Config application happens only at this **safe iteration boundary**
(reducer finalized, every ``Work`` waited, before the next forward):
bucket relayouts go through the no-op-aware ``rebuild_buckets``, stream
pool resizes through ``ProcessGroup.set_num_streams``, and stateful
comm hooks are reset on relayout so error-feedback residuals never
apply to a mismatched layout.  Every applied change is annotated on the
merged trace (an ``autotune`` instant span + a health event), so retune
decisions are visible on the timeline next to their effect.
"""

from __future__ import annotations

import statistics
import threading
import time
import weakref
from typing import Dict, List, Optional

import numpy as np

from repro.comm import algorithms
from repro.comm.process_group import ReduceOp
from repro.core.comm_hooks import make_hook, reset_hook
from repro.telemetry.health import accounting as _health
from repro.telemetry.health.events import record_event as record_health_event
from repro.telemetry.spans import TRACER
from repro.utils.logging import logger

from repro.autotune.knobs import TunedConfig, clamp_config, knob_table, validate_config
from repro.autotune.policy import SearchPolicy


class Autotuner:
    """Per-job online tuner attached to one ``DistributedDataParallel``.

    Constructed by ``DistributedDataParallel(..., autotune=True)``;
    options arrive via the ``autotune_options`` dict.  All knob
    movement stays inside the safe ranges declared in
    ``repro.autotune.knobs`` (validated on every application).
    """

    def __init__(
        self,
        ddp,
        window_iters: int = 5,
        warmup_windows: int = 2,
        sweep_keep: int = 6,
        tune_comm_hook: bool = False,
        tune_algorithm: bool = True,
        seed: int = 0,
        rollback_margin: float = 0.10,
        improve_margin: float = 0.02,
        drift_threshold: float = 1.3,
        drift_patience: int = 3,
        sample_interval_s: float = 0.02,
        background_sampler: bool = True,
        cost_backend: Optional[str] = None,
    ):
        if window_iters < 1:
            raise ValueError("window_iters must be >= 1")
        # Weakref: the tuner must not keep a dropped DDP instance (and
        # its buffers) alive from the sampler thread.
        self._ddp = weakref.ref(ddp)
        self.window_iters = window_iters
        self.tune_comm_hook = tune_comm_hook

        group = ddp.process_group
        model_bytes = sum(p.numel() * p.element_size() for p in ddp._params)
        backend = cost_backend or group.backend
        if backend not in ("nccl", "gloo"):
            backend = "gloo"  # closest personality for the thread transport
        self._hook_name: Optional[str] = (
            None if ddp.reducer.comm_hook is None else "user"
        )
        base = clamp_config(self._live_config())
        self.policy = SearchPolicy(
            base,
            model_bytes=model_bytes,
            world_size=group.size,
            backend=backend,
            warmup_windows=warmup_windows,
            sweep_keep=sweep_keep,
            improve_margin=improve_margin,
            rollback_margin=rollback_margin,
            drift_threshold=drift_threshold,
            drift_patience=drift_patience,
            tune_comm_hook=tune_comm_hook,
            tune_algorithm=tune_algorithm,
            seed=seed,
        )

        self.applied_changes = 0
        self.windows_closed = 0
        self._last_seen_iteration: Optional[int] = None
        self._window_totals: List[float] = []
        self._window_backward: List[float] = []
        self._window_overlap: List[float] = []
        self._applied_log: List[dict] = []

        self._sampled_signals: Dict[str, List[float]] = {}
        self._sample_lock = threading.Lock()
        self._stop = threading.Event()
        self._sampler: Optional[threading.Thread] = None
        if background_sampler:
            self._sampler = threading.Thread(
                target=self._sample_loop,
                args=(sample_interval_s,),
                name=f"autotune-rank{group.global_rank}",
                daemon=True,
            )
            self._sampler.start()

    # ------------------------------------------------------------------
    # background half: signal sampling only, never knob movement
    # ------------------------------------------------------------------
    def _sample_loop(self, interval_s: float) -> None:
        while not self._stop.wait(interval_s):
            ddp = self._ddp()
            if ddp is None:
                return
            try:
                detail = ddp.reducer.recorder.last_detail
            except Exception:
                continue
            if not detail:
                continue
            overlap = detail.get("comm_compute_overlap_ratio")
            latencies = [
                entry.get("allreduce_latency_s", 0.0)
                for entry in detail.get("buckets", ())
            ]
            with self._sample_lock:
                if overlap is not None:
                    self._sampled_signals.setdefault("overlap_ratio", []).append(
                        float(overlap)
                    )
                if latencies:
                    self._sampled_signals.setdefault(
                        "max_bucket_latency_s", []
                    ).append(max(latencies))

    def _drain_sampled_signals(self) -> dict:
        with self._sample_lock:
            drained = {
                key: statistics.median(values)
                for key, values in self._sampled_signals.items()
                if values
            }
            self._sampled_signals.clear()
        return drained

    # ------------------------------------------------------------------
    # training-thread half: windows, agreement, application
    # ------------------------------------------------------------------
    def on_iteration(self) -> None:
        """Called by DDP at the start of each synchronized forward.

        Cheap in the steady state (a couple of dict reads); every
        ``window_iters`` new finalized iterations it closes a window,
        which costs one 1-element MAX-AllReduce plus whatever config
        changes the policy decides on.  **Collective at window
        boundaries** — safe because every rank counts the same
        synchronized iterations and therefore closes the same windows.
        """
        ddp = self._ddp()
        if ddp is None:
            return
        detail = ddp.reducer.recorder.last_detail
        if not detail:
            return
        iteration = detail.get("iteration")
        if iteration == self._last_seen_iteration:
            return  # no newly finalized iteration since the last call
        self._last_seen_iteration = iteration
        phases = detail.get("phases", {})
        total = float(phases.get("total", 0.0))
        if total <= 0.0:
            return
        self._window_totals.append(total)
        self._window_backward.append(float(phases.get("backward_compute", 0.0)))
        self._window_overlap.append(
            float(detail.get("comm_compute_overlap_ratio", 0.0))
        )
        if len(self._window_totals) < self.window_iters:
            return
        self._close_window(ddp)

    def _close_window(self, ddp) -> None:
        local = statistics.median(self._window_totals)
        agreed = self._agree(ddp.process_group, local)
        signals = self._drain_sampled_signals()
        signals["backward_compute_s"] = statistics.median(self._window_backward)
        signals.setdefault(
            "overlap_ratio", statistics.median(self._window_overlap)
        )
        self._window_totals.clear()
        self._window_backward.clear()
        self._window_overlap.clear()
        self.windows_closed += 1
        next_config = self.policy.observe(agreed, signals)
        live = self._live_config()
        if next_config != live:
            self._apply(ddp, live, next_config)

    @staticmethod
    def _agree(group, local_s: float) -> float:
        """Cross-rank agreement on the window measurement.

        MAX over ranks: iteration time is gated by the slowest rank, and
        a MAX-AllReduce leaves every rank holding the identical number —
        the whole coordination protocol in one tiny collective.
        """
        value = np.array([local_s], dtype=np.float64)
        group.allreduce(value, ReduceOp.MAX)
        return float(value[0])

    def _live_config(self) -> TunedConfig:
        ddp = self._ddp()
        group = ddp.process_group
        chunk = group.chunk_bytes
        return TunedConfig(
            bucket_cap_mb=float(ddp.bucket_cap_mb),
            chunk_bytes=int(chunk if chunk is not None else algorithms.DEFAULT_CHUNK_BYTES),
            num_streams=group.num_streams,
            algorithm=group.algorithm,
            comm_hook=self._hook_name,
        )

    def _apply(self, ddp, live: TunedConfig, config: TunedConfig) -> None:
        """Install ``config``, field by field, at the safe boundary."""
        validate_config(config)
        group = ddp.process_group
        changes = []
        relayout = False
        if config.bucket_cap_mb != live.bucket_cap_mb:
            ddp.set_bucket_cap_mb(config.bucket_cap_mb)
            changes.append("bucket_cap_mb")
            relayout = True
        if config.chunk_bytes != live.chunk_bytes:
            group.set_chunk_bytes(int(config.chunk_bytes))
            changes.append("chunk_bytes")
        if config.num_streams != live.num_streams:
            group.set_num_streams(int(config.num_streams))
            changes.append("num_streams")
        if config.algorithm != live.algorithm:
            group.set_algorithm(config.algorithm)
            changes.append("algorithm")
        if self.tune_comm_hook and config.comm_hook != live.comm_hook:
            hook = make_hook(config.comm_hook) if config.comm_hook else None
            ddp.register_comm_hook(hook)
            self._hook_name = config.comm_hook
            changes.append("comm_hook")
        elif relayout:
            # Bucket buffers were reallocated under a stateful hook:
            # drop residuals/factors keyed to the old layout.
            reset_hook(ddp.reducer.comm_hook)
        if not changes:
            return
        self.applied_changes += 1
        self._applied_log.append(
            {
                "window": self.policy.windows,
                "state": self.policy.state,
                "changes": changes,
                "config": config.as_dict(),
            }
        )
        self._annotate(group, config, changes)
        logger.info(
            "autotune: applied %s -> %s (state %s)",
            ",".join(changes),
            config.describe(),
            self.policy.state,
        )

    def _annotate(self, group, config: TunedConfig, changes: list) -> None:
        """Make the retune visible on the merged timeline."""
        rank = group.global_rank
        now = time.perf_counter()
        args = {
            "changes": changes,
            "state": self.policy.state,
            "config": config.describe(),
        }
        TRACER.record(
            "autotune.retune", now, now, cat="autotune", stream="autotune",
            rank=rank, args=args,
        )
        if _health.collecting_enabled():
            record_health_event(rank, "autotune_retune", t=now, extra=args)

    # ------------------------------------------------------------------
    def report(self) -> dict:
        """Full tuner state: the ``ddp_stats()["autotune"]`` payload and
        the JSON body behind ``tools/autotunectl.py``."""
        payload = self.policy.report()
        payload.update(
            {
                "enabled": True,
                "window_iters": self.window_iters,
                "windows_closed": self.windows_closed,
                "applied_changes": self.applied_changes,
                "applied_log": list(self._applied_log),
                "history": list(self.policy.history),
                "knobs": knob_table(),
            }
        )
        return payload

    def close(self) -> None:
        """Stop the background sampler (idempotent)."""
        self._stop.set()
        if self._sampler is not None:
            self._sampler.join(timeout=2.0)
            self._sampler = None
