"""The tunable-knob registry: every knob the autotuner may move.

The paper hand-picks ``bucket_cap_mb=25`` and observes (§6.2.1, §7)
that the best bucket size and overlap configuration vary by model,
network, and world size.  This module is the single source of truth for
*which* knobs exist, their defaults, and the **safe ranges** the
autotuner is allowed to explore — the contract behind two guarantees:

* the tuner never applies a value outside a knob's safe range
  (:meth:`Knob.clamp` is applied on every proposal, and
  :func:`validate_config` re-checks before a config is installed);
* every knob in this registry is documented in ``docs/autotuning.md``
  — enforced by ``tools/check_docs.py`` in CI, so a knob cannot be
  added here without landing in the docs the same PR.

The registry is deliberately declarative: the search policy iterates
``KNOBS`` rather than hard-coding dimensions, so adding a knob here
automatically makes it tunable (and automatically fails the docs gate
until documented).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.utils.units import MB

#: Comm-hook candidates the tuner may select when hook tuning is opted
#: in (``tune_comm_hook=True``).  ``None`` is the uncompressed native
#: path; names index :data:`repro.core.comm_hooks.HOOK_FACTORIES`.
HOOK_CHOICES: Tuple[Optional[str], ...] = (None, "fp16", "topk", "powersgd")

#: AllReduce algorithms the tuner may select.  ``naive`` is excluded on
#: purpose — it exists as a correctness oracle, not a choice
#: (docs/performance.md), and ``hierarchical`` only pays off on
#: multi-host topologies the thread transport does not model.
ALGORITHM_CHOICES: Tuple[str, ...] = ("ring", "halving_doubling", "tree")


@dataclass(frozen=True)
class Knob:
    """One autotunable dimension.

    ``choices`` enumerates categorical knobs; numeric knobs use
    ``low``/``high`` (inclusive) plus a ``grid`` of sweep candidates.
    ``signal`` names the telemetry signal that drives retunes of this
    knob — the row surfaced in the docs taxonomy table.
    """

    name: str
    kind: str  # "numeric" | "categorical"
    default: object
    signal: str
    env: Optional[str] = None
    low: Optional[float] = None
    high: Optional[float] = None
    grid: Tuple = ()
    choices: Tuple = ()

    def clamp(self, value):
        """Pull ``value`` back inside the safe range (numeric knobs) or
        onto a legal choice (categorical knobs fall back to default)."""
        if self.kind == "categorical":
            return value if value in self.choices else self.default
        if self.low is not None and value < self.low:
            return type(value)(self.low) if not isinstance(self.low, float) else self.low
        if self.high is not None and value > self.high:
            return type(value)(self.high) if not isinstance(self.high, float) else self.high
        return value

    def in_range(self, value) -> bool:
        """Whether ``value`` lies inside this knob's safe range."""
        if self.kind == "categorical":
            return value in self.choices
        if self.low is not None and value < self.low:
            return False
        if self.high is not None and value > self.high:
            return False
        return True


#: The knob registry, keyed by :class:`TunedConfig` field name.
KNOBS: Dict[str, Knob] = {
    "bucket_cap_mb": Knob(
        name="bucket_cap_mb",
        kind="numeric",
        default=25.0,
        low=1.0,
        high=200.0,
        grid=(1.0, 5.0, 10.0, 25.0, 50.0, 100.0),
        signal="per-bucket AllReduce latency + overlap ratio",
    ),
    "chunk_bytes": Knob(
        name="chunk_bytes",
        kind="numeric",
        default=1 * MB,
        env="REPRO_CHUNK_BYTES",
        low=64 * 1024,
        high=8 * MB,
        grid=(64 * 1024, 256 * 1024, 1 * MB, 4 * MB),
        signal="chunk-pipeline utilization",
    ),
    "num_streams": Knob(
        name="num_streams",
        kind="numeric",
        default=1,
        low=1,
        high=4,
        grid=(1, 2, 4),
        signal="overlap ratio + ready→launch delay",
    ),
    "algorithm": Knob(
        name="algorithm",
        kind="categorical",
        default="ring",
        choices=ALGORITHM_CHOICES,
        signal="achieved bus bandwidth vs cost-model frontier",
    ),
    "comm_hook": Knob(
        name="comm_hook",
        kind="categorical",
        default=None,
        choices=HOOK_CHOICES,
        signal="exposed comm time (opt-in: changes numerics)",
    ),
}


@dataclass(frozen=True)
class TunedConfig:
    """One point in the search space — hashable, comparable, loggable."""

    bucket_cap_mb: float = 25.0
    chunk_bytes: int = 1 * MB
    num_streams: int = 1
    algorithm: str = "ring"
    comm_hook: Optional[str] = None

    def replace(self, **changes) -> "TunedConfig":
        """A copy with ``changes`` applied (dataclasses.replace)."""
        return replace(self, **changes)

    def as_dict(self) -> dict:
        """Plain-dict form for reports and JSON artifacts."""
        return {
            "bucket_cap_mb": self.bucket_cap_mb,
            "chunk_bytes": self.chunk_bytes,
            "num_streams": self.num_streams,
            "algorithm": self.algorithm,
            "comm_hook": self.comm_hook,
        }

    def describe(self) -> str:
        """Compact one-line form for logs and trace annotations."""
        hook = self.comm_hook or "none"
        return (
            f"bucket={self.bucket_cap_mb:g}MB chunk={self.chunk_bytes // 1024}KB "
            f"streams={self.num_streams} alg={self.algorithm} hook={hook}"
        )


def default_config() -> TunedConfig:
    """The registry defaults as a :class:`TunedConfig`."""
    return TunedConfig(
        **{name: knob.default for name, knob in KNOBS.items()}
    )


def clamp_config(config: TunedConfig) -> TunedConfig:
    """Every knob pulled back inside its safe range."""
    return TunedConfig(
        **{name: knob.clamp(getattr(config, name)) for name, knob in KNOBS.items()}
    )


def validate_config(config: TunedConfig) -> None:
    """Raise ``ValueError`` naming every knob outside its safe range.

    The tuner calls this immediately before *applying* a config — the
    hard backstop behind the CI assertion that a tuned run never leaves
    the documented ranges.
    """
    problems = [
        f"{name}={getattr(config, name)!r} outside safe range "
        + (
            f"[{knob.low:g}, {knob.high:g}]"
            if knob.kind == "numeric"
            else f"{knob.choices!r}"
        )
        for name, knob in KNOBS.items()
        if not knob.in_range(getattr(config, name))
    ]
    if problems:
        raise ValueError("autotune config outside safe ranges: " + "; ".join(problems))


def candidate_grid(
    base: TunedConfig,
    tune_comm_hook: bool = False,
    tune_algorithm: bool = True,
) -> List[TunedConfig]:
    """The full sweep grid: the cross product of every knob's grid.

    The cost-model prior prunes this before anything is measured
    (:func:`repro.autotune.cost_prior.prune_candidates`); the grid
    itself is bounded (6 caps x 4 chunks x 3 streams x <=3 algorithms
    x <=4 hooks) so even the unpruned product stays enumerable.
    """
    configs = [base]
    for name, knob in KNOBS.items():
        if name == "comm_hook" and not tune_comm_hook:
            continue
        if name == "algorithm" and not tune_algorithm:
            continue
        values = knob.choices if knob.kind == "categorical" else knob.grid
        configs = [
            config.replace(**{name: value})
            for config in configs
            for value in values
        ]
    # De-duplicate while keeping deterministic order.
    seen = set()
    unique: List[TunedConfig] = []
    for config in configs:
        if config not in seen:
            seen.add(config)
            unique.append(config)
    return unique


def neighbors(config: TunedConfig, tune_comm_hook: bool = False) -> List[TunedConfig]:
    """Hill-climb moves: one knob stepped one grid/choice position.

    Numeric knobs move to the adjacent grid value on each side of the
    current value; categorical knobs move to each alternative choice.
    Every neighbor is clamped, so the climb cannot leave safe ranges.
    """
    moves: List[TunedConfig] = []
    for name, knob in KNOBS.items():
        if name == "comm_hook" and not tune_comm_hook:
            continue
        current = getattr(config, name)
        if knob.kind == "categorical":
            moves.extend(
                config.replace(**{name: choice})
                for choice in knob.choices
                if choice != current
            )
            continue
        grid = sorted(set(knob.grid) | {current})
        position = grid.index(current)
        for step in (-1, 1):
            neighbor = position + step
            if 0 <= neighbor < len(grid):
                moves.append(config.replace(**{name: grid[neighbor]}))
    return [clamp_config(move) for move in moves]


def knob_table() -> List[dict]:
    """Registry rows for reports and the docs taxonomy table."""
    rows = []
    for name, knob in KNOBS.items():
        if knob.kind == "categorical":
            safe = ", ".join(str(c) for c in knob.choices)
        else:
            safe = f"[{knob.low:g}, {knob.high:g}]"
        rows.append(
            {
                "knob": name,
                "kind": knob.kind,
                "env": knob.env,
                "default": knob.default,
                "safe_range": safe,
                "signal": knob.signal,
            }
        )
    return rows
