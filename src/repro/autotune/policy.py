"""The autotune search policy: a deterministic, seeded state machine.

The policy is *pure decision logic* — it never touches the training
loop.  Each measurement window, the service feeds it one number (the
cross-rank-agreed iteration time for the currently active config, see
``repro.autotune.service``) plus optional telemetry signals, and the
policy answers with the config to run next.  Because the inputs are
identical on every rank (the service MAX-allreduces the measurement)
and the policy is seeded and deterministic, every rank walks the exact
same state sequence without any extra coordination traffic.

States::

    WARMUP ──► SWEEP ──► HILL_CLIMB ──► CONVERGED
                 ▲                          │
                 └──── drift re-tune ◄──────┘

* **WARMUP** — measure the starting config for ``warmup_windows``
  windows to establish the baseline and the backward-compute estimate
  that feeds the cost prior.
* **SWEEP** — score the full knob grid with the analytic prior
  (``repro.autotune.cost_prior``), keep the best ``sweep_keep``
  candidates, and measure each for one window.
* **HILL_CLIMB** — from the sweep winner, measure one-knob-step
  neighbors (seeded shuffle) and move whenever a neighbor improves the
  best time by more than ``improve_margin``; moving regenerates the
  neighbor frontier.
* **CONVERGED** — freeze on the best config.  If the frozen config's
  measured time later drifts above ``drift_threshold`` x its converged
  time for ``drift_patience`` consecutive windows (topology changed,
  a link went slow), the policy re-enters SWEEP with a re-pruned grid.

**Rollback guard**: every experimental step is judged against the best
measured time.  A step that regresses beyond ``rollback_margin`` is
*reverted* — the next proposal is computed from the best config, never
from the regressing one — and counted in ``rollbacks``.  The active
config can therefore only ever be the best-known config or a
single-window experiment away from it.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.autotune import cost_prior
from repro.autotune.knobs import (
    TunedConfig,
    candidate_grid,
    clamp_config,
    neighbors,
    validate_config,
)

WARMUP = "warmup"
SWEEP = "sweep"
HILL_CLIMB = "hill_climb"
CONVERGED = "converged"


class SearchPolicy:
    """Warmup → sweep → hill-climb → converge/freeze, with rollback."""

    def __init__(
        self,
        base_config: TunedConfig,
        model_bytes: float,
        world_size: int,
        backend: str = "gloo",
        warmup_windows: int = 2,
        sweep_keep: int = 6,
        improve_margin: float = 0.02,
        rollback_margin: float = 0.10,
        drift_threshold: float = 1.3,
        drift_patience: int = 3,
        tune_comm_hook: bool = False,
        tune_algorithm: bool = True,
        seed: int = 0,
        cost_model=None,
    ):
        self.base_config = clamp_config(base_config)
        self.model_bytes = float(model_bytes)
        self.world_size = int(world_size)
        self.backend = backend
        self.warmup_windows = max(1, warmup_windows)
        self.sweep_keep = max(1, sweep_keep)
        self.improve_margin = improve_margin
        self.rollback_margin = rollback_margin
        self.drift_threshold = drift_threshold
        self.drift_patience = max(1, drift_patience)
        self.tune_comm_hook = tune_comm_hook
        self.tune_algorithm = tune_algorithm
        self.seed = seed
        self._rng = random.Random(seed)
        self._cost_model = cost_model

        self.state = WARMUP
        self.active_config = self.base_config
        self.best_config = self.base_config
        self.best_time = float("inf")
        self.windows = 0
        self.rollbacks = 0
        self.retunes = 0
        self.history: List[dict] = []
        self.measured: Dict[TunedConfig, float] = {}

        self._warmup_times: List[float] = []
        self._backward_estimate = 0.0
        self._queue: List[TunedConfig] = []
        self._frontier_origin: Optional[TunedConfig] = None
        self._frontier_best = float("inf")
        self._frozen_time = float("inf")
        self._drift_count = 0

    # ------------------------------------------------------------------
    def observe(self, measured_s: float, signals: Optional[dict] = None) -> TunedConfig:
        """Record one window's measurement; return the next config.

        ``measured_s`` is the agreed per-iteration time for
        ``self.active_config`` over the window just finished.  The
        returned config is validated against the knob safe ranges
        before being handed back — the policy cannot emit an out-of-
        range config.
        """
        signals = signals or {}
        backward = signals.get("backward_compute_s")
        if backward:
            # Exponential smoothing keeps one noisy window from
            # skewing the prior.
            self._backward_estimate = (
                0.5 * self._backward_estimate + 0.5 * backward
                if self._backward_estimate
                else backward
            )
        self.windows += 1
        previous = self.active_config
        self._record_measurement(previous, measured_s)
        action = self._advance(previous, measured_s)
        self._log(previous, measured_s, action, signals)
        validate_config(self.active_config)
        return self.active_config

    # ------------------------------------------------------------------
    def _record_measurement(self, config: TunedConfig, measured_s: float) -> None:
        seen = self.measured.get(config)
        # Keep the best observation per config: transient stragglers
        # should not permanently poison a good config's score.
        self.measured[config] = measured_s if seen is None else min(seen, measured_s)
        if self.measured[config] < self.best_time:
            self.best_time = self.measured[config]
            self.best_config = config

    def _advance(self, previous: TunedConfig, measured_s: float) -> str:
        if self.state == WARMUP:
            return self._advance_warmup(measured_s)
        if self.state == SWEEP:
            return self._advance_experiment(previous, measured_s, next_state=HILL_CLIMB)
        if self.state == HILL_CLIMB:
            return self._advance_experiment(previous, measured_s, next_state=CONVERGED)
        return self._advance_converged(measured_s)

    def _advance_warmup(self, measured_s: float) -> str:
        self._warmup_times.append(measured_s)
        if len(self._warmup_times) < self.warmup_windows:
            return "warmup"
        self._queue = self._pruned_sweep()
        self.state = SWEEP
        if self._queue:
            self.active_config = self._queue.pop(0)
            return "sweep_start"
        # Prior kept nothing beyond the base config — nothing to try.
        self.state = CONVERGED
        self._freeze()
        return "converged"

    def _advance_experiment(
        self, previous: TunedConfig, measured_s: float, next_state: str
    ) -> str:
        regressed = measured_s > self.best_time * (1.0 + self.rollback_margin)
        action = "step"
        if regressed and previous != self.best_config:
            self.rollbacks += 1
            action = "rollback"
        if self.state == HILL_CLIMB and not regressed and previous == self.best_config:
            # The climb moved here and the move held up by more than
            # the noise margin: regenerate the frontier around the new
            # best.  (Each config is measured at most once per tune
            # cycle, so the climb always terminates.)
            if (
                self._frontier_origin != self.best_config
                and self.best_time < self._frontier_best * (1.0 - self.improve_margin)
            ):
                self._queue = self._hill_frontier()
                action = "climb_move"
        if not self._queue and self.state == SWEEP:
            self.state = HILL_CLIMB
            self._queue = self._hill_frontier()
            action = "sweep_done"
        if not self._queue:
            self.state = CONVERGED
            self._freeze()
            self.active_config = self.best_config
            return "converged"
        self.active_config = self._queue.pop(0)
        return action

    def _advance_converged(self, measured_s: float) -> str:
        self.active_config = self.best_config
        if measured_s > self._frozen_time * self.drift_threshold:
            self._drift_count += 1
            if self._drift_count >= self.drift_patience:
                # The world changed under the frozen config — forget
                # stale measurements and re-tune from here.
                self.retunes += 1
                self.measured = {}
                self.best_time = measured_s
                self.best_config = self.active_config
                self._drift_count = 0
                self._queue = self._pruned_sweep()
                if self._queue:
                    self.state = SWEEP
                    self.active_config = self._queue.pop(0)
                    return "retune"
            return "drift"
        self._drift_count = 0
        # Track the steady-state time so slow drift is judged against
        # reality, not a one-off fast window.
        self._frozen_time = min(self._frozen_time, measured_s)
        return "frozen"

    # ------------------------------------------------------------------
    def _pruned_sweep(self) -> List[TunedConfig]:
        grid = candidate_grid(
            self.best_config,
            tune_comm_hook=self.tune_comm_hook,
            tune_algorithm=self.tune_algorithm,
        )
        fresh = [config for config in grid if config not in self.measured]
        kept = cost_prior.prune_candidates(
            fresh,
            self.model_bytes,
            self.world_size,
            backward_compute_s=self._backward_estimate,
            keep=self.sweep_keep,
            cost_model=self._cost_model,
            backend=self.backend,
        )
        return kept

    def _hill_frontier(self) -> List[TunedConfig]:
        self._frontier_origin = self.best_config
        self._frontier_best = self.best_time
        frontier = [
            config
            for config in neighbors(self.best_config, tune_comm_hook=self.tune_comm_hook)
            if config not in self.measured
            and (self.tune_algorithm or config.algorithm == self.best_config.algorithm)
        ]
        # Seeded shuffle: diversifies the climb order without breaking
        # cross-rank determinism (same seed everywhere).
        self._rng.shuffle(frontier)
        return frontier

    def _freeze(self) -> None:
        self._frozen_time = self.best_time
        self._drift_count = 0

    def _log(
        self, config: TunedConfig, measured_s: float, action: str, signals: dict
    ) -> None:
        self.history.append(
            {
                "window": self.windows,
                "state": self.state,
                "action": action,
                "config": config.as_dict(),
                "measured_s": measured_s,
                "best_s": self.best_time,
                "best_config": self.best_config.as_dict(),
                "overlap_ratio": signals.get("overlap_ratio"),
            }
        )

    # ------------------------------------------------------------------
    def report(self) -> dict:
        """Snapshot for ``ddp_stats()["autotune"]`` / autotunectl."""
        return {
            "state": self.state,
            "windows": self.windows,
            "rollbacks": self.rollbacks,
            "retunes": self.retunes,
            "active_config": self.active_config.as_dict(),
            "best_config": self.best_config.as_dict(),
            "best_time_s": None if self.best_time == float("inf") else self.best_time,
            "configs_measured": len(self.measured),
        }
