"""``repro.autotune`` — online tuning of the communication hot path.

The paper hand-picks its knobs (25 MB buckets, §6.2.1) and names
adaptive tuning as future work (§7); this package closes that loop.  A
per-job :class:`Autotuner` samples the telemetry the runtime already
emits, agrees on measurements across ranks with a single MAX-AllReduce
per window, walks a seeded warmup → sweep → hill-climb → converge
search (:class:`SearchPolicy`) pruned by an analytic alpha-beta cost
prior (:mod:`repro.autotune.cost_prior`), and applies winning configs
live at safe iteration boundaries — with a rollback guard so a bad
step can never stick.

Enable it with ``DistributedDataParallel(..., autotune=True)``; observe
it via ``ddp_stats()["autotune"]`` or ``tools/autotunectl.py``.  Every
knob it may move is declared in :data:`repro.autotune.knobs.KNOBS` and
documented in ``docs/autotuning.md`` (enforced by ``tools/check_docs.py``).
"""

from repro.autotune.knobs import (
    KNOBS,
    Knob,
    TunedConfig,
    clamp_config,
    default_config,
    knob_table,
    validate_config,
)
from repro.autotune.policy import CONVERGED, HILL_CLIMB, SWEEP, WARMUP, SearchPolicy
from repro.autotune.service import Autotuner

__all__ = [
    "KNOBS",
    "Knob",
    "TunedConfig",
    "clamp_config",
    "default_config",
    "knob_table",
    "validate_config",
    "SearchPolicy",
    "Autotuner",
    "WARMUP",
    "SWEEP",
    "HILL_CLIMB",
    "CONVERGED",
]
