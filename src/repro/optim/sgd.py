"""Stochastic gradient descent with momentum, weight decay, nesterov."""

from __future__ import annotations

from typing import Iterable

from repro.optim.optimizer import Optimizer


class SGD(Optimizer):
    """Matches ``torch.optim.SGD`` update semantics.

    With ``momentum > 0`` the buffer ``v`` evolves as
    ``v <- mu * v + g`` and parameters as ``p <- p - lr * v`` (or the
    nesterov variant).  The buffer depends on the entire gradient
    history, which is why parameter averaging diverges from gradient
    averaging (paper §2.2): averaged parameters do not imply averaged
    momentum buffers.
    """

    def __init__(
        self,
        params: Iterable,
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ):
        if lr < 0.0:
            raise ValueError(f"invalid learning rate {lr}")
        if nesterov and momentum <= 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        defaults = {
            "lr": lr,
            "momentum": momentum,
            "weight_decay": weight_decay,
            "nesterov": nesterov,
        }
        super().__init__(params, defaults)

    def step(self) -> None:
        for group in self.param_groups:
            lr = group["lr"]
            momentum = group["momentum"]
            weight_decay = group["weight_decay"]
            nesterov = group["nesterov"]
            for param in group["params"]:
                if param.grad is None:
                    continue
                grad = param.grad.data
                if weight_decay:
                    grad = grad + weight_decay * param.data
                if momentum:
                    state = self.state_for(param)
                    buf = state.get("momentum_buffer")
                    if buf is None:
                        buf = grad.copy()
                        state["momentum_buffer"] = buf
                    else:
                        buf *= momentum
                        buf += grad
                    grad = grad + momentum * buf if nesterov else buf
                param.data -= lr * grad
