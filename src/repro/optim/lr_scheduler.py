"""Learning-rate schedulers operating on optimizer param groups."""

from __future__ import annotations

import math
from typing import Callable, List

from repro.optim.optimizer import Optimizer


class _Scheduler:
    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lrs: List[float] = [g["lr"] for g in optimizer.param_groups]
        self.last_epoch = 0

    def get_lr(self) -> List[float]:  # pragma: no cover - abstract
        raise NotImplementedError

    def step(self) -> None:
        self.last_epoch += 1
        for group, lr in zip(self.optimizer.param_groups, self.get_lr()):
            group["lr"] = lr

    @property
    def current_lrs(self) -> List[float]:
        return [g["lr"] for g in self.optimizer.param_groups]


class StepLR(_Scheduler):
    """Multiply LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> List[float]:
        factor = self.gamma ** (self.last_epoch // self.step_size)
        return [base * factor for base in self.base_lrs]


class CosineAnnealingLR(_Scheduler):
    """Cosine decay from base LR to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0):
        super().__init__(optimizer)
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self) -> List[float]:
        progress = min(self.last_epoch, self.t_max) / self.t_max
        scale = (1 + math.cos(math.pi * progress)) / 2
        return [self.eta_min + (base - self.eta_min) * scale for base in self.base_lrs]


class LambdaLR(_Scheduler):
    """LR = base * fn(epoch)."""

    def __init__(self, optimizer: Optimizer, lr_lambda: Callable[[int], float]):
        super().__init__(optimizer)
        self.lr_lambda = lr_lambda

    def get_lr(self) -> List[float]:
        factor = self.lr_lambda(self.last_epoch)
        return [base * factor for base in self.base_lrs]
