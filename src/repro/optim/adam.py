"""Adam and AdamW optimizers."""

from __future__ import annotations

import math
from typing import Iterable, Tuple

import numpy as np

from repro.optim.optimizer import Optimizer


class Adam(Optimizer):
    """Adam with bias correction; L2 is coupled (added to the gradient).

    Adam's second-moment state makes it sensitive to whether a gradient
    "participated" in an iteration — the exact regression the paper's
    globally-unused-parameter machinery exists to avoid (§3.2.3): DDP
    must not write zero gradients into absent parameters, or optimizers
    like this one will decay their moments incorrectly.
    """

    _decoupled_weight_decay = False

    def __init__(
        self,
        params: Iterable,
        lr: float = 1e-3,
        betas: Tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        if not 0.0 <= betas[0] < 1.0 or not 0.0 <= betas[1] < 1.0:
            raise ValueError(f"invalid betas {betas}")
        defaults = {"lr": lr, "betas": betas, "eps": eps, "weight_decay": weight_decay}
        super().__init__(params, defaults)

    def step(self) -> None:
        for group in self.param_groups:
            lr = group["lr"]
            beta1, beta2 = group["betas"]
            eps = group["eps"]
            weight_decay = group["weight_decay"]
            for param in group["params"]:
                if param.grad is None:
                    continue
                grad = param.grad.data
                if weight_decay and not self._decoupled_weight_decay:
                    grad = grad + weight_decay * param.data
                state = self.state_for(param)
                if "step" not in state:
                    state["step"] = 0
                    state["exp_avg"] = np.zeros_like(param.data)
                    state["exp_avg_sq"] = np.zeros_like(param.data)
                state["step"] += 1
                step = state["step"]
                exp_avg, exp_avg_sq = state["exp_avg"], state["exp_avg_sq"]
                exp_avg *= beta1
                exp_avg += (1 - beta1) * grad
                exp_avg_sq *= beta2
                exp_avg_sq += (1 - beta2) * grad * grad
                bias1 = 1 - beta1**step
                bias2 = 1 - beta2**step
                denom = np.sqrt(exp_avg_sq / bias2) + eps
                update = lr * (exp_avg / bias1) / denom
                if weight_decay and self._decoupled_weight_decay:
                    param.data -= lr * weight_decay * param.data
                param.data -= update


class AdamW(Adam):
    """Adam with decoupled weight decay."""

    _decoupled_weight_decay = True
