"""Optimizer base class with parameter groups and per-parameter state."""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.autograd.tensor import Tensor


class Optimizer:
    """Holds parameter groups and per-parameter state dictionaries.

    Parameters may be passed as an iterable of tensors or of group dicts
    (``{"params": [...], "lr": 0.1}``), as in PyTorch.
    """

    def __init__(self, params: Iterable, defaults: Dict):
        self.defaults = dict(defaults)
        self.param_groups: List[Dict] = []
        self.state: Dict[int, Dict] = {}
        self._params_by_id: Dict[int, Tensor] = {}

        params = list(params)
        if not params:
            raise ValueError("optimizer got an empty parameter list")
        if isinstance(params[0], dict):
            groups = params
        else:
            groups = [{"params": params}]
        for group in groups:
            self.add_param_group(group)

    def add_param_group(self, group: Dict) -> None:
        group = dict(group)
        group_params = list(group["params"])
        if not group_params:
            raise ValueError("parameter group is empty")
        for key, value in self.defaults.items():
            group.setdefault(key, value)
        for param in group_params:
            if not isinstance(param, Tensor):
                raise TypeError(f"optimizer parameters must be Tensors, got {type(param)}")
            if id(param) in self._params_by_id:
                raise ValueError("a parameter appears in more than one group")
            self._params_by_id[id(param)] = param
        group["params"] = group_params
        self.param_groups.append(group)

    def zero_grad(self) -> None:
        for group in self.param_groups:
            for param in group["params"]:
                param.grad = None

    def state_for(self, param: Tensor) -> Dict:
        """Per-parameter mutable state dict (momentum buffers etc.)."""
        return self.state.setdefault(id(param), {})

    def _ordered_params(self) -> List[Tensor]:
        return [param for group in self.param_groups for param in group["params"]]

    def state_dict(self) -> Dict:
        """Serializable optimizer state, keyed by parameter position.

        Positions index the flattened ``param_groups`` order, which is
        stable across identically constructed replicas — the property
        checkpoint restore relies on (momentum/Adam moments depend on
        the whole gradient history, so elastic recovery must restore
        them alongside the parameters; see paper §2.2 on why averaged
        parameters do not imply averaged optimizer state).
        """
        import numpy as np

        state: Dict[int, Dict] = {}
        ordered = self._ordered_params()
        for index, param in enumerate(ordered):
            per_param = self.state.get(id(param))
            if per_param:
                state[index] = {
                    key: np.asarray(value).copy()
                    for key, value in per_param.items()
                }
        return {"state": state, "num_params": len(ordered)}

    def load_state_dict(self, state_dict: Dict) -> None:
        """Restore state captured by :meth:`state_dict` (by position).

        Positional keys silently misalign if the parameter list changed
        between save and load (state would land on the wrong tensors),
        so a recorded ``num_params`` that disagrees with the registered
        count, an out-of-range index, or a state array whose shape does
        not match its parameter all raise ``ValueError``.
        """
        params = self._ordered_params()
        num_params = state_dict.get("num_params")
        if num_params is not None and int(num_params) != len(params):
            raise ValueError(
                f"optimizer state was saved for {int(num_params)} parameters "
                f"but this optimizer has {len(params)}; positional state "
                "cannot be restored across differing parameter lists"
            )
        self.state.clear()
        for index, per_param in state_dict.get("state", {}).items():
            index = int(index)
            if not 0 <= index < len(params):
                raise ValueError(
                    f"optimizer state refers to parameter {index} but only "
                    f"{len(params)} parameters are registered"
                )
            restored = {}
            for key, value in per_param.items():
                array = value.copy() if hasattr(value, "copy") else value
                # Scalars (e.g. Adam's step count) round-trip through
                # 0-d arrays when saved to npz; unwrap them.
                if hasattr(array, "ndim") and array.ndim == 0:
                    array = array.item()
                elif hasattr(array, "shape") and array.shape != params[index].data.shape:
                    raise ValueError(
                        f"optimizer state '{key}' for parameter {index} has "
                        f"shape {array.shape} but the parameter is "
                        f"{params[index].data.shape}; the checkpoint does not "
                        "match this parameter list"
                    )
                restored[key] = array
            self.state[id(params[index])] = restored

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(groups={len(self.param_groups)})"
