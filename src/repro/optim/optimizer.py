"""Optimizer base class with parameter groups and per-parameter state."""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.autograd.tensor import Tensor


class Optimizer:
    """Holds parameter groups and per-parameter state dictionaries.

    Parameters may be passed as an iterable of tensors or of group dicts
    (``{"params": [...], "lr": 0.1}``), as in PyTorch.
    """

    def __init__(self, params: Iterable, defaults: Dict):
        self.defaults = dict(defaults)
        self.param_groups: List[Dict] = []
        self.state: Dict[int, Dict] = {}
        self._params_by_id: Dict[int, Tensor] = {}

        params = list(params)
        if not params:
            raise ValueError("optimizer got an empty parameter list")
        if isinstance(params[0], dict):
            groups = params
        else:
            groups = [{"params": params}]
        for group in groups:
            self.add_param_group(group)

    def add_param_group(self, group: Dict) -> None:
        group = dict(group)
        group_params = list(group["params"])
        if not group_params:
            raise ValueError("parameter group is empty")
        for key, value in self.defaults.items():
            group.setdefault(key, value)
        for param in group_params:
            if not isinstance(param, Tensor):
                raise TypeError(f"optimizer parameters must be Tensors, got {type(param)}")
            if id(param) in self._params_by_id:
                raise ValueError("a parameter appears in more than one group")
            self._params_by_id[id(param)] = param
        group["params"] = group_params
        self.param_groups.append(group)

    def zero_grad(self) -> None:
        for group in self.param_groups:
            for param in group["params"]:
                param.grad = None

    def state_for(self, param: Tensor) -> Dict:
        """Per-parameter mutable state dict (momentum buffers etc.)."""
        return self.state.setdefault(id(param), {})

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(groups={len(self.param_groups)})"
