"""Optimizers and learning-rate schedulers.

Every rank in DDP runs an *independent* optimizer instance; the paper's
correctness argument (§3) is that identical start states plus identical
averaged gradients keep independent optimizers in lockstep.  Momentum SGD
here is also what exposes the parameter-averaging divergence discussed in
§2.2 and reproduced in ``repro.core.param_avg``.
"""

from repro.optim.optimizer import Optimizer
from repro.optim.sgd import SGD
from repro.optim.adam import Adam, AdamW
from repro.optim.lr_scheduler import StepLR, CosineAnnealingLR, LambdaLR

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "StepLR",
    "CosineAnnealingLR",
    "LambdaLR",
]
