"""Discrete-event simulation of DDP training iterations.

Built on :mod:`repro.simnet`'s cost models, this package replays the
timeline of a distributed training iteration — gradient-ready events in
backward order, bucket-ready events, in-order asynchronous AllReduce on
one or more communication streams — and reports per-iteration latency
and its breakdown.  Every latency figure in the paper (Figs. 6–10, 12)
is regenerated from :class:`~repro.simulation.trainer_sim.TrainingSimulator`.
"""

from repro.simulation.events import Stream, Timeline, ScheduledOp
from repro.simulation.models import (
    ModelProfile,
    ParamSpec,
    resnet50_profile,
    resnet152_profile,
    bert_profile,
    profile_from_module,
    measure_compute_anchors,
)
from repro.simulation.trainer_sim import (
    SimulationConfig,
    IterationResult,
    TrainingSimulator,
)
from repro.simulation.trace import export_chrome_trace, iteration_trace_events
from repro.simulation.memory import memory_breakdown, memory_report

__all__ = [
    "Stream",
    "Timeline",
    "ScheduledOp",
    "ModelProfile",
    "ParamSpec",
    "resnet50_profile",
    "resnet152_profile",
    "bert_profile",
    "profile_from_module",
    "measure_compute_anchors",
    "SimulationConfig",
    "IterationResult",
    "TrainingSimulator",
    "export_chrome_trace",
    "iteration_trace_events",
    "memory_breakdown",
    "memory_report",
]
