"""Chrome-trace export of simulated iteration timelines.

``export_chrome_trace`` writes the event list of one or more simulated
iterations in the Trace Event Format, loadable at ``chrome://tracing``
or https://ui.perfetto.dev — the overlap between backward compute and
bucket AllReduces (the paper's Fig. 4 picture) becomes directly
visible.
"""

from __future__ import annotations

import json
import os
from typing import List

from repro.simulation.trainer_sim import TrainingSimulator


def iteration_trace_events(
    simulator: TrainingSimulator, iterations: int = 1, pid: int = 0
) -> List[dict]:
    """Trace Event Format records for ``iterations`` back-to-back
    simulated iterations (timestamps in microseconds)."""
    events: List[dict] = []
    offset = 0.0
    tids = {"compute": 0}
    for iteration in range(iterations):
        result = simulator.simulate_iteration(iteration)
        for label, stream, start, end in result.events:
            if stream not in tids:
                tids[stream] = len(tids)
            events.append(
                {
                    "name": label,
                    "cat": "comm" if stream.startswith("comm") else "compute",
                    "ph": "X",
                    "ts": (offset + start) * 1e6,
                    "dur": (end - start) * 1e6,
                    "pid": pid,
                    "tid": tids[stream],
                    "args": {"iteration": iteration},
                }
            )
        events.append(
            {
                "name": f"iteration {iteration}",
                "cat": "iteration",
                "ph": "X",
                "ts": offset * 1e6,
                "dur": result.total * 1e6,
                "pid": pid,
                "tid": len(tids),
            }
        )
        offset += result.total
    # thread names for readability
    for stream, tid in tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": stream},
            }
        )
    return events


def export_chrome_trace(
    simulator: TrainingSimulator, path: str, iterations: int = 2
) -> str:
    """Write a chrome://tracing JSON file; returns the path."""
    events = iteration_trace_events(simulator, iterations)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump({"traceEvents": events}, handle)
    return path
