"""The DDP iteration simulator.

Replays the paper's per-iteration timeline on calibrated cost models:

1. The backward pass produces gradients in reverse ``parameters()``
   order; each parameter's compute share is proportional to its element
   count (device profile).
2. Buckets (from the *same* ``compute_bucket_assignment`` the real DDP
   uses) become ready when their last gradient lands.
3. Ready buckets launch AllReduce asynchronously, **in bucket order**,
   on one or more communication streams (round-robin process groups use
   several; paper §3.3/§5.4).
4. Iteration latency = forward + max(backward-compute end, last
   communication end) + optimizer step; skipped-sync iterations omit
   communication entirely (``no_sync``, §3.2.4).

The "no overlap" mode serializes all communication after the full
backward pass — the normalization baseline of Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

import numpy as np

from repro.core.bucket import BucketSpec, compute_bucket_assignment
from repro.simnet.cost_model import CollectiveCostModel, cost_model_for
from repro.simnet.device import DeviceProfile, GPU_V100
from repro.simnet.entitlement import SharedEntitlement
from repro.simnet.topology import ClusterSpec
from repro.simulation.events import Timeline
from repro.simulation.models import ModelProfile
from repro.utils.units import MB

#: Host<->device staging bandwidth paid per bucket by CPU backends (Gloo
#: communicates CPU tensors, so GPU gradients cross PCIe twice).
PCIE_BANDWIDTH = 12e9


@dataclass
class SimulationConfig:
    """Everything that defines one simulated training setup."""

    model: ModelProfile
    world_size: int
    backend: str = "nccl"
    bucket_cap_mb: float = 25.0
    first_bucket_cap_mb: Optional[float] = None
    overlap: bool = True
    sync_every: int = 1
    num_comm_streams: int = 1
    find_unused_parameters: bool = False
    device: DeviceProfile = field(default_factory=lambda: GPU_V100)
    cluster: ClusterSpec = field(default_factory=ClusterSpec)
    entitlement: SharedEntitlement = field(default_factory=SharedEntitlement.ideal)
    seed: int = 0
    #: Optional parameter execution order for the backward pass (indices
    #: into ``model.params``, first-to-fire first).  Default: reverse
    #: definition order, the assumption DDP's bucketing relies on.  A
    #: mismatching order models the §6.2.1 problem.
    execution_order: Optional[tuple] = None
    #: Optional externally supplied bucket layout (e.g. from the
    #: BackwardOrderTracer) overriding reverse-order assignment.
    bucket_specs: Optional[tuple] = None

    def with_(self, **overrides) -> "SimulationConfig":
        return replace(self, **overrides)


@dataclass(frozen=True)
class IterationResult:
    """Latency breakdown of one simulated iteration (seconds).

    ``events`` holds (label, stream, start, end) tuples for the
    iteration's timeline — consumed by
    :func:`repro.simulation.trace.export_chrome_trace`.
    """

    forward: float
    backward_compute: float
    backward_comm_total: float
    backward_comm_exposed: float
    optimizer: float
    synced: bool
    events: tuple = ()

    @property
    def backward(self) -> float:
        return self.backward_compute + self.backward_comm_exposed

    @property
    def total(self) -> float:
        return self.forward + self.backward + self.optimizer

    def breakdown(self) -> Dict[str, float]:
        return {
            "forward": self.forward,
            "backward_compute": self.backward_compute,
            "backward_comm_exposed": self.backward_comm_exposed,
            "backward_comm_total": self.backward_comm_total,
            "optimizer": self.optimizer,
            "total": self.total,
        }


class TrainingSimulator:
    """Simulates DDP iterations for one configuration."""

    def __init__(self, config: SimulationConfig):
        if config.world_size < 1:
            raise ValueError("world_size must be >= 1")
        if config.sync_every < 1:
            raise ValueError("sync_every must be >= 1")
        if config.num_comm_streams < 1:
            raise ValueError("num_comm_streams must be >= 1")
        self.config = config
        self.cost_model: CollectiveCostModel = cost_model_for(
            config.backend, config.cluster
        )
        if config.bucket_specs is not None:
            self.buckets: List[BucketSpec] = list(config.bucket_specs)
        else:
            self.buckets = compute_bucket_assignment(
                list(config.model.params),
                bucket_cap_bytes=int(config.bucket_cap_mb * MB),
                first_bucket_cap_bytes=(
                    int(config.first_bucket_cap_mb * MB)
                    if config.first_bucket_cap_mb is not None
                    else None
                ),
            )
        self._grad_element_size = config.model.params[0].element_size()

    # ------------------------------------------------------------------
    def gradient_ready_times(self, rng: np.random.Generator) -> np.ndarray:
        """Per-parameter gradient-ready timestamps within the backward pass.

        Index ``i`` corresponds to parameter ``i`` in definition order;
        gradients materialize in *reverse* definition order (the Fig. 4
        timeline).  Each parameter's compute share is proportional to
        its element count plus a per-tensor overhead, with
        multiplicative jitter per parameter.
        """
        model = self.config.model
        device = self.config.device
        total_backward = device.backward_time(model)
        per_param_budget = total_backward - model.num_tensors * device.per_tensor_overhead
        rate = max(per_param_budget, 0.0) / max(model.num_params, 1)
        if self.config.execution_order is not None:
            order = list(self.config.execution_order)
        else:
            order = list(range(model.num_tensors - 1, -1, -1))
        ready = np.empty(model.num_tensors)
        t = 0.0
        for position in order:
            spec = model.params[position]
            share = spec.numel() * rate + device.per_tensor_overhead
            share *= max(0.2, float(rng.normal(1.0, device.jitter)))
            t += share
            ready[position] = t
        return ready

    def _bucket_allreduce_time(self, bucket: BucketSpec, bandwidth_factor: float) -> float:
        nbytes = bucket.total_elements * self._grad_element_size
        penalty = self.cost_model.stream_penalty(
            self.config.num_comm_streams, self.config.world_size
        )
        duration = (
            self.cost_model.allreduce_time(
                nbytes, self.config.world_size, bandwidth_factor
            )
            * penalty
        )
        if self.config.backend == "gloo":
            # GPU gradients stage through host memory for CPU collectives.
            duration += 2.0 * nbytes / PCIE_BANDWIDTH
        return duration

    # ------------------------------------------------------------------
    def simulate_iteration(self, iteration: int = 0) -> IterationResult:
        """Simulate one iteration; sync iff the cadence says so."""
        config = self.config
        synced = config.world_size > 1 and (iteration % config.sync_every == 0)
        rng = np.random.default_rng((config.seed, iteration))

        model = config.model
        forward = config.device.forward_time(model)
        optimizer = config.device.optimizer_time(model)

        ready = self.gradient_ready_times(rng)
        compute_end = float(ready.max())

        base_events = [
            ("forward", "compute", 0.0, forward),
            ("backward_compute", "compute", forward, forward + compute_end),
        ]

        if not synced:
            events = base_events + [
                ("optimizer", "compute", forward + compute_end,
                 forward + compute_end + optimizer),
            ]
            result = IterationResult(
                forward, compute_end, 0.0, 0.0, optimizer, synced=False,
                events=tuple(events),
            )
            return self._apply_environment(result, iteration)

        bandwidth_factor = config.entitlement.bandwidth_factor(config.world_size)
        timeline = Timeline()
        comm_streams = [
            timeline.stream(f"comm{i}") for i in range(config.num_comm_streams)
        ]

        previous_launch = 0.0
        comm_total = 0.0
        for position, bucket in enumerate(self.buckets):
            bucket_ready = float(max(ready[i] for i in bucket.param_indices))
            if not config.overlap:
                # Hard boundary: communication starts only after the
                # whole backward pass (the Fig. 6 baseline, §2.2 shape).
                bucket_ready = compute_end
            # In-order launch constraint (Fig. 3(a)): bucket i+1 may not
            # launch before bucket i.
            launch_ready = max(bucket_ready, previous_launch)
            duration = self._bucket_allreduce_time(bucket, bandwidth_factor)
            comm_total += duration
            stream = comm_streams[position % len(comm_streams)]
            op = stream.schedule(f"allreduce:bucket{position}", launch_ready, duration)
            previous_launch = op.start

        if config.find_unused_parameters:
            # The extra bitmap AllReduce (int32 per parameter, §4.2).
            bitmap_bytes = model.num_tensors * 4
            duration = self.cost_model.allreduce_time(
                bitmap_bytes, config.world_size, bandwidth_factor
            )
            comm_total += duration
            comm_streams[0].schedule("allreduce:bitmap", compute_end, duration)

        comm_end = timeline.makespan()
        exposed = max(0.0, comm_end - compute_end)
        backward_end = forward + max(compute_end, comm_end)
        events = base_events + [
            (op.label, op.stream, forward + op.start, forward + op.end)
            for op in timeline.ops()
        ] + [("optimizer", "compute", backward_end, backward_end + optimizer)]
        result = IterationResult(
            forward, compute_end, comm_total, exposed, optimizer, synced=True,
            events=tuple(events),
        )
        return self._apply_environment(result, iteration)

    def _apply_environment(
        self, result: IterationResult, iteration: int
    ) -> IterationResult:
        """Straggler and noise multipliers from the environment model."""
        config = self.config
        factor = config.entitlement.straggler_factor(config.world_size)
        factor *= config.entitlement.iteration_noise(config.world_size, iteration)
        if factor == 1.0:
            return result
        return IterationResult(
            result.forward * factor,
            result.backward_compute * factor,
            result.backward_comm_total * factor,
            result.backward_comm_exposed * factor,
            result.optimizer * factor,
            result.synced,
            events=tuple(
                (label, stream, start * factor, end * factor)
                for label, stream, start, end in result.events
            ),
        )

    # ------------------------------------------------------------------
    def per_iteration_latencies(self, iterations: int) -> List[float]:
        return [self.simulate_iteration(i).total for i in range(iterations)]

    def average_latency(self, iterations: int = 32) -> float:
        """Mean latency over a window — the Fig. 10 metric, which
        amortizes skipped-sync iterations."""
        latencies = self.per_iteration_latencies(iterations)
        return float(np.mean(latencies))

    def median_latency(self, iterations: int = 32) -> float:
        return float(np.median(self.per_iteration_latencies(iterations)))

    def breakdown(self, iterations: int = 8) -> Dict[str, float]:
        """Mean per-component latency over synchronized iterations."""
        keys = None
        acc: Dict[str, float] = {}
        count = 0
        for i in range(iterations):
            result = self.simulate_iteration(i)
            if not result.synced and self.config.world_size > 1:
                continue
            parts = result.breakdown()
            if keys is None:
                keys = parts.keys()
                acc = {k: 0.0 for k in keys}
            for k in keys:
                acc[k] += parts[k]
            count += 1
        return {k: v / max(count, 1) for k, v in acc.items()}
