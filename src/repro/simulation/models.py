"""Parameter-shape profiles for the paper's evaluation models.

The timing experiments need each model's parameter tensors in
``model.parameters()`` order (bucketing walks that order in reverse)
plus total element counts:

* **ResNet50** — ~25.6 M parameters, the paper's vision workload.
* **ResNet152** — ~60.2 M parameters, used for the Fig. 2(c,d) backward
  profiles.
* **BERT** — the paper's NLP workload, "15× more parameters than
  ResNet50" (§5.2) ⇒ a BERT-Large-shaped encoder of ~345 M parameters.

Profiles are generated structurally (bottleneck blocks, transformer
layers), so tensor-count and size *distributions* are realistic — many
tiny BatchNorm/bias vectors among large conv/linear matrices, which is
what makes bucketing matter.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Tuple

import numpy as np


@dataclass(frozen=True)
class ParamSpec:
    """A parameter tensor's identity in a profile (duck-types the pieces
    of ``nn.Parameter`` that bucket assignment reads)."""

    name: str
    shape: Tuple[int, ...]
    device: str = "gpu:0"
    dtype: str = "float32"

    def numel(self) -> int:
        return int(np.prod(self.shape))

    def element_size(self) -> int:
        return 4 if self.dtype == "float32" else 8


@dataclass(frozen=True)
class ModelProfile:
    """A model reduced to what the simulator needs.

    ``v100_forward_seconds`` / ``v100_backward_seconds`` anchor one
    iteration's compute on the paper's V100 GPUs at its batch sizes;
    other devices scale these through ``DeviceProfile.speed_factor``.
    """

    name: str
    params: Tuple[ParamSpec, ...]
    v100_forward_seconds: float = 0.05
    v100_backward_seconds: float = 0.10

    @property
    def num_params(self) -> int:
        return sum(p.numel() for p in self.params)

    @property
    def num_tensors(self) -> int:
        return len(self.params)

    @property
    def gradient_bytes(self) -> int:
        return sum(p.numel() * p.element_size() for p in self.params)

    def __repr__(self) -> str:
        return (
            f"ModelProfile({self.name}: {self.num_params/1e6:.1f}M params, "
            f"{self.num_tensors} tensors)"
        )


def _conv(name: str, out_c: int, in_c: int, k: int) -> List[ParamSpec]:
    return [ParamSpec(f"{name}.weight", (out_c, in_c, k, k))]


def _bn(name: str, channels: int) -> List[ParamSpec]:
    return [
        ParamSpec(f"{name}.weight", (channels,)),
        ParamSpec(f"{name}.bias", (channels,)),
    ]


def _linear(name: str, out_f: int, in_f: int, bias: bool = True) -> List[ParamSpec]:
    specs = [ParamSpec(f"{name}.weight", (out_f, in_f))]
    if bias:
        specs.append(ParamSpec(f"{name}.bias", (out_f,)))
    return specs


def _bottleneck(name: str, in_c: int, mid_c: int, out_c: int, downsample: bool) -> List[ParamSpec]:
    """A ResNet bottleneck block: 1x1 -> 3x3 -> 1x1 (+ optional shortcut)."""
    specs: List[ParamSpec] = []
    specs += _conv(f"{name}.conv1", mid_c, in_c, 1)
    specs += _bn(f"{name}.bn1", mid_c)
    specs += _conv(f"{name}.conv2", mid_c, mid_c, 3)
    specs += _bn(f"{name}.bn2", mid_c)
    specs += _conv(f"{name}.conv3", out_c, mid_c, 1)
    specs += _bn(f"{name}.bn3", out_c)
    if downsample:
        specs += _conv(f"{name}.downsample.0", out_c, in_c, 1)
        specs += _bn(f"{name}.downsample.1", out_c)
    return specs


def _resnet_profile(name: str, blocks_per_stage: Tuple[int, int, int, int]) -> Tuple[ParamSpec, ...]:
    specs: List[ParamSpec] = []
    specs += _conv("conv1", 64, 3, 7)
    specs += _bn("bn1", 64)
    in_c = 64
    for stage, num_blocks in enumerate(blocks_per_stage):
        mid_c = 64 * (2**stage)
        out_c = mid_c * 4
        for block in range(num_blocks):
            specs += _bottleneck(
                f"layer{stage + 1}.{block}",
                in_c,
                mid_c,
                out_c,
                downsample=(block == 0),
            )
            in_c = out_c
    specs += _linear("fc", 1000, in_c)
    return tuple(specs)


@lru_cache(maxsize=None)
def resnet50_profile() -> ModelProfile:
    """ResNet50: blocks (3, 4, 6, 3) — about 25.6 M parameters."""
    return ModelProfile(
        "resnet50",
        _resnet_profile("resnet50", (3, 4, 6, 3)),
        v100_forward_seconds=0.042,
        v100_backward_seconds=0.085,
    )


@lru_cache(maxsize=None)
def resnet152_profile() -> ModelProfile:
    """ResNet152: blocks (3, 8, 36, 3) — about 60.2 M parameters.

    Backward anchor 250 ms matches Fig. 2(c) (and 6 s on CPUs via the
    24x CPU profile, Fig. 2(d)).
    """
    return ModelProfile(
        "resnet152",
        _resnet_profile("resnet152", (3, 8, 36, 3)),
        v100_forward_seconds=0.125,
        v100_backward_seconds=0.250,
    )


@lru_cache(maxsize=None)
def bert_profile(
    hidden: int = 1024,
    layers: int = 24,
    heads: int = 16,
    intermediate: int = 4096,
    vocab: int = 30522,
    max_positions: int = 512,
) -> ModelProfile:
    """A BERT-Large-shaped encoder — about 345 M parameters (~15× ResNet50)."""
    specs: List[ParamSpec] = []
    specs.append(ParamSpec("embeddings.word", (vocab, hidden)))
    specs.append(ParamSpec("embeddings.position", (max_positions, hidden)))
    specs.append(ParamSpec("embeddings.token_type", (2, hidden)))
    specs += [
        ParamSpec("embeddings.norm.weight", (hidden,)),
        ParamSpec("embeddings.norm.bias", (hidden,)),
    ]
    for layer in range(layers):
        base = f"encoder.layer{layer}"
        for proj in ("query", "key", "value", "output"):
            specs += _linear(f"{base}.attention.{proj}", hidden, hidden)
        specs += [
            ParamSpec(f"{base}.attention.norm.weight", (hidden,)),
            ParamSpec(f"{base}.attention.norm.bias", (hidden,)),
        ]
        specs += _linear(f"{base}.ffn.intermediate", intermediate, hidden)
        specs += _linear(f"{base}.ffn.output", hidden, intermediate)
        specs += [
            ParamSpec(f"{base}.ffn.norm.weight", (hidden,)),
            ParamSpec(f"{base}.ffn.norm.bias", (hidden,)),
        ]
    specs += _linear("pooler", hidden, hidden)
    return ModelProfile(
        "bert",
        tuple(specs),
        v100_forward_seconds=0.30,
        v100_backward_seconds=0.60,
    )


def profile_from_module(
    module,
    name: str,
    v100_forward_seconds: float,
    v100_backward_seconds: float,
    device: str = "gpu:0",
    dtype: str = "float32",
) -> ModelProfile:
    """Build a simulator profile from a real ``nn.Module``.

    Lets downstream users plan deployments for *their* model: construct
    it once, anchor its per-iteration compute (measured or estimated),
    and sweep world sizes / bucket sizes / backends on the calibrated
    simulator before buying hardware.
    """
    specs = tuple(
        ParamSpec(param_name, tuple(param.shape), device=device, dtype=dtype)
        for param_name, param in module.named_parameters()
    )
    if not specs:
        raise ValueError("module has no parameters to profile")
    return ModelProfile(
        name,
        specs,
        v100_forward_seconds=v100_forward_seconds,
        v100_backward_seconds=v100_backward_seconds,
    )


def measure_compute_anchors(module, sample_input, loss_fn=None, iterations: int = 3):
    """Measure a real model's forward/backward wall-clock on this host.

    Returns ``(forward_seconds, backward_seconds)`` medians, suitable as
    the compute anchors of :func:`profile_from_module` (after rescaling
    to the target device's speed).  ``loss_fn(output)`` must return a
    scalar; defaults to ``output.sum()``.
    """
    import time

    forwards, backwards = [], []
    for _ in range(max(iterations, 1)):
        module.zero_grad()
        start = time.perf_counter()
        out = module(sample_input)
        mid = time.perf_counter()
        loss = loss_fn(out) if loss_fn is not None else out.sum()
        loss.backward()
        end = time.perf_counter()
        forwards.append(mid - start)
        backwards.append(end - mid)
    forwards.sort()
    backwards.sort()
    return forwards[len(forwards) // 2], backwards[len(backwards) // 2]


PROFILES = {
    "resnet50": resnet50_profile,
    "resnet152": resnet152_profile,
    "bert": bert_profile,
}


def profile_by_name(name: str) -> ModelProfile:
    try:
        return PROFILES[name]()
    except KeyError:
        raise ValueError(f"unknown model profile {name!r}; options: {sorted(PROFILES)}")
