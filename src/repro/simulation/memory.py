"""Per-GPU memory model (paper §7, the ZeRO discussion).

"The main memory consumption contributors are input data, model
parameters, gradients, optimizer states, and activations."  This module
quantifies those contributors for DDP's full replication and for the
three ZeRO partitioning stages the paper describes, so the
memory-vs-speed trade-off is concrete.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulation.models import ModelProfile

#: optimizer-state slots per parameter element.
OPTIMIZER_SLOTS = {"sgd": 0.0, "momentum_sgd": 1.0, "adam": 2.0}


@dataclass(frozen=True)
class MemoryBreakdown:
    """Per-GPU bytes by contributor."""

    parameters: float
    gradients: float
    optimizer_state: float
    activations: float

    @property
    def total(self) -> float:
        return self.parameters + self.gradients + self.optimizer_state + self.activations

    def row(self):
        return (
            round(self.parameters / 1e6, 1),
            round(self.gradients / 1e6, 1),
            round(self.optimizer_state / 1e6, 1),
            round(self.activations / 1e6, 1),
            round(self.total / 1e6, 1),
        )


def memory_breakdown(
    model: ModelProfile,
    world_size: int,
    strategy: str = "ddp",
    optimizer: str = "adam",
    activation_bytes: float | None = None,
    element_bytes: int = 4,
) -> MemoryBreakdown:
    """Per-GPU memory for a replication/partitioning strategy.

    Strategies (paper §7):

    * ``ddp``    — full replication of params, grads, optimizer state;
    * ``zero1``  — optimizer state partitioned across ranks;
    * ``zero2``  — + gradients partitioned;
    * ``zero3``  — + parameters partitioned (gathered on demand).

    ``activation_bytes`` defaults to 2× the parameter bytes, a crude but
    serviceable stand-in for batch activations.
    """
    if strategy not in ("ddp", "zero1", "zero2", "zero3"):
        raise ValueError(f"unknown strategy {strategy!r}")
    if optimizer not in OPTIMIZER_SLOTS:
        raise ValueError(f"unknown optimizer {optimizer!r}")
    n = model.num_params
    params = n * element_bytes
    grads = n * element_bytes
    opt = n * element_bytes * OPTIMIZER_SLOTS[optimizer]
    activations = activation_bytes if activation_bytes is not None else 2.0 * params
    shard = 1.0 / max(world_size, 1)

    if strategy in ("zero1", "zero2", "zero3"):
        opt *= shard
    if strategy in ("zero2", "zero3"):
        grads *= shard
    if strategy == "zero3":
        params *= shard
    return MemoryBreakdown(params, grads, opt, activations)


def memory_report(model: ModelProfile, world_size: int, optimizer: str = "adam"):
    """Rows (strategy, params_MB, grads_MB, opt_MB, act_MB, total_MB)."""
    rows = []
    for strategy in ("ddp", "zero1", "zero2", "zero3"):
        breakdown = memory_breakdown(model, world_size, strategy, optimizer)
        rows.append((strategy,) + breakdown.row())
    return rows
