"""Streams and timelines: the simulator's execution substrate.

A :class:`Stream` models an in-order executor (a CUDA stream, a Gloo
worker thread): operations run serially, each starting no earlier than
both its readiness time and the stream becoming free.  A
:class:`Timeline` owns several streams — one compute stream plus one or
more communication streams, matching DDP's "dedicated set of CUDA
streams for communication" (paper §3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class ScheduledOp:
    """One operation's placement on a stream."""

    label: str
    ready: float
    start: float
    end: float
    stream: str

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def queueing_delay(self) -> float:
        """Time spent ready but waiting for the stream."""
        return self.start - self.ready


class Stream:
    """A serial executor: ops run in submission order, back to back."""

    def __init__(self, name: str):
        self.name = name
        self.free_at = 0.0
        self.log: List[ScheduledOp] = []

    def schedule(self, label: str, ready: float, duration: float) -> ScheduledOp:
        """Place an op; returns its realized (start, end) window."""
        start = max(ready, self.free_at)
        op = ScheduledOp(label, ready, start, start + duration, self.name)
        self.free_at = op.end
        self.log.append(op)
        return op

    def busy_time(self) -> float:
        return sum(op.duration for op in self.log)

    def reset(self) -> None:
        self.free_at = 0.0
        self.log.clear()


class Timeline:
    """A set of named streams plus completion bookkeeping."""

    def __init__(self):
        self.streams: Dict[str, Stream] = {}

    def stream(self, name: str) -> Stream:
        if name not in self.streams:
            self.streams[name] = Stream(name)
        return self.streams[name]

    def makespan(self) -> float:
        """Time at which every stream has drained."""
        ends = [s.free_at for s in self.streams.values() if s.log]
        return max(ends) if ends else 0.0

    def ops(self, stream_name: Optional[str] = None) -> List[ScheduledOp]:
        if stream_name is not None:
            return list(self.streams[stream_name].log)
        merged: List[ScheduledOp] = []
        for stream in self.streams.values():
            merged.extend(stream.log)
        return sorted(merged, key=lambda op: op.start)

    def reset(self) -> None:
        for stream in self.streams.values():
            stream.reset()
