#!/usr/bin/env python
"""Render and gate autotuner reports.

Reads the JSON report the online autotuner serves at
``ddp_stats()["autotune"]`` (written to disk by
``examples/autotune_demo.py --report`` or any training script) and
renders it for humans: tuner state, the knob taxonomy with each knob's
safe range, the applied-config log, and the search history tail.

Gate mode (CI): ``--check-safe-ranges`` exits non-zero if any config
the tuner ever applied or visited falls outside the documented safe
ranges in ``repro.autotune.knobs.KNOBS`` — the enforcement end of the
documented-knobs guarantee.

Usage:
    python tools/autotunectl.py autotune_report.json
    python tools/autotunectl.py autotune_report.json --check-safe-ranges
    python tools/autotunectl.py autotune_report.json --history 20
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.autotune import TunedConfig, validate_config  # noqa: E402


def fmt_config(config: dict) -> str:
    chunk_kib = config["chunk_bytes"] // 1024
    return (
        f"bucket_cap={config['bucket_cap_mb']} MB chunk={chunk_kib} KiB "
        f"streams={config['num_streams']} alg={config['algorithm']} "
        f"hook={config['comm_hook'] or '-'}"
    )


def render(report: dict, history_tail: int) -> None:
    print(
        f"state: {report['state']}  windows: {report['windows_closed']}  "
        f"applied: {report['applied_changes']}  "
        f"rollbacks: {report['rollbacks']}  retunes: {report['retunes']}"
    )
    print(f"active: {fmt_config(report['active_config'])}")
    print(f"best:   {fmt_config(report['best_config'])} "
          f"({report['best_time_s'] * 1e3:.2f} ms/iter, "
          f"{report['configs_measured']} configs measured)")

    print("\nknobs (documented safe ranges):")
    for row in report.get("knobs", []):
        env = row["env"] or "-"
        print(f"  {row['knob']:<14} {row['kind']:<11} default={row['default']!s:<9} "
              f"range={row['safe_range']:<26} env={env}")
        print(f"  {'':<14} signal: {row['signal']}")

    applied = report.get("applied_log", [])
    print(f"\napplied configs ({len(applied)}):")
    for entry in applied:
        print(f"  window {entry['window']:>3} [{entry['state']:>10}] "
              f"{'+'.join(entry['changes'])}: {fmt_config(entry['config'])}")

    history = report.get("history", [])
    tail = history[-history_tail:] if history_tail else []
    if tail:
        print(f"\nsearch history (last {len(tail)} of {len(history)} windows):")
        for entry in tail:
            print(f"  window {entry['window']:>3} [{entry['state']:>10}] "
                  f"{entry['measured_s'] * 1e3:8.2f} ms  "
                  f"{fmt_config(entry['config'])}")


def check_safe_ranges(report: dict) -> list:
    """Every config the tuner applied or visited, validated; returns
    a list of violation strings (empty = compliant)."""
    violations = []
    seen = [("active", report["active_config"]), ("best", report["best_config"])]
    seen += [(f"applied@{e['window']}", e["config"])
             for e in report.get("applied_log", [])]
    seen += [(f"history@{e['window']}", e["config"])
             for e in report.get("history", [])]
    for label, config in seen:
        try:
            validate_config(TunedConfig(**config))
        except (ValueError, TypeError) as err:
            violations.append(f"{label}: {err}")
    return violations


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", help="autotune report JSON "
                        "(the ddp_stats()['autotune'] payload)")
    parser.add_argument("--history", type=int, default=10, metavar="N",
                        help="show the last N history windows (0 hides)")
    parser.add_argument("--check-safe-ranges", action="store_true",
                        help="exit non-zero if any applied/visited config "
                        "violates the documented safe ranges")
    args = parser.parse_args(argv)

    with open(args.report) as handle:
        report = json.load(handle)
    if not report or not report.get("enabled"):
        print("report is empty or autotuning was not enabled")
        return 1

    render(report, args.history)

    if args.check_safe_ranges:
        violations = check_safe_ranges(report)
        if violations:
            print(f"\nSAFE-RANGE VIOLATIONS ({len(violations)}):")
            for violation in violations:
                print(f"  {violation}")
            return 1
        total = 2 + len(report.get("applied_log", [])) + len(report.get("history", []))
        print(f"\nsafe-range check OK: {total} configs validated against KNOBS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
