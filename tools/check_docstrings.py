#!/usr/bin/env python
"""Docstring lint for the public ``repro.comm`` API (pydocstyle-lite).

Checks, without third-party dependencies, that every public module,
class, function, and method in the target files carries a docstring —
the CI gate behind the "document algorithm, α–β complexity and
thread-safety" rule for the communication layer.

Public means: name does not start with ``_``, and for methods, the
defining class is public too.  ``__init__`` and other dunders are
exempt (they are documented by their class).

Usage::

    python tools/check_docstrings.py [paths...]

With no arguments, checks the default target set (``repro/comm``).
Exits 1 listing every offender as ``path:line: message``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Files whose public API must be fully documented.
DEFAULT_TARGETS = [
    REPO_ROOT / "src" / "repro" / "comm" / "algorithms.py",
    REPO_ROOT / "src" / "repro" / "comm" / "process_group.py",
    REPO_ROOT / "src" / "repro" / "comm" / "transport.py",
    REPO_ROOT / "src" / "repro" / "comm" / "distributed.py",
    REPO_ROOT / "src" / "repro" / "comm" / "store.py",
    REPO_ROOT / "src" / "repro" / "comm" / "round_robin.py",
]


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def check_file(path: Path) -> list:
    """Return ``(path, line, message)`` tuples for missing docstrings."""
    tree = ast.parse(path.read_text(), filename=str(path))
    problems = []
    if not ast.get_docstring(tree):
        problems.append((path, 1, "module is missing a docstring"))

    def visit(node, inside_public_class: bool, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                public = _is_public(child.name)
                if public and not ast.get_docstring(child):
                    problems.append(
                        (path, child.lineno, f"class {prefix}{child.name} is missing a docstring")
                    )
                visit(child, public, f"{prefix}{child.name}.")
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not _is_public(child.name):
                    continue
                if isinstance(node, ast.ClassDef) and not inside_public_class:
                    continue
                if not ast.get_docstring(child):
                    problems.append(
                        (path, child.lineno, f"def {prefix}{child.name} is missing a docstring")
                    )

    visit(tree, True, "")
    return problems


def main(argv) -> int:
    """CLI entry point; returns the process exit code."""
    targets = [Path(arg) for arg in argv] if argv else DEFAULT_TARGETS
    problems = []
    for target in targets:
        if target.is_dir():
            for sub in sorted(target.rglob("*.py")):
                problems.extend(check_file(sub))
        else:
            problems.extend(check_file(target))
    for path, line, message in problems:
        try:
            shown = path.relative_to(REPO_ROOT)
        except ValueError:
            shown = path
        print(f"{shown}:{line}: {message}")
    if problems:
        print(f"\n{len(problems)} missing docstring(s)")
        return 1
    print(f"docstring check passed for {len(targets)} target(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
