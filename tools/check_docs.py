#!/usr/bin/env python
"""Docs/code consistency gate: the documented-knobs guarantee.

Three checks over ``docs/*.md``, ``README.md``, and
``examples/README.md``, all of which must pass for CI to go green:

1. **Knob coverage** — every ``REPRO_*`` environment variable read
   anywhere under ``src/`` and every autotunable knob in
   ``repro.autotune.knobs.KNOBS`` must appear in a markdown *table row*
   in the docs (the knob tables in ``docs/autotuning.md`` are the
   canonical home).  A knob you can set but cannot look up is a bug.
2. **Dead links** — every relative markdown link must resolve to an
   existing file (anchors are stripped; external ``http(s)``/``mailto``
   links are skipped).
3. **Stale module references** — every `` `repro.<something>` ``
   reference must name an importable module path prefix: the first
   segment after ``repro.`` has to exist as ``src/repro/<segment>``
   (package or module) or as an attribute of the ``repro`` package.
   Renaming a package without sweeping the docs fails here.

Usage:
    python tools/check_docs.py            # check, exit non-zero on failure
    python tools/check_docs.py -v         # also list everything checked
"""

from __future__ import annotations

import argparse
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_DIR = os.path.join(REPO_ROOT, "src")
DOC_FILES = ["README.md", "examples/README.md"]

ENV_VAR_RE = re.compile(r"\bREPRO_[A-Z][A-Z0-9_]*\b")
LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
MODULE_REF_RE = re.compile(r"\brepro\.([a-zA-Z_][a-zA-Z0-9_]*)")


def doc_paths():
    docs_dir = os.path.join(REPO_ROOT, "docs")
    paths = [
        os.path.join(docs_dir, name)
        for name in sorted(os.listdir(docs_dir))
        if name.endswith(".md")
    ]
    paths += [os.path.join(REPO_ROOT, rel) for rel in DOC_FILES]
    return [p for p in paths if os.path.isfile(p)]


def src_env_vars():
    """Every REPRO_* variable referenced under src/."""
    found = set()
    for dirpath, _dirnames, filenames in os.walk(SRC_DIR):
        for name in filenames:
            if not name.endswith(".py"):
                continue
            with open(os.path.join(dirpath, name)) as handle:
                found.update(ENV_VAR_RE.findall(handle.read()))
    return found


def autotune_knobs():
    sys.path.insert(0, SRC_DIR)
    from repro.autotune.knobs import KNOBS

    return set(KNOBS)


def table_row_text(doc_text: str) -> str:
    """Concatenated text of every markdown table row in the document."""
    rows = [
        line
        for line in doc_text.splitlines()
        if line.lstrip().startswith("|") and not set(line.strip()) <= {"|", "-", " ", ":"}
    ]
    return "\n".join(rows)


def check_knob_coverage(docs, verbose):
    """Check 1: env vars + autotune knobs present in doc knob tables."""
    tables = "\n".join(table_row_text(text) for _path, text in docs)
    problems = []
    env_vars = src_env_vars()
    for var in sorted(env_vars):
        if var not in tables:
            problems.append(
                f"env var {var} (read under src/) missing from every "
                f"docs knob table — add it to docs/autotuning.md"
            )
    knobs = autotune_knobs()
    autotuning_tables = next(
        (table_row_text(text) for path, text in docs
         if path.endswith(os.path.join("docs", "autotuning.md"))),
        "",
    )
    for knob in sorted(knobs):
        if f"`{knob}`" not in autotuning_tables:
            problems.append(
                f"autotunable knob {knob} missing from the knob table in "
                f"docs/autotuning.md"
            )
    if verbose:
        print(f"  knob coverage: {len(env_vars)} env vars, "
              f"{len(knobs)} autotune knobs checked")
    return problems


def check_links(docs, verbose):
    """Check 2: every relative link target exists."""
    problems = []
    checked = 0
    for path, text in docs:
        base = os.path.dirname(path)
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            checked += 1
            target_path = target.split("#", 1)[0]
            if not target_path:
                continue
            resolved = os.path.normpath(os.path.join(base, target_path))
            if not os.path.exists(resolved):
                rel = os.path.relpath(path, REPO_ROOT)
                problems.append(f"{rel}: dead link -> {target}")
    if verbose:
        print(f"  links: {checked} relative links checked")
    return problems


def check_module_refs(docs, verbose):
    """Check 3: repro.<segment> references resolve to real modules."""
    sys.path.insert(0, SRC_DIR)
    import repro

    problems = []
    refs = set()
    for path, text in docs:
        rel = os.path.relpath(path, REPO_ROOT)
        for match in MODULE_REF_RE.finditer(text):
            segment = match.group(1)
            refs.add(segment)
            pkg_dir = os.path.join(SRC_DIR, "repro", segment)
            module_file = pkg_dir + ".py"
            if (
                os.path.isdir(pkg_dir)
                or os.path.isfile(module_file)
                or hasattr(repro, segment)
            ):
                continue
            problems.append(
                f"{rel}: stale reference repro.{segment} "
                f"(no src/repro/{segment} module/package or repro attribute)"
            )
    if verbose:
        print(f"  module refs: {len(refs)} distinct repro.* prefixes checked")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="list what was checked")
    args = parser.parse_args(argv)

    docs = []
    for path in doc_paths():
        with open(path) as handle:
            docs.append((path, handle.read()))
    if args.verbose:
        print(f"checking {len(docs)} markdown files:")

    problems = []
    problems += check_knob_coverage(docs, args.verbose)
    problems += check_links(docs, args.verbose)
    problems += check_module_refs(docs, args.verbose)

    # De-dup (the same stale ref can appear in several files verbatim).
    unique = sorted(set(problems))
    if unique:
        print(f"check_docs: {len(unique)} problem(s):")
        for problem in unique:
            print(f"  - {problem}")
        return 1
    print(f"check_docs OK: {len(docs)} files — knob tables cover every "
          f"REPRO_* var and autotunable knob, no dead links, no stale "
          f"repro.* references")
    return 0


if __name__ == "__main__":
    sys.exit(main())
