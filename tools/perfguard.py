#!/usr/bin/env python
"""Perf-regression gate over the benches' machine-readable results.

Compares fresh ``BENCH_<name>.json`` files (the ``emit_json`` envelope
every benchmark writes) against committed baselines in
``benchmarks/baselines/<name>.json`` and exits non-zero when any timing
metric regressed beyond its threshold.  CI runs this after the smoke
benches so a PR that slows the hot path fails loudly instead of decaying
the numbers one merge at a time.

How it compares
===============

Each result file is flattened into ``metric → value`` pairs.  Rows in
result lists are keyed by their identifying fields (``world``,
``size_mb``, ``chunk_kb``, ``mode``, ``num_streams``, ``algorithm``,
...), so a smoke run and a full run still compare on the configurations
they share — metrics present on only one side are reported and skipped,
never failed.  Only metrics with a known direction participate:

* **lower is better** — names ending in ``_s``/``_ms`` or containing
  ``seconds``/``latency`` (wall times);
* **higher is better** — names containing ``speedup``.

Counters, ratios, and booleans are ignored (the benches gate those
themselves).  Baseline values below ``--min-abs`` seconds are skipped:
sub-millisecond timings on shared CI runners are scheduler noise, and a
guard that cries wolf gets deleted.

Usage
=====

    # gate fresh results against the committed baselines
    python tools/perfguard.py BENCH_hotpath.json BENCH_collectives_micro.json

    # looser global threshold (ratio; 2.0 = fail when 2x slower)
    python tools/perfguard.py --threshold 4.0 BENCH_hotpath.json

    # per-metric override (substring match, first hit wins)
    python tools/perfguard.py --per-metric 'chunk_sweep=6.0' BENCH_hotpath.json

    # bless: copy the fresh results in as the new baselines
    python tools/perfguard.py --bless BENCH_hotpath.json

Baselines are regenerated with the benches' own baseline mode
(``REPRO_BENCH_BASELINE=1 python benchmarks/bench_hotpath.py --smoke``),
which writes ``benchmarks/baselines/<name>.json`` directly.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
from typing import Dict, List, Optional, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BASELINE_DIR = os.path.join(REPO_ROOT, "benchmarks", "baselines")

#: Envelope fields emit_json adds around every payload — never metrics.
ENVELOPE_KEYS = {"bench", "created_unix", "python", "platform", "smoke", "iters"}

#: Fields that identify a result row rather than measure it.
ID_FIELDS = (
    "algorithm", "mode", "world", "size_mb", "chunk_kb", "num_streams",
    "bucket", "bucket_cap_mb", "interval_s", "elements", "hook",
)


def flatten(obj, prefix: str = "") -> Dict[str, float]:
    """``metric path → numeric value`` pairs from one result document.

    Lists of row dicts are keyed by their identifying fields so the same
    configuration lines up across runs regardless of row order or which
    sweep points a given run covered.
    """
    out: Dict[str, float] = {}
    if isinstance(obj, dict):
        for key, value in obj.items():
            if not prefix and key in ENVELOPE_KEYS:
                continue
            path = f"{prefix}.{key}" if prefix else key
            out.update(flatten(value, path))
    elif isinstance(obj, list):
        for item in obj:
            if not isinstance(item, dict):
                continue
            ident = ",".join(
                f"{field}={item[field]}" for field in ID_FIELDS if field in item
            )
            rest = {k: v for k, v in item.items() if k not in ID_FIELDS}
            out.update(flatten(rest, f"{prefix}[{ident}]"))
    elif isinstance(obj, bool):
        pass  # check booleans are the bench's own gate, not ours
    elif isinstance(obj, (int, float)):
        out[prefix] = float(obj)
    return out


def direction(metric: str) -> Optional[str]:
    """'lower' / 'higher' is better, or None to skip the metric."""
    if "speedup" in metric:
        return "higher"
    leaf = metric.rsplit(".", 1)[-1]
    if leaf.endswith(("_s", "_ms")) or "seconds" in metric or "latency" in metric:
        return "lower"
    return None


def load_result(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def baseline_path_for(document: dict, baseline_dir: str, current_path: str) -> str:
    """benchmarks/baselines/<bench>.json, named by the envelope's bench
    field (falling back to the file name for envelope-less documents)."""
    bench = document.get("bench")
    if not bench:
        bench = os.path.splitext(os.path.basename(current_path))[0]
        if bench.startswith("BENCH_"):
            bench = bench[len("BENCH_"):]
    return os.path.join(baseline_dir, f"{bench}.json")


def threshold_for(metric: str, default: float,
                  overrides: List[Tuple[str, float]]) -> float:
    for needle, value in overrides:
        if needle in metric:
            return value
    return default


def compare(
    baseline: Dict[str, float],
    current: Dict[str, float],
    default_threshold: float,
    overrides: List[Tuple[str, float]],
    min_abs: float,
) -> dict:
    """Judge every shared metric; returns regressions + bookkeeping."""
    regressions: List[dict] = []
    compared = 0
    skipped_small = 0
    shared = sorted(set(baseline) & set(current))
    for metric in shared:
        sense = direction(metric)
        if sense is None:
            continue
        base, cur = baseline[metric], current[metric]
        scale = 1e-3 if metric.rsplit(".", 1)[-1].endswith("_ms") else 1.0
        if base * scale < min_abs or base <= 0:
            skipped_small += 1
            continue
        compared += 1
        ratio = (cur / base) if sense == "lower" else (base / cur if cur > 0 else float("inf"))
        limit = threshold_for(metric, default_threshold, overrides)
        if ratio > limit:
            regressions.append(
                {
                    "metric": metric,
                    "direction": sense,
                    "baseline": base,
                    "current": cur,
                    "ratio": ratio,
                    "threshold": limit,
                }
            )
    return {
        "compared": compared,
        "skipped_below_min_abs": skipped_small,
        "only_in_baseline": len(set(baseline) - set(current)),
        "only_in_current": len(set(current) - set(baseline)),
        "regressions": regressions,
    }


def bless(current_path: str, baseline_path: str) -> None:
    os.makedirs(os.path.dirname(baseline_path), exist_ok=True)
    shutil.copyfile(current_path, baseline_path)
    print(f"[perfguard] blessed {current_path} -> {baseline_path}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when fresh bench results regress vs committed baselines."
    )
    parser.add_argument("results", nargs="+",
                        help="fresh BENCH_<name>.json files to judge")
    parser.add_argument("--baseline-dir", default=DEFAULT_BASELINE_DIR,
                        help="directory of committed <bench>.json baselines")
    parser.add_argument("--threshold", type=float, default=1.5,
                        help="default allowed slowdown ratio (1.5 = fail when 1.5x slower)")
    parser.add_argument("--per-metric", action="append", default=[],
                        metavar="SUBSTRING=RATIO",
                        help="threshold override for metrics containing SUBSTRING")
    parser.add_argument("--min-abs", type=float, default=1e-3,
                        help="ignore metrics whose baseline is below this "
                             "many seconds (noise floor)")
    parser.add_argument("--bless", action="store_true",
                        help="adopt the fresh results as the new baselines "
                             "instead of judging them")
    args = parser.parse_args(argv)

    overrides: List[Tuple[str, float]] = []
    for spec in args.per_metric:
        needle, _, raw = spec.partition("=")
        try:
            overrides.append((needle, float(raw)))
        except ValueError:
            parser.error(f"--per-metric expects SUBSTRING=RATIO, got {spec!r}")

    failed = False
    for current_path in args.results:
        if not os.path.exists(current_path):
            print(f"[perfguard] ERROR: result file missing: {current_path}")
            return 2
        document = load_result(current_path)
        baseline_path = baseline_path_for(document, args.baseline_dir, current_path)
        if args.bless:
            bless(current_path, baseline_path)
            continue
        if not os.path.exists(baseline_path):
            print(f"[perfguard] ERROR: no baseline at {baseline_path} "
                  f"(generate with REPRO_BENCH_BASELINE=1, or --bless)")
            return 2
        verdict = compare(
            flatten(load_result(baseline_path)),
            flatten(document),
            args.threshold,
            overrides,
            args.min_abs,
        )
        name = document.get("bench", current_path)
        print(
            f"[perfguard] {name}: {verdict['compared']} metrics compared "
            f"({verdict['skipped_below_min_abs']} below noise floor, "
            f"{verdict['only_in_baseline']} baseline-only, "
            f"{verdict['only_in_current']} current-only)"
        )
        for reg in verdict["regressions"]:
            failed = True
            print(
                f"[perfguard]   REGRESSION {reg['metric']}: "
                f"{reg['baseline']:.6g} -> {reg['current']:.6g} "
                f"({reg['ratio']:.2f}x, limit {reg['threshold']:.2f}x, "
                f"{reg['direction']} is better)"
            )
        if not verdict["regressions"]:
            print(f"[perfguard] {name}: OK")
    if failed:
        print("[perfguard] FAILED — see regressions above")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
