#!/usr/bin/env python
"""Offline comm-health analysis over observatory JSONL dumps.

Feeds a :meth:`MetricsSampler.dump_jsonl` file (one JSON tick per line)
through the same rule-based anomaly engine that powers
``ddp_stats()["health"]`` and prints the attributed diagnoses — which
rank is a persistent straggler, which wire edge is retransmitting,
where the comm/compute overlap collapsed — without needing the run to
still be alive.

Usage::

    python tools/healthctl.py metrics.jsonl              # report
    python tools/healthctl.py metrics.jsonl --json out.json
    python tools/healthctl.py metrics.jsonl --fail-on-diagnosis

``--fail-on-diagnosis`` exits 1 when any anomaly is attributed — CI's
false-positive gate runs it over a fault-free chaos-smoke dump, so a
detector that starts crying wolf fails the build instead of eroding
trust in the verdicts.

Threshold knobs mirror :class:`repro.telemetry.health.Thresholds`; pass
e.g. ``--stall-floor-s 0.5`` to make the straggler rule stricter.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

from repro.telemetry.health import Thresholds, analyze_jsonl  # noqa: E402
from repro.telemetry.health.diagnosis import Diagnosis, render_diagnoses  # noqa: E402


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="healthctl",
        description="Attribute comm anomalies from an observatory JSONL dump.",
    )
    parser.add_argument("path", help="metrics JSONL file (MetricsSampler.dump_jsonl)")
    parser.add_argument(
        "--json",
        metavar="OUT",
        help="also write the full report (diagnoses + run stats) as JSON",
    )
    parser.add_argument(
        "--fail-on-diagnosis",
        action="store_true",
        help="exit 1 if any anomaly is attributed (CI false-positive gate)",
    )
    parser.add_argument("--stall-floor-s", type=float, default=None,
                        help="min stall seconds before straggler/slow-link fires")
    parser.add_argument("--stall-dominance", type=float, default=None,
                        help="top source must exceed runner-up by this factor")
    parser.add_argument("--storm-min-events", type=int, default=None,
                        help="min transport incidents for a retransmit storm")
    parser.add_argument("--desync-seq-spread", type=int, default=None,
                        help="collective-frontier spread before desync fires")
    return parser


def _thresholds_from_args(args: argparse.Namespace) -> Thresholds:
    thresholds = Thresholds()
    for attr, flag in (
        ("stall_floor_s", args.stall_floor_s),
        ("stall_dominance", args.stall_dominance),
        ("storm_min_events", args.storm_min_events),
        ("desync_seq_spread", args.desync_seq_spread),
    ):
        if flag is not None:
            setattr(thresholds, attr, flag)
    return thresholds


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        report = analyze_jsonl(args.path, _thresholds_from_args(args))
    except FileNotFoundError:
        print(f"healthctl: no such file: {args.path}", file=sys.stderr)
        return 2
    except (json.JSONDecodeError, ValueError) as exc:
        print(f"healthctl: {args.path} is not a metrics JSONL dump: {exc}",
              file=sys.stderr)
        return 2

    print(f"analyzed {report['ticks']} tick(s), ranks {report['ranks']}, "
          f"{report.get('collectives_accounted', 0)} collectives accounted")
    diagnoses = [
        Diagnosis(
            kind=d["kind"],
            summary=d["summary"],
            culprit_rank=d.get("culprit_rank"),
            culprit_edge=tuple(d["culprit_edge"]) if d.get("culprit_edge") else None,
            culprit_bucket=d.get("culprit_bucket"),
            confidence=d.get("confidence", 0.5),
            evidence=d.get("evidence", {}),
        )
        for d in report["diagnoses"]
    ]
    print(render_diagnoses(diagnoses), end="")

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"report written to {args.json}")

    if args.fail_on_diagnosis and diagnoses:
        print("healthctl: anomalies attributed and --fail-on-diagnosis set",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
