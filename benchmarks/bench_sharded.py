"""Sharded data parallelism: memory-vs-throughput crossover vs DDP.

The paper's §7 positions ZeRO as trading communication for memory:
optimizer state (stage 1), gradients (stage 2), and parameters
(stage 3) shrink by ~world_size while step time grows with the extra
gathers.  This bench makes the trade-off concrete with *measured*
numbers from the real in-process implementations — per-rank peak bytes
(walked over unique ndarray storages, not estimated) and median step
wall time for ddp/zero1/zero2/zero3 at each world size — plus the
analytic crossover table from ``repro.simulation.memory`` for
paper-scale models where the in-process harness cannot go.

The acceptance gate (exit 1 on failure): measured ZeRO-3 per-rank peak
bytes must undercut DDP's at world >= 4.

Run ``python benchmarks/bench_sharded.py --smoke`` for the CI-sized
run; results land in ``BENCH_sharded.json`` (``REPRO_BENCH_BASELINE=1``
writes the committed perf-guard baseline instead).
"""

import argparse
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro import nn
from repro.autograd import Tensor
from repro.comm import run_distributed
from repro.core import DistributedDataParallel
from repro.optim import Adam
from repro.sharded import (
    FullyShardedDataParallel,
    ShardedDataParallel,
    ShardedOptimizer,
    measure_ddp_bytes,
    storage_bytes,
)
from repro.utils import manual_seed

IN_FEATURES = 64
CLASSES = 10
BATCH = 16  # per rank
LR = 1e-3
MODES = ["ddp", "zero1", "zero2", "zero3"]

_rng = np.random.default_rng(0)
X = _rng.standard_normal((BATCH * 8, IN_FEATURES))
Y = _rng.integers(0, CLASSES, BATCH * 8)


def _model(hidden):
    manual_seed(0)
    return nn.Sequential(
        nn.Linear(IN_FEATURES, hidden), nn.ReLU(),
        nn.Linear(hidden, hidden), nn.ReLU(),
        nn.Linear(hidden, CLASSES),
    )


def _build(mode, model):
    """(forward, step, zero_grad, peak_bytes) for one replica."""
    if mode == "ddp":
        ddp = DistributedDataParallel(model)
        opt = Adam(ddp.parameters(), lr=LR)
        return ddp, opt.step, opt.zero_grad, lambda: measure_ddp_bytes(ddp, opt)
    if mode == "zero1":
        ddp = DistributedDataParallel(model)
        opt = ShardedOptimizer(list(ddp.parameters()), lambda ps: Adam(ps, lr=LR))

        def step():
            opt.set_grads_from_params()
            opt.step()

        def peak():
            # Full params + full grads + reducer buckets (the DDP part)
            # plus this rank's shard tensors and optimizer state.
            return (
                measure_ddp_bytes(ddp)
                + storage_bytes(s.data for s in opt.shards)
                + opt.state_bytes()
            )

        return ddp, step, opt.zero_grad, peak
    if mode == "zero2":
        sdp = ShardedDataParallel(model, lambda ps: Adam(ps, lr=LR))
        return sdp, sdp.step, sdp.zero_grad, (
            lambda: sdp.ddp_stats()["sharded"]["peak_bytes_per_rank"]
        )
    fsdp = FullyShardedDataParallel(model, lambda ps: Adam(ps, lr=LR))
    return fsdp, fsdp.step, fsdp.zero_grad, (
        lambda: fsdp.ddp_stats()["sharded"]["peak_bytes_per_rank"]
    )


def bench_mode(mode, world, hidden, iters):
    """One measured configuration: median per-iteration wall time across
    repeats plus the worst per-rank peak bytes."""
    peaks = [0] * world
    loss_fn = nn.CrossEntropyLoss()

    def body(rank):
        model = _model(hidden)
        forward, step, zero_grad, peak = _build(mode, model)
        shard = slice(rank * BATCH, (rank + 1) * BATCH)
        for _ in range(iters):
            zero_grad()
            loss_fn(forward(Tensor(X[shard])), Y[shard]).backward()
            step()
        peaks[rank] = int(peak())
        return True

    start = time.perf_counter()
    run_distributed(world, body, backend="gloo", timeout=120)
    elapsed = time.perf_counter() - start
    return {
        "mode": mode,
        "world": world,
        "hidden": hidden,
        "step_ms": elapsed / iters * 1000.0,
        "peak_mb": max(peaks) / 1e6,
    }


def analytic_crossover(worlds):
    """Paper-scale (ResNet-50 / Adam) per-GPU totals from the §7 memory
    model — the regime the threaded harness cannot reach directly."""
    from repro.simulation.memory import memory_breakdown
    from repro.simulation.models import resnet50_profile

    profile = resnet50_profile()
    rows = []
    for world in worlds:
        row = {"world": world}
        for mode in MODES:
            breakdown = memory_breakdown(profile, world, mode, optimizer="adam")
            row[f"{mode}_total_mb"] = round(breakdown.total / 1e6, 1)
        rows.append(row)
    return rows


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: smaller model, fewer iters")
    parser.add_argument("--iters", type=int, default=None,
                        help="training iterations per configuration")
    parser.add_argument("--out", default=None, help="output JSON path override")
    args = parser.parse_args(argv)

    from common import emit_json, report

    if args.smoke:
        worlds, hidden, iters = [2, 4], 128, args.iters or 3
    else:
        worlds, hidden, iters = [2, 4], 256, args.iters or 6

    print(f"[bench_sharded] measured sweep: worlds={worlds} hidden={hidden}")
    rows = []
    for world in worlds:
        for mode in MODES:
            row = bench_mode(mode, world, hidden, iters)
            rows.append(row)
            print(
                f"  world={world} {mode:>5}: "
                f"{row['step_ms']:.1f} ms/iter, peak {row['peak_mb']:.3f} MB"
            )
    report(
        "sharded",
        f"ZeRO stages vs DDP (hidden={hidden}, {iters} iters, per-rank peak)",
        ["world", "mode", "step_ms", "peak_mb"],
        [[r["world"], r["mode"], r["step_ms"], r["peak_mb"]] for r in rows],
    )

    analytic = analytic_crossover([2, 4, 8, 16, 64, 256])
    report(
        "sharded_analytic",
        "Analytic per-GPU totals, ResNet-50 + Adam (MB; paper §7 model)",
        ["world"] + [f"{mode}_total_mb" for mode in MODES],
        [[r["world"]] + [r[f"{mode}_total_mb"] for mode in MODES] for r in analytic],
    )

    by_key = {(r["world"], r["mode"]): r for r in rows}
    crossover = []
    for world in worlds:
        ddp = by_key[(world, "ddp")]
        z3 = by_key[(world, "zero3")]
        crossover.append({
            "world": world,
            "zero3_peak_ratio_vs_ddp": z3["peak_mb"] / ddp["peak_mb"],
            "zero3_step_ratio_vs_ddp": z3["step_ms"] / ddp["step_ms"],
        })
    gate_world = max(worlds)
    checks = {
        "zero3_peak_below_ddp_at_world4": (
            by_key[(gate_world, "zero3")]["peak_mb"]
            < by_key[(gate_world, "ddp")]["peak_mb"]
        ),
        "zero2_peak_below_ddp_at_world4": (
            by_key[(gate_world, "zero2")]["peak_mb"]
            < by_key[(gate_world, "ddp")]["peak_mb"]
        ),
    }

    emit_json(
        "sharded",
        {
            "smoke": bool(args.smoke),
            "iters": iters,
            "measured": rows,
            "crossover": crossover,
            "analytic_resnet50_adam": analytic,
            "checks": checks,
        },
        path=args.out,
    )

    failed = [name for name, ok in checks.items() if not ok]
    if failed:
        print(f"[bench_sharded] FAILED checks: {failed}")
        return 1
    ratio = crossover[-1]
    print(
        f"[bench_sharded] OK — at world {gate_world} ZeRO-3 peaks at "
        f"{ratio['zero3_peak_ratio_vs_ddp']:.2f}x DDP memory for "
        f"{ratio['zero3_step_ratio_vs_ddp']:.2f}x the step time"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
